//! Zero heap allocations per draw, proven with a counting allocator.
//!
//! The flat sampler's contract (DESIGN.md §11): once a reused
//! [`PlanBatch`]'s buffers have grown to the batch's size, a
//! steady-state `sample_batch_flat` fill on either fixed-width tier —
//! `u64` for single-limb spaces, `u128` for two-limb ones — touches no
//! allocator at all: every draw is a rejection-sampled rank plus
//! fixed-width arithmetic into already-owned memory. These tests swap
//! in a
//! `#[global_allocator]` that counts every `alloc`/`realloc`/
//! `alloc_zeroed` and asserts the count is **exactly zero** across a
//! warmed 512-plan fill.
//!
//! It lives in its own integration-test binary because a global
//! allocator is process-wide: the counter would register every other
//! test's allocations otherwise.

use plansample::{PlanBatch, PlanSpace};
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Forwards to the system allocator, counting every acquisition path
/// (`dealloc` is deliberately uncounted: freeing is allowed, acquiring
/// is not).
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_flat_sampling_allocates_nothing() {
    // Chain-6 stays comfortably single-limb, so every draw takes the
    // u64 fast path.
    let (_, query, memo) = JoinGraphSpec::new(Topology::Chain, 6, 20000).build_memo();
    let space = PlanSpace::build_shared(Arc::new(memo), Arc::new(query)).expect("chain-6 builds");
    assert!(
        space.counts().has_fast_path(),
        "chain-6 must be single-limb"
    );

    threadpool::with_threads(1, || {
        let mut out = PlanBatch::new();
        // Warmup on the same seed the measured fill will use: identical
        // ranks → identical plan shapes → the grown capacities are
        // exactly what the measured fill needs.
        let mut rng = StdRng::seed_from_u64(77);
        space.sample_batch_flat(&mut rng, 512, &mut out);
        let warm_nodes = out.total_nodes();

        let mut rng = StdRng::seed_from_u64(77);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        space.sample_batch_flat(&mut rng, 512, &mut out);
        let after = ALLOCATIONS.load(Ordering::Relaxed);

        assert_eq!(out.len(), 512);
        assert_eq!(
            out.total_nodes(),
            warm_nodes,
            "reseeded fill must repeat itself"
        );
        assert_eq!(
            after - before,
            0,
            "steady-state sample_batch_flat must not allocate (counted {} allocations \
             across 512 draws)",
            after - before
        );
    });
}

#[test]
fn steady_state_u128_tier_sampling_allocates_nothing() {
    // The smallest chain past the single-limb boundary: a genuine
    // two-limb space (not a forced one), scanned for rather than
    // hard-coded so the test tracks the boundary itself.
    let space = (10..24)
        .find_map(|rels| {
            let (_, query, memo) = JoinGraphSpec::new(Topology::Chain, rels, 20000).build_memo();
            let space =
                PlanSpace::build_shared(Arc::new(memo), Arc::new(query)).expect("chain builds");
            (!space.counts().has_fast_path() && space.counts().has_wide_path()).then_some(space)
        })
        .expect("some chain under 24 relations needs exactly two limbs");

    threadpool::with_threads(1, || {
        let mut out = PlanBatch::new();
        let mut rng = StdRng::seed_from_u64(78);
        space.sample_batch_flat(&mut rng, 512, &mut out);
        let warm_nodes = out.total_nodes();

        let mut rng = StdRng::seed_from_u64(78);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        space.sample_batch_flat(&mut rng, 512, &mut out);
        let after = ALLOCATIONS.load(Ordering::Relaxed);

        assert_eq!(out.len(), 512);
        assert_eq!(
            out.total_nodes(),
            warm_nodes,
            "reseeded fill must repeat itself"
        );
        assert_eq!(
            after - before,
            0,
            "steady-state u128-tier sample_batch_flat must not allocate (counted {} \
             allocations across 512 draws)",
            after - before
        );
    });
}

#[test]
fn the_counter_itself_works() {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let v: Vec<u8> = Vec::with_capacity(4096);
    std::hint::black_box(&v);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(after > before, "allocator instrumentation is dead");
}
