//! [`Datum`]: the single value type shared by query literals and the
//! execution engine's rows.

use crate::ColType;
use std::cmp::Ordering;
use std::fmt;

/// A single column value. `Float` carries a total order (via
/// [`f64::total_cmp`]) so rows can be sorted deterministically — the
/// differential-testing oracle compares sorted row multisets.
#[derive(Debug, Clone)]
pub enum Datum {
    /// Absent value (produced only by outer operations; kept for
    /// completeness and ordered before all present values).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Datum {
    /// The [`ColType`] this datum inhabits, `None` for `Null`.
    pub fn col_type(&self) -> Option<ColType> {
        match self {
            Datum::Null => None,
            Datum::Int(_) => Some(ColType::Int),
            Datum::Float(_) => Some(ColType::Float),
            Datum::Str(_) => Some(ColType::Str),
        }
    }

    /// Extracts an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a float, widening integers (used by SUM/AVG aggregates).
    pub fn as_float_lossy(&self) -> Option<f64> {
        match self {
            Datum::Float(v) => Some(*v),
            Datum::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extracts a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Datum::Null => 0,
            Datum::Int(_) => 1,
            Datum::Float(_) => 2,
            Datum::Str(_) => 3,
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Datum {}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Datum {
    /// Total order: Null < Int < Float < Str across types; natural order
    /// within a type (`total_cmp` for floats, so NaN is ordered too).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Datum::Null, Datum::Null) => Ordering::Equal,
            (Datum::Int(a), Datum::Int(b)) => a.cmp(b),
            (Datum::Float(a), Datum::Float(b)) => a.total_cmp(b),
            (Datum::Str(a), Datum::Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl std::hash::Hash for Datum {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Datum::Null => {}
            Datum::Int(v) => v.hash(state),
            Datum::Float(v) => v.to_bits().hash(state),
            Datum::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Float(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Str(v.to_string())
    }
}

impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(d: &Datum) -> u64 {
        let mut s = DefaultHasher::new();
        d.hash(&mut s);
        s.finish()
    }

    #[test]
    fn ordering_within_types() {
        assert!(Datum::Int(1) < Datum::Int(2));
        assert!(Datum::Str("a".into()) < Datum::Str("b".into()));
        assert!(Datum::Float(1.0) < Datum::Float(1.5));
    }

    #[test]
    fn ordering_across_types_is_total() {
        assert!(Datum::Null < Datum::Int(i64::MIN));
        assert!(Datum::Int(i64::MAX) < Datum::Float(f64::NEG_INFINITY));
        assert!(Datum::Float(f64::INFINITY) < Datum::Str(String::new()));
    }

    #[test]
    fn nan_is_ordered_and_equal_to_itself() {
        let nan = Datum::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(nan, Datum::Float(f64::NAN));
        assert!(Datum::Float(f64::INFINITY) < nan); // total_cmp puts +NaN above +inf
    }

    #[test]
    fn eq_consistent_with_hash() {
        let a = Datum::Int(42);
        let b = Datum::Int(42);
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
        let f1 = Datum::Float(0.5);
        let f2 = Datum::Float(0.5);
        assert_eq!(h(&f1), h(&f2));
    }

    #[test]
    fn accessors() {
        assert_eq!(Datum::Int(3).as_int(), Some(3));
        assert_eq!(Datum::Str("x".into()).as_int(), None);
        assert_eq!(Datum::Int(3).as_float_lossy(), Some(3.0));
        assert_eq!(Datum::Float(2.5).as_float_lossy(), Some(2.5));
        assert_eq!(Datum::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Datum::Null.col_type(), None);
        assert_eq!(Datum::Int(0).col_type(), Some(ColType::Int));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Datum::Int(5).to_string(), "5");
        assert_eq!(Datum::Str("hi".into()).to_string(), "'hi'");
        assert_eq!(Datum::Null.to_string(), "NULL");
    }

    #[test]
    fn conversions() {
        assert_eq!(Datum::from(5i64), Datum::Int(5));
        assert_eq!(Datum::from("s"), Datum::Str("s".into()));
        assert_eq!(Datum::from(1.25f64), Datum::Float(1.25));
    }
}
