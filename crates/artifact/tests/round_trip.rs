//! Round-trip bit-identity: the artifact contract (docs/DESIGN.md §10)
//! is that a loaded artifact answers `total` / `unrank` /
//! `sample_batch` / `best` *byte-identically* to the prepared query
//! that was saved. This suite asserts it two ways:
//!
//! * over **optimizer-built** memos — every TPC-H join query in the
//!   repertoire, under both optimizer configurations, and
//! * over **synthetic** memos — property-tested across join-graph
//!   topologies, sizes, and seeds (the regime where counts outgrow one
//!   `u64` limb and the bulk `u32`/limb-pool sections do real work).
//!
//! "Bit-identical" is taken literally: costs are compared with
//! `f64::to_bits`, plans structurally, and the re-encoded image against
//! the original byte-for-byte (encode is deterministic, so save/load/
//! save is a fixed point).

use plansample_artifact::{decode, encode};
use plansample_bignum::Nat;
use plansample_core::{PlanSpace, PreparedQuery};
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_optimizer::OptimizerConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Builds a prepared query from a directly synthesized memo (no
/// optimizer run): the "best plan" is simply plan 0 costed by the memo,
/// which is all `PreparedQuery::from_parts` requires.
fn synthetic(topology: Topology, relations: usize, seed: u64) -> PreparedQuery {
    let spec = JoinGraphSpec::new(topology, relations, seed);
    let (_, query, memo) = spec.build_memo();
    let space = PlanSpace::build_shared(Arc::new(memo), Arc::new(query)).expect("space builds");
    let best = space.unrank(&Nat::zero()).expect("space is non-empty");
    let cost = best.total_cost(space.memo());
    PreparedQuery::from_parts(space, best, cost, OptimizerConfig::default())
        .expect("synthetic parts validate")
}

/// The contract, asserted: `loaded` must be indistinguishable from
/// `original` across the whole serving surface.
fn assert_bit_identical(original: &PreparedQuery, bytes: &[u8], loaded: &PreparedQuery) {
    assert_eq!(loaded.total(), original.total(), "total (N) diverged");
    assert_eq!(
        loaded.best().1.to_bits(),
        original.best().1.to_bits(),
        "best cost diverged"
    );
    assert_eq!(
        format!("{:?}", loaded.best().0),
        format!("{:?}", original.best().0),
        "best plan diverged"
    );

    // Unrank at the space boundaries and an interior point.
    let mut last = original.total().clone();
    last.decr();
    let mid = Nat::from(original.total().limbs()[0] / 2);
    for rank in [Nat::zero(), mid, last] {
        let a = original.unrank(&rank).expect("original unranks");
        let b = loaded.unrank(&rank).expect("loaded unranks");
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "unrank({rank:?}) diverged"
        );
        assert_eq!(
            a.total_cost(original.memo()).to_bits(),
            b.total_cost(loaded.memo()).to_bits(),
            "cost of unrank({rank:?}) diverged"
        );
    }

    // Batched sampling from the same seed must draw the same plans.
    let k = 16;
    let a = original.sample_batch(&mut StdRng::seed_from_u64(7), k);
    let b = loaded.sample_batch(&mut StdRng::seed_from_u64(7), k);
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "sample_batch diverged");

    // Encode is deterministic: the loaded artifact re-encodes to the
    // exact byte image it was loaded from.
    assert_eq!(encode(loaded), bytes, "re-encoded image diverged");
}

#[test]
fn optimizer_built_memos_round_trip_bit_identically() {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    for (name, query) in plansample_query::tpch::all(&catalog) {
        // Q8 under cross products is the paper's largest memo (~22k
        // expressions); in an unoptimized test build its preparation
        // alone is seconds, so the cross-product config exercises the
        // smaller queries only.
        for config in [
            OptimizerConfig::default(),
            OptimizerConfig::with_cross_products(),
        ] {
            if config.allow_cross_products && query.relations.len() > 6 {
                continue;
            }
            let original =
                PreparedQuery::prepare(&catalog, &query, &config).expect("tpch query optimizes");
            let bytes = encode(&original);
            let loaded = decode(&bytes).unwrap_or_else(|e| {
                panic!("{name} (cross={}) decode: {e}", config.allow_cross_products)
            });
            assert_bit_identical(&original, &bytes, &loaded);
        }
    }
}

#[test]
fn multi_limb_synthetic_memo_round_trips_bit_identically() {
    // Clique-9 is the smallest synthetic whose total needs two limbs —
    // the case where the limb-pool encoding (offsets + flat `u64` pool)
    // carries real multi-limb values.
    let original = synthetic(Topology::Clique, 9, 20000);
    assert!(
        original.total().limbs().len() >= 2,
        "clique-9 total must exceed u64: {}",
        original.total()
    );
    let bytes = encode(&original);
    let loaded = decode(&bytes).expect("clique-9 artifact decodes");
    assert_bit_identical(&original, &bytes, &loaded);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Synthetic memos across every topology, 4–7 relations, arbitrary
    /// seeds: encode → decode must reproduce the serving surface
    /// bit-for-bit.
    #[test]
    fn synthetic_memos_round_trip_bit_identically(
        topology_ix in 0usize..4,
        relations in 4usize..=7,
        seed in any::<u64>(),
    ) {
        let topology = [
            Topology::Chain,
            Topology::Star,
            Topology::Cycle,
            Topology::Clique,
        ][topology_ix];
        // Clique growth is steep; keep the property fast enough to run
        // in an unoptimized build.
        let relations = if matches!(topology, Topology::Clique) {
            relations.min(6)
        } else {
            relations
        };
        let original = synthetic(topology, relations, seed);
        let bytes = encode(&original);
        let loaded = decode(&bytes).expect("synthetic artifact decodes");
        assert_bit_identical(&original, &bytes, &loaded);
    }
}
