//! Property tests: `Nat` arithmetic must agree with `u128` wherever the
//! values fit, and algebraic laws must hold for arbitrary multi-limb values.

use plansample_bignum::Nat;
use proptest::prelude::*;

fn arb_nat() -> impl Strategy<Value = Nat> {
    // 0..=4 limbs covers zero, single-limb fast paths, and Algorithm D.
    proptest::collection::vec(any::<u64>(), 0..5).prop_map(Nat::from_limbs)
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = Nat::from(a) + Nat::from(b);
        prop_assert_eq!(sum.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = Nat::from(a) * Nat::from(b);
        prop_assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1..=u128::MAX) {
        let (q, r) = Nat::from(a).div_rem(&Nat::from(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let d = Nat::from(hi) - Nat::from(lo);
        prop_assert_eq!(d.to_u128(), Some(hi - lo));
        prop_assert_eq!(Nat::from(lo).checked_sub(&Nat::from(hi)).is_none(), hi != lo);
    }

    #[test]
    fn cmp_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(Nat::from(a).cmp(&Nat::from(b)), a.cmp(&b));
    }

    #[test]
    fn division_reconstructs(a in arb_nat(), b in arb_nat()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&q * &b + &r, a);
    }

    #[test]
    fn mul_commutes_and_associates(a in arb_nat(), b in arb_nat(), c in arb_nat()) {
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!((&a * &b) * &c, &a * (&b * &c));
    }

    #[test]
    fn add_commutes_and_associates(a in arb_nat(), b in arb_nat(), c in arb_nat()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
    }

    #[test]
    fn distributive_law(a in arb_nat(), b in arb_nat(), c in arb_nat()) {
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn decimal_round_trip(a in arb_nat()) {
        let s = a.to_decimal();
        let back: Nat = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn decimal_matches_u128_display(a in any::<u128>()) {
        prop_assert_eq!(Nat::from(a).to_decimal(), a.to_string());
    }

    #[test]
    fn incr_decr_round_trip(a in arb_nat()) {
        let mut b = a.clone();
        b.incr();
        prop_assert!(b > a);
        b.decr();
        prop_assert_eq!(b, a);
    }

    #[test]
    fn mixed_radix_digits_recompose(r in any::<u64>(), b1 in 1u64..1000, b2 in 1u64..1000, b3 in 1u64..1000) {
        // The exact decomposition the unranking step performs:
        // digits d_i = (r / prod(b_j, j<i)) mod b_i, recomposed they must
        // reproduce r when r < b1*b2*b3.
        let total = b1 as u128 * b2 as u128 * b3 as u128;
        let r = (r as u128 % total) as u64;
        let rn = Nat::from(r);
        let (q1, d1) = rn.div_rem(&Nat::from(b1));
        let (q2, d2) = q1.div_rem(&Nat::from(b2));
        let (_q3, d3) = q2.div_rem(&Nat::from(b3));
        let recomposed = &d1 + &Nat::from(b1) * (&d2 + &Nat::from(b2) * &d3);
        prop_assert_eq!(recomposed, rn);
    }
}
