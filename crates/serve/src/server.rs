//! The serving front-end: an acceptor plus N thread-per-core reactors.
//!
//! One acceptor thread owns the listener and nothing else: it accepts
//! connections and deals them round-robin to the reactors through
//! per-reactor mailboxes, waking the target reactor through its
//! socketpair. Each reactor (see [`crate::reactor`]) owns its own
//! `poll(2)` set, connection map, completion queue, and worker pool;
//! a connection is pinned to its reactor for life, so no socket is
//! ever shared between event loops. What *is* shared —
//! [`ServerState`] — is shared through atomics and the singleflighted
//! `PlanService`, which is exactly why the determinism contract (reply
//! bytes are a pure function of request bytes) holds verbatim at every
//! reactor count.
//!
//! Connections are addressed by per-reactor monotonically increasing
//! tokens that are never reused, so a completion for a connection that
//! died while its request was in flight is dropped on the floor
//! instead of corrupting a newer connection.
//!
//! Fault handling follows the wire module's recoverability split:
//! frames whose boundary is still trustworthy (unknown opcode,
//! malformed body) get a typed error reply and the connection keeps
//! serving; violations that poison the framing (oversized length
//! prefix, wrong protocol version) get a final typed reply with
//! request id 0 and the connection drains and closes. A partial frame
//! that sits incomplete longer than [`ServerConfig::frame_timeout`]
//! (however slowly it trickles) closes the connection — the
//! slow-loris defense.
//!
//! Persistent `accept(2)` failure (EMFILE/ENFILE during fd exhaustion)
//! gets the same treatment as persistent `poll(2)` failure: the
//! acceptor backs off instead of spinning on the level-triggered
//! readable listener, counts the failure in `accept_errors`, and shuts
//! the server down after `MAX_ACCEPT_ERRORS` consecutive failures.

use crate::reactor::{
    Completion, Interest, Job, Poller, Reactor, WakeSet, MAX_POLL_ERRORS, POLL_ERROR_BACKOFF,
    TOKEN_LISTENER, TOKEN_WAKER,
};
use crate::state::{AdmissionConfig, ServerState};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Reactor (event-loop) threads; `0` means one per available core.
    pub reactors: usize,
    /// Worker threads executing requests, *per reactor*.
    pub workers: usize,
    /// TPC-H service entry capacity.
    pub cache_entries: usize,
    /// TPC-H service byte budget (participates in admission control).
    pub byte_budget: Option<usize>,
    /// Queue/preparation shedding thresholds.
    pub admission: AdmissionConfig,
    /// Decoded-but-unanswered requests allowed per connection before
    /// the owning reactor stops reading from it (pipelining bound).
    pub max_pipeline: usize,
    /// How long a partial frame may sit incomplete before the
    /// connection is closed (slow-loris defense).
    pub frame_timeout: Duration,
    /// Allow Cartesian products in served plan spaces.
    pub cross_products: bool,
    /// Directory of persistent plan-space artifacts. When set, every
    /// TPC-H preparation is written through to the store, so the plan
    /// space survives the process.
    pub artifact_dir: Option<PathBuf>,
    /// Load every artifact in `artifact_dir` into the service cache at
    /// startup (no-op without `artifact_dir`).
    pub warm: bool,
    /// Give each reactor its own `SO_REUSEPORT` listener — the kernel
    /// load-balances accepts across them and the acceptor thread
    /// disappears. Falls back to the round-robin acceptor (with a
    /// logged message) where unsupported.
    pub reuseport: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            reactors: 0,
            workers: 4,
            cache_entries: 64,
            byte_budget: None,
            admission: AdmissionConfig::default(),
            max_pipeline: 128,
            frame_timeout: Duration::from_secs(10),
            cross_products: false,
            artifact_dir: None,
            warm: false,
            reuseport: false,
        }
    }
}

/// Resolves a `reactors` setting: `0` means one per available core.
pub fn resolve_reactors(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    wake_set: Arc<WakeSet>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving state (counters, services).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Signals shutdown and joins every thread.
    pub fn stop(mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until the server exits (external shutdown only).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_set.wake_all();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Sleep after a failed `accept(2)` call (the listener stays readable
/// under level-triggered polling, so returning without this backoff
/// spins the acceptor at 100% CPU for as long as the failure — fd
/// exhaustion, typically — persists).
pub(crate) const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(10);

/// Consecutive `accept(2)` failures tolerated before the acceptor
/// declares server-wide shutdown (mirrors [`MAX_POLL_ERRORS`]).
pub(crate) const MAX_ACCEPT_ERRORS: u32 = 100;

/// What to do after an `accept(2)` failure.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum AcceptVerdict {
    /// Transient (so far): sleep [`ACCEPT_ERROR_BACKOFF`], then poll
    /// again.
    Backoff,
    /// Persistent: shut the server down rather than hang half-alive.
    GiveUp,
}

/// The consecutive-failure policy for `accept(2)`, separated from the
/// accepting loops (the dedicated acceptor thread, or each reactor in
/// `SO_REUSEPORT` mode) so the verdict sequence is unit-testable
/// without forcing real fd exhaustion.
#[derive(Debug, Default)]
pub(crate) struct AcceptBackoff {
    pub(crate) consecutive: u32,
}

impl AcceptBackoff {
    pub(crate) fn on_success(&mut self) {
        self.consecutive = 0;
    }

    pub(crate) fn on_error(&mut self) -> AcceptVerdict {
        self.consecutive += 1;
        if self.consecutive >= MAX_ACCEPT_ERRORS {
            AcceptVerdict::GiveUp
        } else {
            AcceptVerdict::Backoff
        }
    }
}

/// One reactor's intake, as the acceptor sees it: push the stream,
/// poke the waker.
struct ReactorMailbox {
    streams: Arc<Mutex<Vec<TcpStream>>>,
    waker: Mutex<UnixStream>,
}

/// The listener-owning thread: accepts and deals connections
/// round-robin to the reactors.
struct Acceptor {
    listener: TcpListener,
    wake_rx: UnixStream,
    mailboxes: Vec<ReactorMailbox>,
    /// Round-robin cursor over `mailboxes`.
    next: usize,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    wake_set: Arc<WakeSet>,
    backoff: AcceptBackoff,
}

impl Acceptor {
    fn run(mut self) {
        let mut poller = Poller::new();
        let mut poll_errors: u32 = 0;
        while !self.shutdown.load(Ordering::SeqCst) {
            poller.clear();
            poller.register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ);
            poller.register(self.wake_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ);
            let events = match poller.wait(None) {
                Ok(events) => {
                    poll_errors = 0;
                    events
                }
                Err(e) => {
                    poll_errors += 1;
                    if poll_errors >= MAX_POLL_ERRORS {
                        eprintln!(
                            "plansample-serve: acceptor poll(2) failed {poll_errors} times \
                             in a row ({e}); shutting down"
                        );
                        self.give_up();
                        return;
                    }
                    std::thread::sleep(POLL_ERROR_BACKOFF);
                    continue;
                }
            };
            for event in events {
                match event.token {
                    TOKEN_LISTENER => {
                        if !self.accept_burst() {
                            return;
                        }
                    }
                    _ => self.drain_waker(),
                }
            }
        }
    }

    /// Accepts until `WouldBlock`. Returns `false` when persistent
    /// accept failure forced server-wide shutdown.
    fn accept_burst(&mut self) -> bool {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.backoff.on_success();
                    self.dispatch(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // EMFILE/ENFILE and friends: the listener stays
                    // readable, so without a backoff this would spin.
                    self.state.accept_errors.fetch_add(1, Ordering::Relaxed);
                    match self.backoff.on_error() {
                        AcceptVerdict::Backoff => {
                            std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                            return true;
                        }
                        AcceptVerdict::GiveUp => {
                            eprintln!(
                                "plansample-serve: accept(2) failed {} times in a row \
                                 ({e}); shutting down",
                                self.backoff.consecutive
                            );
                            self.give_up();
                            return false;
                        }
                    }
                }
            }
        }
    }

    /// Hands a fresh connection to the next reactor in rotation.
    fn dispatch(&mut self, stream: TcpStream) {
        let mailbox = &self.mailboxes[self.next % self.mailboxes.len()];
        self.next = self.next.wrapping_add(1);
        mailbox
            .streams
            .lock()
            .expect("mailbox poisoned")
            .push(stream);
        if let Ok(mut w) = mailbox.waker.lock() {
            // WouldBlock is ignored: a full pipe already guarantees
            // the reactor will wake.
            let _ = w.write(&[1]);
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
    }

    fn give_up(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_set.wake_all();
    }
}

/// `SO_REUSEPORT` listener creation. The build has no libc crate, so
/// this declares the four socket-layer entry points it needs (std
/// already links libc) and builds each listener by hand: the option
/// must be set *between* `socket(2)` and `bind(2)`, which
/// `TcpListener::bind` gives no hook for.
#[cfg(target_os = "linux")]
mod reuseport {
    use std::io;
    use std::net::{SocketAddr, TcpListener};
    use std::os::fd::FromRawFd;
    use std::os::raw::{c_int, c_uint};

    /// `struct sockaddr_in` (IPv4 only; v6 addresses take the
    /// acceptor fallback).
    #[repr(C)]
    struct SockAddrIn {
        sin_family: u16,
        /// Big-endian port.
        sin_port: u16,
        /// Big-endian address.
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_int,
            optlen: c_uint,
        ) -> c_int;
        fn bind(fd: c_int, addr: *const SockAddrIn, len: c_uint) -> c_int;
        fn listen(fd: c_int, backlog: c_int) -> c_int;
    }

    const AF_INET: c_int = 2;
    const SOCK_STREAM: c_int = 1;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const SOL_SOCKET: c_int = 1;
    const SO_REUSEPORT: c_int = 15;
    const BACKLOG: c_int = 1024;

    /// One listening socket with `SO_REUSEPORT` set, bound to `addr`.
    pub(super) fn listener(addr: SocketAddr) -> io::Result<TcpListener> {
        let SocketAddr::V4(v4) = addr else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "SO_REUSEPORT mode supports IPv4 listen addresses only",
            ));
        };
        let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // From here the fd has an owner: any failure drops (closes) it.
        let sock = unsafe { TcpListener::from_raw_fd(fd) };
        let one: c_int = 1;
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEPORT,
                &one,
                std::mem::size_of::<c_int>() as c_uint,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        let sa = SockAddrIn {
            sin_family: AF_INET as u16,
            sin_port: v4.port().to_be(),
            sin_addr: u32::from_be_bytes(v4.ip().octets()).to_be(),
            sin_zero: [0; 8],
        };
        let rc = unsafe { bind(fd, &sa, std::mem::size_of::<SockAddrIn>() as c_uint) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        if unsafe { listen(fd, BACKLOG) } != 0 {
            return Err(io::Error::last_os_error());
        }
        sock.set_nonblocking(true)?;
        Ok(sock)
    }
}

/// Binds one `SO_REUSEPORT` listener per reactor. The first bind
/// resolves an ephemeral port request; its siblings bind the concrete
/// port so the kernel groups all of them into one balancing set.
fn bind_reuseport(addr: &str, reactors: usize) -> io::Result<Vec<TcpListener>> {
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (addr, reactors);
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_REUSEPORT listener groups are Linux-only on this build",
        ))
    }
    #[cfg(target_os = "linux")]
    {
        use std::net::ToSocketAddrs;
        let requested = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
        })?;
        let first = reuseport::listener(requested)?;
        let concrete = first.local_addr()?;
        let mut listeners = vec![first];
        for _ in 1..reactors {
            listeners.push(reuseport::listener(concrete)?);
        }
        Ok(listeners)
    }
}

/// How connections reach the reactors: one shared listener drained by
/// a dedicated acceptor thread, or a per-reactor `SO_REUSEPORT` group
/// balanced by the kernel.
enum Intake {
    Shared(TcpListener),
    PerReactor(Vec<TcpListener>),
}

/// Wires the artifact store to the serving state: every TPC-H
/// preparation writes through to disk, and (optionally) the store's
/// current contents warm the cache before the first byte is served.
fn attach_store(config: &ServerConfig, state: &ServerState) -> io::Result<()> {
    let Some(dir) = &config.artifact_dir else {
        return Ok(());
    };
    let store = plansample_artifact::ArtifactStore::open(dir)
        .map_err(|e| io::Error::other(e.to_string()))?;
    if config.warm {
        match store.warm(state.tpch_service()) {
            Ok(report) => eprintln!(
                "plansample-serve: warmed {} artifact(s) from {} \
                 ({} refused, {} quarantined)",
                report.loaded,
                store.dir().display(),
                report.refused,
                report.quarantined
            ),
            // Warming is an optimization: a failed pass (e.g. the
            // directory vanished) must not keep the server down.
            Err(e) => eprintln!("plansample-serve: cache warming failed: {e}"),
        }
    }
    state.tpch_service().set_persist(Arc::new(move |prepared| {
        if let Err(e) = store.save(prepared) {
            eprintln!("plansample-serve: artifact save failed: {e}");
        }
    }));
    Ok(())
}

/// Binds the listener(s) and spawns the reactors, each reactor's
/// worker pool, and (unless every reactor accepts for itself via
/// `SO_REUSEPORT`) the acceptor.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let reactors = resolve_reactors(config.reactors);
    let intake = if config.reuseport {
        match bind_reuseport(&config.addr, reactors) {
            Ok(listeners) => Intake::PerReactor(listeners),
            Err(e) => {
                eprintln!(
                    "plansample-serve: SO_REUSEPORT unavailable ({e}); \
                     falling back to the round-robin acceptor"
                );
                let listener = TcpListener::bind(&config.addr)?;
                listener.set_nonblocking(true)?;
                Intake::Shared(listener)
            }
        }
    } else {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Intake::Shared(listener)
    };
    let addr = match &intake {
        Intake::Shared(l) => l.local_addr()?,
        Intake::PerReactor(ls) => ls[0].local_addr()?,
    };

    let optimizer = if config.cross_products {
        plansample_optimizer::OptimizerConfig::with_cross_products()
    } else {
        plansample_optimizer::OptimizerConfig::default()
    };
    let state = Arc::new(ServerState::new(
        optimizer,
        config.cache_entries,
        config.byte_budget,
        config.admission,
        reactors,
    ));
    attach_store(&config, &state)?;
    let shutdown = Arc::new(AtomicBool::new(false));

    // One socketpair per event-loop thread (acceptor first). Both ends
    // nonblocking: the read side so draining never stalls the loop,
    // the write side so a full wake buffer never blocks a sender
    // (O_NONBLOCK lives on the shared open file description, so
    // per-sender clones inherit it).
    let wake_pair = || -> io::Result<(UnixStream, UnixStream)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((tx, rx))
    };
    // In SO_REUSEPORT mode each reactor accepts for itself: no shared
    // listener, no acceptor thread, no acceptor waker.
    let (shared_listener, mut reactor_listeners): (Option<TcpListener>, Vec<Option<TcpListener>>) =
        match intake {
            Intake::Shared(l) => (Some(l), (0..reactors).map(|_| None).collect()),
            Intake::PerReactor(ls) => (None, ls.into_iter().map(Some).collect()),
        };
    let acceptor_wake = match &shared_listener {
        Some(_) => Some(wake_pair()?),
        None => None,
    };
    let mut reactor_wake = Vec::with_capacity(reactors);
    for _ in 0..reactors {
        reactor_wake.push(wake_pair()?);
    }

    // The acceptor needs each reactor's waker (for dispatch) and so do
    // that reactor's workers (for completions) — clone before the
    // originals move into the WakeSet.
    let mut mailboxes = Vec::with_capacity(reactors);
    let mut worker_wakers = Vec::with_capacity(reactors);
    let mut mailbox_handles = Vec::with_capacity(reactors);
    for (tx, _) in &reactor_wake {
        let streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        mailbox_handles.push(Arc::clone(&streams));
        mailboxes.push(ReactorMailbox {
            streams,
            waker: Mutex::new(tx.try_clone()?),
        });
        worker_wakers.push(tx.try_clone()?);
    }
    let mut wakers = Vec::with_capacity(reactors + 1);
    let acceptor_wake_rx = acceptor_wake.map(|(tx, rx)| {
        wakers.push(Mutex::new(tx));
        rx
    });
    let mut wake_rxs = Vec::with_capacity(reactors);
    for (tx, rx) in reactor_wake {
        wakers.push(Mutex::new(tx));
        wake_rxs.push(rx);
    }
    let wake_set = Arc::new(WakeSet(wakers));

    let mut threads = Vec::new();
    if let (Some(listener), Some(wake_rx)) = (shared_listener, acceptor_wake_rx) {
        threads.push(
            std::thread::Builder::new()
                .name("plansample-serve-acceptor".into())
                .spawn({
                    let state = Arc::clone(&state);
                    let shutdown = Arc::clone(&shutdown);
                    let wake_set = Arc::clone(&wake_set);
                    move || {
                        Acceptor {
                            listener,
                            wake_rx,
                            mailboxes,
                            next: 0,
                            state,
                            shutdown,
                            wake_set,
                            backoff: AcceptBackoff::default(),
                        }
                        .run();
                    }
                })?,
        );
    }

    let frame_timeout = config.frame_timeout;
    let max_pipeline = config.max_pipeline.max(1);
    for (index, wake_rx) in wake_rxs.into_iter().enumerate() {
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

        for w in 0..config.workers.max(1) {
            let jobs_rx = Arc::clone(&jobs_rx);
            let completions = Arc::clone(&completions);
            let state = Arc::clone(&state);
            let mut waker = worker_wakers[index].try_clone()?;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("plansample-serve-worker-{index}-{w}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing.
                        let job = match jobs_rx.lock().expect("job queue poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => return, // reactor exited, channel closed
                        };
                        let payload = state.handle_encoded(&job.request, job.request_id);
                        completions
                            .lock()
                            .expect("completion queue poisoned")
                            .push(Completion {
                                token: job.token,
                                payload,
                            });
                        let _ = waker.write(&[1]);
                    })?,
            );
        }

        let mailbox = Arc::clone(&mailbox_handles[index]);
        let listener = reactor_listeners[index].take();
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        let wake_set = Arc::clone(&wake_set);
        threads.push(
            std::thread::Builder::new()
                .name(format!("plansample-serve-reactor-{index}"))
                .spawn(move || {
                    Reactor {
                        index,
                        wake_rx,
                        mailbox,
                        listener,
                        accept_backoff: AcceptBackoff::default(),
                        conns: HashMap::new(),
                        next_token: crate::reactor::FIRST_CONN_TOKEN,
                        poller: Poller::new(),
                        state,
                        jobs_tx,
                        completions,
                        shutdown,
                        wake_set,
                        frame_timeout,
                        max_pipeline,
                        clock: Instant::now,
                    }
                    .run();
                })?,
        );
    }

    Ok(ServerHandle {
        addr,
        state,
        shutdown,
        wake_set,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_gives_up_only_after_the_bound() {
        let mut backoff = AcceptBackoff::default();
        for i in 1..MAX_ACCEPT_ERRORS {
            assert_eq!(
                backoff.on_error(),
                AcceptVerdict::Backoff,
                "failure #{i} must back off, not give up"
            );
        }
        assert_eq!(
            backoff.on_error(),
            AcceptVerdict::GiveUp,
            "failure #{MAX_ACCEPT_ERRORS} exhausts the tolerance"
        );
    }

    #[test]
    fn accept_backoff_resets_on_success() {
        let mut backoff = AcceptBackoff::default();
        for _ in 0..MAX_ACCEPT_ERRORS - 1 {
            backoff.on_error();
        }
        backoff.on_success();
        assert_eq!(
            backoff.on_error(),
            AcceptVerdict::Backoff,
            "one success forgives the whole streak"
        );
    }

    #[test]
    fn resolve_reactors_zero_means_per_core() {
        assert_eq!(resolve_reactors(3), 3);
        assert!(resolve_reactors(0) >= 1);
    }

    /// `--reuseport` end to end: per-reactor listeners (Linux) or the
    /// logged acceptor fallback (elsewhere) — either way every
    /// connection must be served and counted.
    #[test]
    fn reuseport_mode_serves_requests() {
        let handle = start(ServerConfig {
            reactors: 2,
            workers: 1,
            reuseport: true,
            ..Default::default()
        })
        .expect("reuseport mode (or its fallback) starts");
        let addr = handle.addr();
        let conns = 8;
        for _ in 0..conns {
            let mut client = crate::client::Client::connect(addr).unwrap();
            let response = client.call(&crate::wire::Request::Stats).unwrap();
            assert!(
                matches!(response, crate::wire::Response::Stats(_)),
                "got {response:?}"
            );
        }
        let state = Arc::clone(handle.state());
        handle.stop();
        assert_eq!(
            state.connections_total.load(Ordering::Relaxed),
            conns as u64
        );
        let per_reactor: u64 = state
            .per_reactor
            .iter()
            .map(|r| r.connections.load(Ordering::Relaxed))
            .sum();
        assert_eq!(per_reactor, conns as u64, "every accept lands on a reactor");
    }

    /// On Linux the SO_REUSEPORT bind itself must work, including
    /// ephemeral-port resolution shared across the group.
    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_group_shares_one_ephemeral_port() {
        let listeners = bind_reuseport("127.0.0.1:0", 3).expect("reuseport binds on linux");
        assert_eq!(listeners.len(), 3);
        let port = listeners[0].local_addr().unwrap().port();
        assert_ne!(port, 0);
        for l in &listeners {
            assert_eq!(l.local_addr().unwrap().port(), port);
        }
    }
}
