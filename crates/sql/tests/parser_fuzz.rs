//! Fuzz-style property tests for the SQL frontend.
//!
//! Two obligations:
//!
//! 1. **Totality** — the lexer and parser are fed arbitrary token soup
//!    and arbitrary byte strings; they must return `Ok` or a positioned
//!    `ParseError`, never panic.
//! 2. **Normalization** — generated, *valid* select-project-join
//!    queries must parse to the same normalized [`QuerySpec`] under the
//!    transformations the language declares meaningless: permuted
//!    `WHERE` conjuncts, keyword case, whitespace shape, and mirrored
//!    comparisons (`24 > col` for `col < 24`, flipped join-edge
//!    operands). Join edges and filters are compared as multisets with
//!    symmetric edge endpoints, which is exactly the invariance the
//!    serving cache key relies on upstream.

use plansample_catalog::Catalog;
use plansample_query::QuerySpec;
use plansample_sql::{lex, parse};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn catalog() -> Catalog {
    plansample_catalog::tpch::catalog().0
}

/// Vocabulary for token soup: every token class the grammar knows plus
/// near-miss garbage.
const VOCAB: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "ORDER",
    "BY",
    "OPTION",
    "USEPLAN",
    "AND",
    "AS",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
    "*",
    ",",
    ".",
    "(",
    ")",
    "=",
    "<",
    "<=",
    ">",
    ">=",
    "<>",
    ";",
    "nation",
    "region",
    "lineitem",
    "n_name",
    "r_regionkey",
    "l_quantity",
    "n1",
    "x",
    "0",
    "42",
    "3.25",
    "'ASIA'",
    "'unterminated",
    "18446744073709551616",
    "@#$",
    "世界",
    "--",
    "\u{0}",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn token_soup_never_panics(tokens in vec(0usize..VOCAB.len(), 0..40)) {
        let sql: String = tokens
            .iter()
            .map(|&i| VOCAB[i])
            .collect::<Vec<_>>()
            .join(" ");
        // Either outcome is fine; panicking is not.
        let _ = parse(&catalog(), &sql);
        let _ = lex(&sql);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..120)) {
        let sql = String::from_utf8_lossy(&bytes).into_owned();
        if let Err(e) = parse(&catalog(), &sql) {
            // The diagnostic renderer must also hold up: offsets point
            // into the original text even with multi-byte characters.
            let _ = e.render(&sql);
        }
        let _ = lex(&sql);
    }
}

/// One generated SPJ query: a connected join chain over TPC-H with
/// optional filters.
#[derive(Debug, Clone)]
struct SpjQuery {
    select: &'static str,
    tables: Vec<&'static str>,
    conjuncts: Vec<&'static str>,
}

/// Join chains over the TPC-H schema (each prefix of a chain is itself
/// connected) plus per-chain filter pools.
const CHAINS: &[(&[&str], &[&str], &[&str])] = &[
    (
        &["region r", "nation n", "supplier s"],
        &[
            "n.n_regionkey = r.r_regionkey",
            "s.s_nationkey = n.n_nationkey",
        ],
        &[
            "r.r_regionkey < 3",
            "n.n_nationkey >= 5",
            "s.s_acctbal > 100",
        ],
    ),
    (
        &["customer c", "orders o", "lineitem l"],
        &["o.o_custkey = c.c_custkey", "l.l_orderkey = o.o_orderkey"],
        &[
            "c.c_acctbal > 10",
            "o.o_totalprice < 100000",
            "l.l_quantity < 24",
        ],
    ),
];

fn arb_spj() -> impl Strategy<Value = SpjQuery> {
    (0usize..CHAINS.len(), 2usize..=3, any::<u8>(), 0usize..3).prop_map(
        |(chain, len, filter_mask, select)| {
            let (tables, joins, filters) = CHAINS[chain];
            let tables: Vec<&'static str> = tables[..len].to_vec();
            let mut conjuncts: Vec<&'static str> = joins[..len - 1].to_vec();
            for (i, filter) in filters[..len].iter().enumerate() {
                if filter_mask & (1 << i) != 0 {
                    conjuncts.push(filter);
                }
            }
            SpjQuery {
                select: ["*", "COUNT(*)", "COUNT(*), SUM(l_quantity)"][select],
                tables,
                conjuncts,
            }
        },
    )
}

/// Mirrors a rendered conjunct `a op b` to `b op' a`. The parser
/// normalizes literal-first filters by flipping the operator and treats
/// join edges symmetrically, so both spellings must produce the same
/// spec.
fn flip_conjunct(conjunct: &str) -> String {
    let parts: Vec<&str> = conjunct.split_whitespace().collect();
    let [lhs, op, rhs] = parts[..] else {
        panic!("conjunct {conjunct:?} is not `lhs op rhs`")
    };
    let mirrored = match op {
        "<" => ">",
        "<=" => ">=",
        ">" => "<",
        ">=" => "<=",
        "=" => "=",
        "<>" => "<>",
        other => panic!("unknown operator {other:?}"),
    };
    format!("{rhs} {mirrored} {lhs}")
}

impl SpjQuery {
    /// Renders the query with a seed-driven conjunct order, keyword
    /// case, whitespace shape, and per-conjunct operand mirroring.
    fn render(&self, seed: u64) -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mangle = |kw: &str| -> String {
            kw.chars()
                .map(|c| {
                    if rng.gen_range(0..2) == 0 {
                        c.to_ascii_lowercase()
                    } else {
                        c.to_ascii_uppercase()
                    }
                })
                .collect()
        };
        let select_kw = mangle("SELECT");
        let from_kw = mangle("FROM");
        let where_kw = mangle("WHERE");
        let and_kw = mangle("AND");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut order: Vec<usize> = (0..self.conjuncts.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..i + 1));
        }
        let gap = |rng: &mut StdRng| [" ", "  ", "\n", " \t "][rng.gen_range(0..4)].to_string();
        // `SUM(l_quantity)` only names a column when lineitem is in
        // scope; fall back to `*` otherwise.
        let select = if self.select.contains("l_quantity")
            && !self.tables.iter().any(|t| t.starts_with("lineitem"))
        {
            "*"
        } else {
            self.select
        };
        let mut sql = format!(
            "{select_kw}{}{select}{}{from_kw}{}{}",
            gap(&mut rng),
            gap(&mut rng),
            gap(&mut rng),
            self.tables.join(", "),
        );
        if !order.is_empty() {
            sql.push_str(&gap(&mut rng));
            sql.push_str(&where_kw);
            // Conjunct grouping is meaningless in a pure conjunction, so
            // it joins the declared-meaningless transformations: random
            // conjuncts get wrapped in (possibly doubled) parentheses,
            // and sometimes the whole chain gets one outer group — the
            // parser must flatten every spelling to the same spec.
            let outer = rng.gen_range(0..4) == 0;
            let mut body = String::new();
            for (pos, &c) in order.iter().enumerate() {
                if pos > 0 {
                    body.push_str(&gap(&mut rng));
                    body.push_str(&and_kw);
                }
                body.push_str(&gap(&mut rng));
                let conjunct = if rng.gen_range(0..2) == 0 {
                    flip_conjunct(self.conjuncts[c])
                } else {
                    self.conjuncts[c].to_string()
                };
                match rng.gen_range(0..4) {
                    0 => body.push_str(&format!("({conjunct})")),
                    1 => body.push_str(&format!("(( {conjunct} ))")),
                    _ => body.push_str(&conjunct),
                }
            }
            if outer {
                sql.push_str(&format!(" ({body} )"));
            } else {
                sql.push_str(&body);
            }
        }
        sql
    }
}

/// Order-insensitive fingerprint of the spec parts the surface syntax
/// is allowed to permute; the parts it is not (FROM order) stay
/// positional.
fn fingerprint(spec: &QuerySpec) -> (Vec<String>, Vec<String>, Vec<String>, String) {
    let relations: Vec<String> = spec.relations.iter().map(|r| format!("{r:?}")).collect();
    let mut edges: Vec<String> = spec
        .join_edges
        .iter()
        .map(|e| {
            // Symmetric: `a = b` and `b = a` are the same edge.
            let a = format!("{:?}.{}", e.left.rel, e.left.col);
            let b = format!("{:?}.{}", e.right.rel, e.right.col);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            format!("{lo}={hi}@{}", e.selectivity)
        })
        .collect();
    edges.sort();
    let mut filters: Vec<String> = spec
        .filters
        .iter()
        .map(|f| {
            format!(
                "{:?}.{}{}{:?}@{}",
                f.col.rel,
                f.col.col,
                f.op.symbol(),
                f.value,
                f.selectivity
            )
        })
        .collect();
    filters.sort();
    (relations, edges, filters, format!("{:?}", spec.aggregate))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generated_spj_queries_normalize_identically(
        query in arb_spj(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let (sql_a, sql_b) = (query.render(seed_a), query.render(seed_b));
        let catalog = catalog();
        let a = parse(&catalog, &sql_a)
            .unwrap_or_else(|e| panic!("generated SQL failed:\n{}", e.render(&sql_a)));
        let b = parse(&catalog, &sql_b)
            .unwrap_or_else(|e| panic!("generated SQL failed:\n{}", e.render(&sql_b)));
        prop_assert_eq!(a.spec.relations.len(), query.tables.len());
        prop_assert_eq!(a.spec.join_edges.len(), query.tables.len() - 1);
        prop_assert!(a.useplan.is_none());
        prop_assert!(a.order_by.is_empty());
        // Permuted conjuncts, different casing, different whitespace:
        // same normalized query.
        prop_assert_eq!(fingerprint(&a.spec), fingerprint(&b.spec));
    }

    /// Every filter in the pools, spelled canonically and mirrored,
    /// over its full chain: identical fingerprints, and the flipped
    /// spelling still counts as a filter (not a join edge).
    #[test]
    fn mirrored_filters_normalize_to_their_canonical_spelling(
        chain in 0usize..CHAINS.len(),
        idx in 0usize..3,
    ) {
        let (tables, joins, filters) = CHAINS[chain];
        let base = format!(
            "SELECT * FROM {} WHERE {}",
            tables.join(", "),
            joins.join(" AND ")
        );
        let canonical = format!("{base} AND {}", filters[idx]);
        let mirrored = format!("{base} AND {}", flip_conjunct(filters[idx]));
        let catalog = catalog();
        let a = parse(&catalog, &canonical)
            .unwrap_or_else(|e| panic!("canonical failed:\n{}", e.render(&canonical)));
        let b = parse(&catalog, &mirrored)
            .unwrap_or_else(|e| panic!("mirrored failed:\n{}", e.render(&mirrored)));
        prop_assert_eq!(a.spec.filters.len(), 1);
        prop_assert_eq!(b.spec.filters.len(), 1);
        prop_assert_eq!(b.spec.join_edges.len(), joins.len());
        prop_assert_eq!(fingerprint(&a.spec), fingerprint(&b.spec));
    }

    /// Directed grouping cases on top of the render fuzzing: a
    /// multi-conjunct group, nested groups, and a group spanning the
    /// whole WHERE all flatten to the ungrouped spelling, and join
    /// edges inside groups are still recognized as join edges.
    #[test]
    fn parenthesized_conjunct_groups_flatten(chain in 0usize..CHAINS.len()) {
        let (tables, joins, filters) = CHAINS[chain];
        let from = tables.join(", ");
        let flat = format!(
            "SELECT * FROM {from} WHERE {} AND {}",
            joins.join(" AND "),
            filters[0],
        );
        let catalog = catalog();
        let reference = parse(&catalog, &flat)
            .unwrap_or_else(|e| panic!("flat failed:\n{}", e.render(&flat)));
        for grouped in [
            format!("SELECT * FROM {from} WHERE ({}) AND ({})", joins.join(" AND "), filters[0]),
            format!("SELECT * FROM {from} WHERE (({} AND {}))", joins.join(" AND "), filters[0]),
            format!(
                "SELECT * FROM {from} WHERE ({}) AND (({}))",
                joins.join(") AND ("),
                filters[0],
            ),
        ] {
            let parsed = parse(&catalog, &grouped)
                .unwrap_or_else(|e| panic!("grouped failed:\n{}", e.render(&grouped)));
            prop_assert_eq!(parsed.spec.join_edges.len(), joins.len());
            prop_assert_eq!(parsed.spec.filters.len(), 1);
            prop_assert_eq!(fingerprint(&parsed.spec), fingerprint(&reference.spec));
        }
        // Malformed groupings stay errors, positioned, not panics.
        for bad in [
            format!("SELECT * FROM {from} WHERE ({}", joins[0]),
            format!("SELECT * FROM {from} WHERE {})", joins[0]),
            format!("SELECT * FROM {from} WHERE ()"),
            format!("SELECT * FROM {from} WHERE ({} AND) {}", joins[0], filters[0]),
        ] {
            let err = parse(&catalog, &bad).expect_err("malformed grouping must not parse");
            let _ = err.render(&bad);
        }
    }

    #[test]
    fn useplan_numbers_round_trip(query in arb_spj(), n in any::<u64>(), seed in any::<u64>()) {
        let sql = format!("{} OPTION (USEPLAN {n})", query.render(seed));
        let parsed = parse(&catalog(), &sql)
            .unwrap_or_else(|e| panic!("generated SQL failed:\n{}", e.render(&sql)));
        prop_assert_eq!(parsed.useplan.expect("USEPLAN present").to_u64(), Some(n));
    }

    /// ORDER BY on a generated SPJ block: the clause must slot between
    /// WHERE and OPTION, resolve to the first FROM relation (always
    /// `RelId(0)` — the parser keeps FROM order positional), and be
    /// insensitive to the same render mangling as the rest.
    #[test]
    fn order_by_on_generated_queries_resolves(query in arb_spj(), seed in any::<u64>()) {
        // A known column of each chain's first table.
        let col = match query.tables[0] {
            "region r" => "r.r_name",
            "customer c" => "c.c_name",
            other => panic!("unexpected head table {other}"),
        };
        let sql = format!("{} ORDER BY {col} OPTION (USEPLAN 1)", query.render(seed));
        let parsed = parse(&catalog(), &sql)
            .unwrap_or_else(|e| panic!("generated SQL failed:\n{}", e.render(&sql)));
        prop_assert_eq!(parsed.order_by.len(), 1);
        prop_assert_eq!(parsed.order_by[0].rel.0, 0);
        prop_assert_eq!(parsed.useplan.expect("USEPLAN present").to_u64(), Some(1));
    }
}
