//! SQL frontend with the paper's `OPTION (USEPLAN n)` extension.
//!
//! §4: "we extend the SQL syntax with an option to specify what plan to
//! use for the execution. The following SQL statement causes the
//! optimizer to build the MEMO structure, count the possible plans, and
//! select plan number 8 for execution":
//!
//! ```sql
//! SELECT * FROM Professors P, Students S, Enrolled E, Courses C
//! WHERE S.Name = 'Sam White' AND S.SID = E.SID AND
//!       E.Title = C.Title AND C.By = P.PID
//! OPTION (USEPLAN 8)
//! ```
//!
//! This crate parses a single-block SQL subset — `SELECT` with
//! projections or aggregates, comma-separated `FROM` with aliases,
//! conjunctive `WHERE` mixing equality joins and literal filters,
//! `GROUP BY`, `ORDER BY`, and the `OPTION (USEPLAN n)` clause with
//! arbitrarily large plan numbers — into a [`QuerySpec`] ready for the
//! optimizer.
//!
//! `ORDER BY` does not change the plan *space* (sort enforcers are
//! already part of it); it is a requirement on the plan that runs. The
//! parser resolves the columns into [`ParsedQuery::order_by`], and
//! callers check a chosen plan against it with
//! `PreparedQuery::satisfies_order` — which consults the delivered
//! orders the optimizer tracked, including column equivalences from
//! join predicates.
//!
//! Aggregate queries normalize their output column order to
//! `group-by columns ++ aggregates` (the SELECT order is not preserved);
//! this matches the execution engine's aggregate layout.
//!
//! ```
//! use plansample_catalog::tpch;
//! use plansample_sql::parse;
//!
//! let (catalog, _) = tpch::catalog();
//! let parsed = parse(
//!     &catalog,
//!     "SELECT n_name, SUM(l_extendedprice) \
//!      FROM lineitem l, supplier s, nation n \
//!      WHERE l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey \
//!      GROUP BY n.n_name OPTION (USEPLAN 42)",
//! )
//! .unwrap();
//! assert_eq!(parsed.spec.relations.len(), 3);
//! assert_eq!(parsed.useplan.unwrap().to_u64(), Some(42));
//! ```

#![warn(missing_docs)]

mod lexer;
mod parser;

pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::parse;

use plansample_bignum::Nat;
use plansample_query::{ColRef, QuerySpec};
use std::fmt;

/// A parsed statement: the query plus the optional plan number.
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// The query specification.
    pub spec: QuerySpec,
    /// Plan number from `OPTION (USEPLAN n)`, if present.
    pub useplan: Option<Nat>,
    /// Resolved `ORDER BY` columns, in requirement order (empty when
    /// the statement has no `ORDER BY`). A delivered-order requirement
    /// on whichever plan runs, not a change to the plan space; check a
    /// plan with `PreparedQuery::satisfies_order`.
    pub order_by: Vec<ColRef>,
}

/// A parse failure with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the SQL text.
    pub offset: usize,
}

impl ParseError {
    /// Renders the error with a caret pointing at the offending spot.
    pub fn render(&self, sql: &str) -> String {
        let offset = self.offset.min(sql.len());
        let line_start = sql[..offset].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = sql[offset..]
            .find('\n')
            .map(|i| offset + i)
            .unwrap_or(sql.len());
        let column = offset - line_start;
        format!(
            "{}\n{}\n{}^",
            self.message,
            &sql[line_start..line_end],
            " ".repeat(column)
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_catalog::tpch;
    use plansample_catalog::Datum;
    use plansample_query::{AggFunc, CmpOp};

    fn cat() -> plansample_catalog::Catalog {
        tpch::catalog().0
    }

    #[test]
    fn parses_the_papers_example_shape() {
        // The §4 example uses its own schema; the same shape over TPC-H:
        let catalog = cat();
        let parsed = parse(
            &catalog,
            "SELECT * \
             FROM customer c, orders o, lineitem l, supplier s \
             WHERE c.c_name = 'Sam White' AND \
                   c.c_custkey = o.o_custkey AND \
                   o.o_orderkey = l.l_orderkey AND \
                   l.l_suppkey = s.s_suppkey \
             OPTION (USEPLAN 8)",
        )
        .unwrap();
        assert_eq!(parsed.spec.relations.len(), 4);
        assert_eq!(parsed.spec.join_edges.len(), 3);
        assert_eq!(parsed.spec.filters.len(), 1);
        assert_eq!(parsed.spec.filters[0].value, Datum::Str("Sam White".into()));
        assert_eq!(parsed.useplan.unwrap().to_u64(), Some(8));
        assert!(parsed.spec.projection.is_none());
        assert!(parsed.spec.aggregate.is_none());
    }

    #[test]
    fn aliases_with_and_without_as() {
        let catalog = cat();
        let parsed = parse(
            &catalog,
            "SELECT * FROM nation AS n1, nation n2 WHERE n1.n_regionkey = n2.n_regionkey",
        )
        .unwrap();
        assert_eq!(parsed.spec.relations[0].alias, "n1");
        assert_eq!(parsed.spec.relations[1].alias, "n2");
    }

    #[test]
    fn unqualified_columns_resolve_uniquely() {
        let catalog = cat();
        let parsed = parse(
            &catalog,
            "SELECT n_name FROM nation, region WHERE n_regionkey = r_regionkey AND r_name = 'ASIA'",
        )
        .unwrap();
        assert_eq!(parsed.spec.join_edges.len(), 1);
        assert_eq!(parsed.spec.projection.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn ambiguous_unqualified_column_rejected() {
        let catalog = cat();
        let err = parse(
            &catalog,
            "SELECT * FROM nation n1, nation n2 WHERE n_name = 'FRANCE'",
        )
        .unwrap_err();
        assert!(err.message.contains("ambiguous"), "{err}");
    }

    #[test]
    fn aggregates_and_group_by() {
        let catalog = cat();
        let parsed = parse(
            &catalog,
            "SELECT n_name, SUM(l_extendedprice), COUNT(*) \
             FROM lineitem l, supplier s, nation n \
             WHERE l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey \
             GROUP BY n.n_name",
        )
        .unwrap();
        let agg = parsed.spec.aggregate.unwrap();
        assert_eq!(agg.group_by.len(), 1);
        assert_eq!(agg.aggs.len(), 2);
        assert_eq!(agg.aggs[0].func, AggFunc::Sum);
        assert_eq!(agg.aggs[1].func, AggFunc::CountStar);
    }

    #[test]
    fn selected_column_must_be_grouped() {
        let catalog = cat();
        let err = parse(
            &catalog,
            "SELECT n_name, SUM(s_acctbal) FROM supplier s, nation n \
             WHERE s.s_nationkey = n.n_nationkey GROUP BY s.s_name",
        )
        .unwrap_err();
        assert!(err.message.contains("must appear in GROUP BY"), "{err}");
    }

    #[test]
    fn filters_with_all_operators() {
        let catalog = cat();
        let parsed = parse(
            &catalog,
            "SELECT * FROM lineitem l WHERE l.l_quantity < 24 AND l.l_discount >= 5 \
             AND l.l_shipdate <> 100 AND l.l_suppkey <= 10 AND l.l_partkey > 3",
        )
        .unwrap();
        let ops: Vec<CmpOp> = parsed.spec.filters.iter().map(|f| f.op).collect();
        assert_eq!(
            ops,
            vec![CmpOp::Lt, CmpOp::Ge, CmpOp::Ne, CmpOp::Le, CmpOp::Gt]
        );
    }

    #[test]
    fn literal_first_filters_normalize_by_flipping() {
        let catalog = cat();
        // `24 > l_quantity` ⇔ `l_quantity < 24`, etc.
        let parsed = parse(
            &catalog,
            "SELECT * FROM lineitem l WHERE 24 > l.l_quantity AND 5 <= l.l_discount \
             AND 100 <> l.l_shipdate AND 10 >= l.l_suppkey AND 3 < l.l_partkey \
             AND 7 = l.l_orderkey",
        )
        .unwrap();
        let ops: Vec<CmpOp> = parsed.spec.filters.iter().map(|f| f.op).collect();
        assert_eq!(
            ops,
            vec![
                CmpOp::Lt,
                CmpOp::Ge,
                CmpOp::Ne,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Eq
            ]
        );
        assert_eq!(parsed.spec.filters[0].value, Datum::Int(24));

        // Both spellings lower to the identical filter.
        let canonical = parse(&catalog, "SELECT * FROM lineitem WHERE l_quantity < 24").unwrap();
        let reversed = parse(&catalog, "SELECT * FROM lineitem WHERE 24 > l_quantity").unwrap();
        assert_eq!(
            format!("{:?}", canonical.spec.filters),
            format!("{:?}", reversed.spec.filters)
        );
    }

    #[test]
    fn literal_first_string_filters_parse() {
        let catalog = cat();
        let parsed = parse(&catalog, "SELECT * FROM nation WHERE 'ASIA' = n_name").unwrap();
        assert_eq!(parsed.spec.filters[0].op, CmpOp::Eq);
        assert_eq!(parsed.spec.filters[0].value, Datum::Str("ASIA".into()));
    }

    #[test]
    fn literal_op_literal_is_rejected() {
        let catalog = cat();
        let err = parse(&catalog, "SELECT * FROM nation WHERE 1 < 2").unwrap_err();
        assert!(err.message.contains("column"), "{err}");
    }

    #[test]
    fn non_equality_column_join_rejected() {
        let catalog = cat();
        let err = parse(
            &catalog,
            "SELECT * FROM nation n, region r WHERE n.n_regionkey < r.r_regionkey",
        )
        .unwrap_err();
        assert!(err.message.contains("equality"), "{err}");
    }

    #[test]
    fn useplan_accepts_numbers_beyond_u64() {
        let catalog = cat();
        let parsed = parse(
            &catalog,
            "SELECT * FROM nation OPTION (USEPLAN 340282366920938463463374607431768211456)",
        )
        .unwrap();
        let n = parsed.useplan.unwrap();
        assert!(n.to_u128().is_none(), "number exceeds u128");
        assert_eq!(n.to_decimal(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn float_literals_parse() {
        let catalog = cat();
        let parsed = parse(&catalog, "SELECT * FROM supplier s WHERE s.s_acctbal > 1.5").unwrap();
        assert_eq!(parsed.spec.filters[0].value, Datum::Float(1.5));
    }

    #[test]
    fn trailing_semicolon_and_case_insensitivity() {
        let catalog = cat();
        assert!(parse(&catalog, "select * from NATION;").is_err()); // table names are case-sensitive
        assert!(parse(&catalog, "select * from nation;").is_ok());
        // Keywords are case-insensitive; the error is `SELECT *` with GROUP BY.
        assert!(parse(&catalog, "SeLeCt * FrOm nation GrOuP By nation.n_name").is_err());
    }

    #[test]
    fn group_by_without_aggregates_is_allowed() {
        let catalog = cat();
        let parsed = parse(&catalog, "SELECT n_name FROM nation GROUP BY nation.n_name").unwrap();
        let agg = parsed.spec.aggregate.unwrap();
        assert_eq!(agg.group_by.len(), 1);
        assert!(agg.aggs.is_empty());
    }

    #[test]
    fn order_by_resolves_to_colrefs() {
        let catalog = cat();
        let parsed = parse(
            &catalog,
            "SELECT * FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey \
             ORDER BY r.r_name, n_nationkey OPTION (USEPLAN 3)",
        )
        .unwrap();
        // r.r_name: relation 1, column 1 (r_regionkey, r_name, r_comment).
        // n_nationkey resolves unqualified to nation (relation 0), column 0.
        assert_eq!(parsed.order_by.len(), 2);
        assert_eq!(parsed.order_by[0].rel.0, 1);
        assert_eq!(parsed.order_by[1].rel.0, 0);
        assert_eq!(parsed.order_by[1].col, 0);
        assert_eq!(parsed.useplan.unwrap().to_u64(), Some(3));

        let none = parse(&catalog, "SELECT * FROM nation").unwrap();
        assert!(none.order_by.is_empty());
    }

    #[test]
    fn order_by_rejects_unknown_columns_and_misplacement() {
        let catalog = cat();
        // Qualified reference to a column the aliased table lacks.
        let err = parse(&catalog, "SELECT * FROM nation n ORDER BY n.bogus").unwrap_err();
        assert!(err.message.contains("no column"), "{err}");
        // Unknown alias.
        assert!(parse(&catalog, "SELECT * FROM nation ORDER BY x.n_name").is_err());
        // ORDER BY must precede OPTION.
        assert!(parse(
            &catalog,
            "SELECT * FROM nation OPTION (USEPLAN 1) ORDER BY nation.n_name"
        )
        .is_err());
        // Dangling BY.
        assert!(parse(&catalog, "SELECT * FROM nation ORDER n_name").is_err());
    }

    #[test]
    fn error_positions_point_at_the_problem() {
        let catalog = cat();
        let sql = "SELECT * FROM bogus_table";
        let err = parse(&catalog, sql).unwrap_err();
        assert_eq!(err.offset, 14);
        let rendered = err.render(sql);
        assert!(rendered.contains('^'));
        assert!(rendered
            .lines()
            .last()
            .unwrap()
            .starts_with("              ^"));
    }

    #[test]
    fn unknown_column_and_alias_errors() {
        let catalog = cat();
        assert!(parse(&catalog, "SELECT * FROM nation WHERE nation.bogus = 1").is_err());
        assert!(parse(&catalog, "SELECT * FROM nation WHERE x.n_name = 'A'").is_err());
        assert!(parse(&catalog, "SELECT bogus FROM nation").is_err());
    }

    #[test]
    fn garbage_rejected_with_positions() {
        let catalog = cat();
        for sql in [
            "",
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM nation WHERE",
            "SELECT * FROM nation OPTION (USEPLAN)",
            "SELECT * FROM nation OPTION (USEPLAN 1.5)",
            "SELECT * FROM nation extra garbage here",
            "SELECT * FROM nation, WHERE x = 1",
        ] {
            assert!(parse(&catalog, sql).is_err(), "should reject: {sql}");
        }
    }

    #[test]
    fn count_star_requires_star() {
        let catalog = cat();
        assert!(parse(&catalog, "SELECT COUNT(*) FROM nation").is_ok());
        assert!(parse(&catalog, "SELECT COUNT(n_name) FROM nation").is_err());
    }

    #[test]
    fn mixed_star_and_aggregate_rejected() {
        let catalog = cat();
        // SELECT * plus GROUP BY has no sensible meaning in the subset.
        let err = parse(&catalog, "SELECT * FROM nation GROUP BY nation.n_name");
        assert!(err.is_err());
    }
}
