//! Umbrella crate for the plansample workspace: the single `use
//! plansample::...` surface downstream code imports, plus the home of the
//! cross-crate integration tests in `tests/` and the runnable
//! `examples/`.
//!
//! Everything here is a re-export of [`plansample_core`], which implements
//! the paper's post-optimization machinery over the MEMO:
//!
//! * [`PreparedQuery`] — the owned, `Send + Sync` artifact produced once
//!   per query: counting, the rank/unrank bijection, resumable
//!   enumeration cursors ([`PlanCursor`]), and batched uniform sampling,
//!   all with zero re-optimization;
//! * [`PlanService`] — a bounded LRU of prepared queries keyed by
//!   normalized query + optimizer config: the concurrent serving surface;
//! * [`PlanSpace`] — the lower-level owned plan space the artifact wraps;
//! * [`session`] — the end-to-end pipeline (parse → prepare → pick/sample
//!   → execute) behind the CLI and the `USEPLAN` SQL option;
//! * [`lower`] — turning an unranked plan into an executable operator
//!   tree;
//! * [`validate`] — the paper's differential-testing application;
//! * [`Error`] — the unified error type with `source()` chains across
//!   every layer.
//!
//! See the workspace `README.md` for the crate map and
//! `docs/ARCHITECTURE.md` for how the paper's concepts land in modules.

#![warn(missing_docs)]

pub use plansample_core::*;
