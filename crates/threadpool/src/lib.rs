//! Workspace-internal data parallelism: a persistent worker pool with
//! parallel-for/parallel-map over index ranges.
//!
//! The build environment for this repository has no crates.io access, so
//! — following the `rand`/`proptest`/`criterion` pattern — this crate
//! vendors the slice of `rayon`-style functionality the plan-space
//! construction and batched sampling actually use: fork-join over a
//! contiguous index range. Workers are **persistent**: the first
//! parallel section lazily starts the global [`Pool`], and subsequent
//! sections reuse its parked threads instead of paying a spawn per fork
//! (tens of microseconds per thread under the old scoped-spawn shim —
//! larger than an entire 64-draw sample batch).
//!
//! # Architecture
//!
//! One global chunked **injector queue** of jobs. A job is a
//! lifetime-erased closure over `0..len` plus an atomic chunk cursor;
//! workers (and the submitting caller itself) repeatedly claim the next
//! chunk with a `fetch_add` until the range is exhausted. Dynamic
//! chunk claiming is what provides the load balancing a work-stealing
//! deque would — without per-worker queues, which nothing here needs:
//! jobs are index ranges, not recursive task graphs. Idle workers park
//! on a condvar and are woken per job submission; the caller blocks
//! until every chunk of *its* job has finished, so borrowed closures
//! are sound (the job cannot outlive the call). Panics inside a body
//! are caught per chunk, stop further chunks of that job, and are
//! re-thrown on the caller — the pool itself and unrelated concurrent
//! jobs are unaffected.
//!
//! # Determinism
//!
//! All entry points are sequential-consistent by construction: every
//! index is processed exactly once and results are committed in index
//! order ([`parallel_map`] writes result `i` into slot `i` of the
//! output, whichever worker produced it), so parallel and
//! single-threaded runs are bit-identical for deterministic bodies —
//! the contract `Links::build`, `Counts::compute`, and `sample_batch`
//! build on. Which worker runs which chunk is *not* deterministic; the
//! committed output is.
//!
//! # Thread-count resolution
//!
//! [`num_threads`] resolves, in order:
//!
//! 1. a thread-local override installed by [`with_threads`] (used by
//!    determinism tests to compare 1-thread and N-thread builds without
//!    races between concurrently running tests);
//! 2. the process-wide override set by [`set_num_threads`] (the CLI's
//!    `--threads N` flag lands here);
//! 3. the `PLANSAMPLE_THREADS` environment variable, re-read on every
//!    resolution — *not* cached at first use, so a test or harness that
//!    sets the variable after some earlier parallel section still gets
//!    the count it asked for;
//! 4. [`std::thread::available_parallelism`].
//!
//! The resolved count is a *target*: the global pool grows on demand to
//! one thread below it (the caller is the remaining worker) and keeps
//! the high-water mark parked for later sections. Ranges smaller than
//! two `min_chunk`s, and 1-thread configurations, run entirely inline
//! on the caller — no queue traffic, no wakeups.

#![warn(missing_docs)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Process-wide override; 0 = unset.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Thread-local override; 0 = unset.
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// `PLANSAMPLE_THREADS`, parsed fresh on every call. The previous shim
/// cached the first read in a `OnceLock`, which made later env changes
/// silently inert (see the `env_var_changes_are_observed` regression
/// test); one `getenv` per *parallel section* (not per chunk) is cheap
/// enough not to cache.
fn env_threads() -> Option<usize> {
    std::env::var("PLANSAMPLE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The number of worker threads parallel sections will use, resolved as
/// described in the module docs. Always at least 1.
pub fn num_threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local > 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Sets the process-wide thread count (the CLI's `--threads N`).
/// `0` clears the override.
pub fn set_num_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Runs `f` with the calling thread's parallel sections pinned to `n`
/// threads, restoring the previous setting afterwards (panic-safe).
///
/// Because the override is thread-local, concurrent tests comparing
/// different thread counts cannot race each other.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    assert!(n > 0, "with_threads needs at least one thread");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(LOCAL_THREADS.with(|c| {
        let prev = c.get();
        c.set(n);
        prev
    }));
    f()
}

/// Scoped spawn, re-exported so callers needing raw fork-join (rather
/// than an index range) depend on this crate instead of spelling
/// [`std::thread::scope`]. Raw scopes spawn real threads per call; the
/// index-range entry points below go through the persistent pool.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
{
    std::thread::scope(f)
}

// ---------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------

/// A lifetime-erased parallel section queued on a pool.
///
/// `run` processes one chunk of `0..len` through `data`, which points at
/// a stack frame of the submitting caller. Soundness: the caller blocks
/// in [`Pool::run_job`] until `pending` reaches zero, and chunks are
/// only executed between a successful claim and the matching
/// `finish_chunk`, so `data` strictly outlives every dereference.
struct Job {
    /// Executes chunk `i` (of `chunks` total). Called at most once per
    /// chunk index.
    run: unsafe fn(*const (), usize),
    /// Borrowed closure context on the caller's stack.
    data: *const (),
    /// Next chunk to claim.
    cursor: AtomicUsize,
    /// Total chunks.
    chunks: usize,
    /// Chunks not yet finished (claimed-and-run, skipped, or abandoned).
    pending: AtomicUsize,
    /// Set once a chunk panicked: remaining chunks are skipped so the
    /// caller re-throws promptly instead of finishing a doomed section.
    poisoned: AtomicBool,
    /// First panic payload, re-thrown by the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion signal: the last finished chunk notifies the caller.
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `data` is only dereferenced through `run` while the submitting
// caller is blocked in `run_job`, and the erased closure is `Sync` (the
// public entry points bound it). The raw pointer itself is what strips
// the automatic impls.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs chunks until the job is exhausted or poisoned.
    /// Returns how many chunks this thread finished.
    fn work(&self) -> usize {
        let mut finished = 0;
        loop {
            let c = self.cursor.fetch_add(1, Ordering::AcqRel);
            if c >= self.chunks {
                return finished;
            }
            if !self.poisoned.load(Ordering::Acquire) {
                // SAFETY: chunk `c` was claimed exactly once above, and
                // the caller keeps `data` alive until `pending` drains.
                let result = catch_unwind(AssertUnwindSafe(|| unsafe { (self.run)(self.data, c) }));
                if let Err(payload) = result {
                    self.poisoned.store(true, Ordering::Release);
                    let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                    slot.get_or_insert(payload);
                }
            }
            finished += 1;
            self.finish_chunk();
        }
    }

    fn finish_chunk(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
            *done = true;
            self.done_cv.notify_all();
        }
    }

    fn exhausted(&self) -> bool {
        self.cursor.load(Ordering::Acquire) >= self.chunks
    }
}

// ---------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------

/// The injector queue shared by a pool's workers.
struct Injector {
    /// Jobs with unclaimed chunks. Workers lazily drop exhausted fronts.
    queue: Mutex<VecDeque<Arc<Job>>>,
    /// Wakes parked workers on submission (and on shutdown).
    available: Condvar,
    /// Set by [`Pool::drop`]; workers exit their loop.
    shutdown: AtomicBool,
    /// Live worker threads (observability for the leak tests).
    live: AtomicUsize,
}

/// A persistent worker pool.
///
/// The module-level entry points ([`parallel_for`], [`parallel_map`])
/// use a lazily-started global instance that lives for the process (its
/// idle workers park on a condvar and cost nothing; process exit tears
/// them down). Separate instances exist for tests of the pool's own
/// lifecycle: dropping a `Pool` signals shutdown and **joins** every
/// worker, so no threads outlive it.
pub struct Pool {
    injector: Arc<Injector>,
    /// Join handles of spawned workers, behind a mutex so `ensure_workers`
    /// can grow the pool from any thread.
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Pool {
    /// Creates an empty pool; workers are spawned on demand by the
    /// parallel sections submitted to it.
    pub fn new() -> Pool {
        Pool {
            injector: Arc::new(Injector {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutdown: AtomicBool::new(false),
                live: AtomicUsize::new(0),
            }),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Worker threads currently spawned (the high-water mark of demanded
    /// parallelism, not the number currently busy).
    pub fn spawned_workers(&self) -> usize {
        self.workers.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Worker threads currently running their loop — drains to zero
    /// after [`Pool`] is dropped (test observability; the handle can be
    /// cloned out before the drop).
    pub fn live_workers(&self) -> usize {
        self.injector.live.load(Ordering::Acquire)
    }

    /// Grows the pool to at least `target` workers.
    fn ensure_workers(&self, target: usize) {
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        while workers.len() < target {
            let injector = Arc::clone(&self.injector);
            injector.live.fetch_add(1, Ordering::AcqRel);
            let handle = std::thread::Builder::new()
                .name(format!("plansample-worker-{}", workers.len()))
                .spawn(move || worker_loop(&injector))
                .expect("spawning a pool worker");
            workers.push(handle);
        }
    }

    /// Runs a prepared job to completion: queues it, participates in the
    /// chunk claiming, then blocks until every chunk finished. Re-throws
    /// the first body panic.
    ///
    /// # Safety
    /// `job.data` must stay valid until this returns (guaranteed when it
    /// points into the caller's own stack frame).
    unsafe fn run_job(&self, job: Arc<Job>, helpers: usize) {
        self.ensure_workers(helpers);
        {
            let mut queue = self
                .injector
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            queue.push_back(Arc::clone(&job));
        }
        // One wakeup per helper the job can actually use; surplus parked
        // workers stay parked.
        for _ in 0..helpers {
            self.injector.available.notify_one();
        }

        // The caller is a full participant — this is what makes nested
        // sections deadlock-free: even with every worker busy, the
        // submitting thread drives its own job to completion.
        job.work();

        // Wait for chunks claimed by workers that are still running.
        let mut done = job.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = job.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        drop(done);

        let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

impl Drop for Pool {
    /// Clean shutdown: signals every worker and joins them, so a dropped
    /// pool leaks no threads (asserted by the lifecycle tests). The
    /// global pool is never dropped; its parked workers die with the
    /// process.
    fn drop(&mut self) {
        self.injector.shutdown.store(true, Ordering::Release);
        self.injector.available.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

/// The worker body: pull a job with unclaimed chunks, drain it, park
/// when the queue is empty. Body panics are contained inside
/// [`Job::work`], so a worker survives arbitrary caller bugs.
fn worker_loop(injector: &Injector) {
    loop {
        let job: Option<Arc<Job>> = {
            let mut queue = injector.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if injector.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                // Drop exhausted fronts; claim the first live job.
                while queue.front().is_some_and(|j| j.exhausted()) {
                    queue.pop_front();
                }
                if let Some(job) = queue.front() {
                    break Some(Arc::clone(job));
                }
                queue = injector
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else {
            injector.live.fetch_sub(1, Ordering::AcqRel);
            return;
        };
        job.work();
    }
}

/// The process-global pool behind the module-level entry points.
fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(Pool::new)
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// How many workers a range of `len` items deserves, given the smallest
/// chunk worth a thread.
fn workers_for(len: usize, min_chunk: usize) -> usize {
    let by_work = len / min_chunk.max(1);
    num_threads().min(by_work).max(1)
}

/// Chunk layout of a parallel section: more chunks than workers (up to
/// 4× — dynamic claiming then load-balances uneven bodies) but never
/// chunks smaller than `min_chunk`.
fn chunk_size(len: usize, min_chunk: usize, workers: usize) -> usize {
    len.div_ceil(workers * 4).max(min_chunk.max(1))
}

/// Erased context of one `parallel_for` section.
struct ForCtx<'a, F> {
    body: &'a F,
    len: usize,
    chunk: usize,
}

/// Runs `body` over `0..len`, split into contiguous chunks claimed
/// dynamically by the pool's workers (the caller's thread participates).
/// Chunks are at least `min_chunk` long; ranges shorter than two
/// `min_chunk`s (or a 1-thread configuration) run entirely inline as the
/// single range `0..len`.
///
/// Panics in `body` propagate to the caller after the section quiesces;
/// chunks not yet started by then are skipped.
pub fn parallel_for<F>(len: usize, min_chunk: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let workers = workers_for(len, min_chunk);
    if workers == 1 {
        if len > 0 {
            body(0..len);
        }
        return;
    }
    let chunk = chunk_size(len, min_chunk, workers);
    let chunks = len.div_ceil(chunk);
    let ctx = ForCtx {
        body: &body,
        len,
        chunk,
    };
    unsafe fn run_chunk<F: Fn(Range<usize>) + Sync>(data: *const (), c: usize) {
        // SAFETY: `data` points at the `ForCtx` on the submitting
        // caller's stack, alive for the whole section (see `run_job`).
        let ctx = unsafe { &*(data as *const ForCtx<'_, F>) };
        let start = c * ctx.chunk;
        (ctx.body)(start..(start + ctx.chunk).min(ctx.len));
    }
    let job = Arc::new(Job {
        run: run_chunk::<F>,
        data: &ctx as *const ForCtx<'_, F> as *const (),
        cursor: AtomicUsize::new(0),
        chunks,
        pending: AtomicUsize::new(chunks),
        poisoned: AtomicBool::new(false),
        panic: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    // SAFETY: `ctx` outlives `run_job`, which blocks until every chunk
    // has finished.
    unsafe { global().run_job(job, workers - 1) };
}

/// Maps `f` over `0..len` in parallel, returning results in index order
/// — the deterministic fork-join primitive the plan-space construction
/// and batched sampling are built on. Chunking and inlining behave like
/// [`parallel_for`]; each result is written directly into its output
/// slot (no per-worker buffers), so the committed vector is identical
/// at every thread count.
pub fn parallel_map<R, F>(len: usize, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers_for(len, min_chunk);
    if workers == 1 {
        return (0..len).map(f).collect();
    }
    let mut out: Vec<R> = Vec::with_capacity(len);
    let chunk = chunk_size(len, min_chunk, workers);
    let chunks = len.div_ceil(chunk);
    // Per-chunk count of slots initialized so far: the panic path must
    // drop exactly the elements that were written and no others.
    let progress: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();

    struct MapCtx<'a, R, F> {
        f: &'a F,
        out: *mut R,
        len: usize,
        chunk: usize,
        progress: &'a [AtomicUsize],
    }
    unsafe impl<R: Send, F: Sync> Sync for MapCtx<'_, R, F> {}

    unsafe fn run_chunk<R: Send, F: Fn(usize) -> R + Sync>(data: *const (), c: usize) {
        // SAFETY: `data` points at the `MapCtx` on the submitting
        // caller's stack; chunk `c` owns the disjoint output slice
        // `[c*chunk, min((c+1)*chunk, len))`, claimed exactly once.
        let ctx = unsafe { &*(data as *const MapCtx<'_, R, F>) };
        let start = c * ctx.chunk;
        let end = (start + ctx.chunk).min(ctx.len);
        for i in start..end {
            let value = (ctx.f)(i);
            unsafe { ctx.out.add(i).write(value) };
            ctx.progress[c].store(i - start + 1, Ordering::Release);
        }
    }

    let ctx = MapCtx {
        f: &f,
        out: out.as_mut_ptr(),
        len,
        chunk,
        progress: &progress,
    };
    let job = Arc::new(Job {
        run: run_chunk::<R, F>,
        data: &ctx as *const MapCtx<'_, R, F> as *const (),
        cursor: AtomicUsize::new(0),
        chunks,
        pending: AtomicUsize::new(chunks),
        poisoned: AtomicBool::new(false),
        panic: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    // SAFETY: `ctx` (and `out`'s buffer) outlive `run_job`, which blocks
    // until every chunk has finished; afterwards either every slot is
    // initialized (normal path) or `progress` bounds what was.
    let result = catch_unwind(AssertUnwindSafe(|| unsafe {
        global().run_job(job, workers - 1)
    }));
    match result {
        Ok(()) => {
            // Every chunk ran to completion: all `len` slots initialized.
            unsafe { out.set_len(len) };
            out
        }
        Err(payload) => {
            // Drop exactly the initialized prefix of each chunk, leave
            // `out`'s length at 0 so the vec frees only raw capacity.
            for (c, written) in progress.iter().enumerate() {
                let start = c * chunk;
                for i in start..start + written.load(Ordering::Acquire) {
                    unsafe { std::ptr::drop_in_place(out.as_mut_ptr().add(i)) };
                }
            }
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = with_threads(3, || {
            assert_eq!(num_threads(), 3);
            with_threads(1, num_threads)
        });
        assert_eq!(outer, 1);
        // Restored: the override no longer applies.
        assert_ne!(LOCAL_THREADS.with(Cell::get), 3);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = LOCAL_THREADS.with(Cell::get);
        let result = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(LOCAL_THREADS.with(Cell::get), before);
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        for threads in [1, 2, 4, 7] {
            let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
            with_threads(threads, || {
                parallel_for(1000, 1, |range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn parallel_map_matches_sequential_in_order() {
        let expect: Vec<u64> = (0..257).map(|i| (i as u64) * 3 + 1).collect();
        for threads in [1, 2, 4, 9] {
            let got = with_threads(threads, || parallel_map(257, 1, |i| (i as u64) * 3 + 1));
            assert_eq!(got, expect, "{threads} threads");
        }
    }

    #[test]
    fn parallel_map_handles_drop_types_and_reuse() {
        // Heap-owning results exercise the in-place commit path; run
        // repeatedly so pooled workers see many jobs back to back.
        for round in 0..20u64 {
            let got = with_threads(4, || parallel_map(403, 1, |i| vec![round, i as u64]));
            assert_eq!(got.len(), 403);
            assert!(got.iter().enumerate().all(|(i, v)| v == &[round, i as u64]));
        }
    }

    #[test]
    fn small_ranges_run_inline() {
        // min_chunk larger than the range: must not dispatch (observable
        // via thread identity).
        let caller = std::thread::current().id();
        with_threads(8, || {
            parallel_for(10, 100, |range| {
                assert_eq!(std::thread::current().id(), caller);
                assert_eq!(range, 0..10);
            });
        });
    }

    #[test]
    fn empty_range_is_a_no_op() {
        parallel_for(0, 1, |_| panic!("must not run"));
        assert!(parallel_map(0, 1, |i| i).is_empty());
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                parallel_for(1000, 1, |range| {
                    if range.contains(&999) {
                        panic!("worker failure");
                    }
                });
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn panicking_body_poisons_neither_pool_nor_later_callers() {
        // A panic in one section must leave the persistent workers alive
        // and subsequent (and concurrent) sections fully functional.
        for round in 0..5 {
            let result = std::panic::catch_unwind(|| {
                with_threads(4, || {
                    parallel_map(500, 1, |i| {
                        if i == 250 {
                            panic!("poisoned round {round}");
                        }
                        i
                    })
                })
            });
            assert!(result.is_err(), "round {round} must re-throw");
            // The very next section on the same pool behaves normally.
            let ok = with_threads(4, || parallel_map(500, 1, |i| i * 2));
            assert_eq!(ok.len(), 500);
            assert!(ok.iter().enumerate().all(|(i, &v)| v == i * 2));
        }
    }

    #[test]
    fn parallel_map_panic_drops_only_initialized_results() {
        // Drop-tracking payloads: after a panicking map, the number of
        // live payloads must return to zero (nothing leaked*, nothing
        // double-dropped — a double drop would underflow and wrap).
        // *The element that panicked mid-construction never existed.
        static LIVE: AtomicU64 = AtomicU64::new(0);
        struct Tracked;
        impl Tracked {
            fn new() -> Tracked {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Tracked
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                parallel_map(800, 1, |i| {
                    if i == 400 {
                        panic!("mid-section");
                    }
                    Tracked::new()
                })
            })
        });
        assert!(result.is_err());
        assert_eq!(
            LIVE.load(Ordering::SeqCst),
            0,
            "every constructed result must be dropped exactly once"
        );
    }

    #[test]
    fn dropping_a_private_pool_joins_its_workers() {
        // The no-thread-leak contract: Drop signals shutdown and joins,
        // so after drop the workers' liveness count (read through a
        // handle that outlives the pool) is zero.
        let pool = Pool::new();
        pool.ensure_workers(3);
        assert_eq!(pool.spawned_workers(), 3);
        // Give the workers a beat to enter their loop, then grab the
        // observability handle and drop the pool.
        let injector = Arc::clone(&pool.injector);
        drop(pool);
        assert_eq!(
            injector.live.load(Ordering::Acquire),
            0,
            "drop must join every worker before returning"
        );
    }

    #[test]
    fn env_var_changes_are_observed() {
        // Regression for the read-once staleness bug: the env variable
        // must be re-resolved per call, even after earlier pool use.
        // Serialized against itself only; other tests in this binary use
        // `with_threads`, whose thread-local override shadows the env.
        // (Asserting on `env_threads` rather than `num_threads` keeps
        // this immune to the global-override test running in parallel.)
        let _pin = with_threads(2, num_threads); // touch the resolver first
        std::env::set_var("PLANSAMPLE_THREADS", "3");
        assert_eq!(env_threads(), Some(3), "first read sees the variable");
        std::env::set_var("PLANSAMPLE_THREADS", "5");
        assert_eq!(
            env_threads(),
            Some(5),
            "a later change must be observed, not served from a cache"
        );
        std::env::remove_var("PLANSAMPLE_THREADS");
        assert_eq!(env_threads(), None);
        // Overrides still take precedence over the environment.
        std::env::set_var("PLANSAMPLE_THREADS", "7");
        assert_eq!(with_threads(2, num_threads), 2);
        std::env::remove_var("PLANSAMPLE_THREADS");
    }

    #[test]
    fn concurrent_sections_share_the_pool() {
        // Several caller threads submit jobs at once; every job commits
        // its own results correctly.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    with_threads(3, || {
                        let got = parallel_map(301, 1, move |i| i as u64 + t);
                        assert!(got.iter().enumerate().all(|(i, &v)| v == i as u64 + t));
                    })
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn set_num_threads_global_override() {
        // Runs in its own serial block: thread-local overrides take
        // precedence, so shield against parallel tests via with_threads
        // being absent here — the global is still observable because no
        // other test sets it.
        set_num_threads(2);
        assert_eq!(num_threads(), 2);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }
}
