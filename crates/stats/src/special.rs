//! Special functions: log-gamma, digamma, trigamma, the regularized
//! incomplete gamma function, and the Kolmogorov distribution.
//! Self-contained implementations (no external math crates) sufficient
//! for chi-square/KS p-values and maximum-likelihood Gamma fitting.

/// Natural log of the Gamma function (Lanczos approximation, g=7, n=9).
/// Absolute error below 1e-13 for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma ψ(x) = d/dx ln Γ(x): recurrence to push x above 6, then the
/// asymptotic series.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires a positive argument, got {x}");
    let mut x = x;
    let mut acc = 0.0;
    while x < 8.0 {
        acc -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)))
}

/// Trigamma ψ′(x): recurrence plus asymptotic series.
pub fn trigamma(x: f64) -> f64 {
    assert!(x > 0.0, "trigamma requires a positive argument, got {x}");
    let mut x = x;
    let mut acc = 0.0;
    while x < 8.0 {
        acc += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + inv
        * (1.0
            + inv
                * (0.5
                    + inv * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0)))))
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x)/Γ(a)`.
/// Series expansion for `x < a+1`, continued fraction otherwise
/// (Numerical Recipes `gammp`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a>0, x>=0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    1.0 - gamma_p(a, x)
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's method for the continued fraction.
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Survival function of the Kolmogorov distribution,
/// `Q(t) = P[K > t] = 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² t²)` — the
/// asymptotic null distribution of `√n · D_n` for the KS statistic.
///
/// The alternating series converges extremely fast for `t ≳ 0.5`; below
/// `t = 0.2` the survival probability is 1 to double precision.
pub fn kolmogorov_q(t: f64) -> f64 {
    assert!(t >= 0.0, "kolmogorov_q domain: t >= 0, got {t}");
    if t < 0.2 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * t * t).exp();
        sum += sign * term;
        if term < 1e-16 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15 {
            assert!(close(ln_gamma(n as f64), fact.ln(), 1e-12), "ln_gamma({n})");
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
        // Γ(3/2) = sqrt(pi)/2
        assert!(close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12
        ));
    }

    #[test]
    fn digamma_known_values() {
        const EULER: f64 = 0.577_215_664_901_532_9;
        assert!(close(digamma(1.0), -EULER, 1e-10));
        assert!(close(digamma(2.0), 1.0 - EULER, 1e-10));
        assert!(close(digamma(0.5), -EULER - 2.0 * (2.0f64).ln(), 1e-10));
    }

    #[test]
    fn trigamma_known_values() {
        let pi2_6 = std::f64::consts::PI.powi(2) / 6.0;
        assert!(close(trigamma(1.0), pi2_6, 1e-10));
        assert!(close(trigamma(2.0), pi2_6 - 1.0, 1e-10));
    }

    #[test]
    fn digamma_is_lngamma_derivative() {
        for x in [0.7, 1.3, 2.5, 8.0, 42.0] {
            let h = 1e-6;
            let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            assert!(close(digamma(x), numeric, 1e-5), "at {x}");
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - exp(-x).
        for x in [0.0, 0.1, 1.0, 2.5, 10.0] {
            assert!(close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12), "x={x}");
        }
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for a in [0.5, 1.0, 3.0, 10.0] {
            for x in [0.2, 1.0, 5.0, 20.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-12, "a={a} x={x}");
            }
        }
    }

    #[test]
    fn gamma_p_is_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let v = gamma_p(3.0, i as f64 * 0.2);
            assert!(v >= prev);
            prev = v;
        }
        assert!(prev > 0.999);
    }

    #[test]
    fn kolmogorov_q_matches_tables() {
        // Standard KS critical points: P[K > 1.3581] = 0.05,
        // P[K > 1.2238] = 0.10, P[K > 1.6276] = 0.01.
        assert!((kolmogorov_q(1.3581) - 0.05).abs() < 1e-3);
        assert!((kolmogorov_q(1.2238) - 0.10).abs() < 1e-3);
        assert!((kolmogorov_q(1.6276) - 0.01).abs() < 1e-3);
    }

    #[test]
    fn kolmogorov_q_is_a_survival_function() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert_eq!(kolmogorov_q(0.1), 1.0);
        let mut prev = 1.0;
        for i in 1..80 {
            let q = kolmogorov_q(i as f64 * 0.05);
            assert!(q <= prev + 1e-15, "not monotone at t={}", i as f64 * 0.05);
            assert!((0.0..=1.0).contains(&q));
            prev = q;
        }
        assert!(kolmogorov_q(4.0) < 1e-12);
    }

    #[test]
    fn chi_square_critical_values() {
        // Q(k/2, x/2) for known chi-square critical points:
        // P[X > 3.841] = 0.05 for k=1; P[X > 18.307] = 0.05 for k=10.
        assert!((gamma_q(0.5, 3.841 / 2.0) - 0.05).abs() < 1e-3);
        assert!((gamma_q(5.0, 18.307 / 2.0) - 0.05).abs() < 1e-3);
    }
}
