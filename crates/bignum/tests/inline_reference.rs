//! Differential property tests for the small-value-inline `Nat`
//! representation: every operation must agree with a naive, obviously
//! correct `Vec<u64>` reference implementation, with the generator
//! biased hard toward the inline↔spill boundary (values around
//! `u64::MAX`, sums that carry into a second limb, products that
//! overflow into 2+ limbs) where a representation bug would hide.
//!
//! The reference below is the pre-refactor heap representation in
//! miniature: little-endian limb vectors, schoolbook carry/borrow
//! arithmetic, no inline fast paths — so any divergence isolates the
//! inline representation, not the algorithms.

use plansample_bignum::Nat;
use proptest::prelude::*;

/// Naive little-endian limb arithmetic (normalized: no trailing zeros).
mod reference {
    pub fn norm(mut v: Vec<u64>) -> Vec<u64> {
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }

    pub fn add(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        let mut carry = 0u128;
        for i in 0..a.len().max(b.len()) {
            let t = carry + *a.get(i).unwrap_or(&0) as u128 + *b.get(i).unwrap_or(&0) as u128;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        norm(out)
    }

    /// `a - b`; caller guarantees `a >= b`.
    pub fn sub(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        let mut borrow = 0i128;
        for i in 0..a.len() {
            let t = *a.get(i).unwrap_or(&0) as i128 - *b.get(i).unwrap_or(&0) as i128 + borrow;
            out.push(t as u64);
            borrow = t >> 64;
        }
        assert_eq!(borrow, 0, "reference sub underflow");
        norm(out)
    }

    pub fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let t = out[i + j] as u128 + x as u128 * y as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            out[i + b.len()] = carry as u64;
        }
        norm(out)
    }

    pub fn cmp(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
        a.len()
            .cmp(&b.len())
            .then_with(|| a.iter().rev().cmp(b.iter().rev()))
    }
}

/// A limb biased toward the carry-critical neighbourhood of `u64::MAX`
/// (and of 0), where inline arithmetic overflows into the spill.
fn boundary_limb() -> impl Strategy<Value = u64> {
    (0u32..8, 0u64..8, any::<u64>()).prop_map(|(sel, d, r)| match sel {
        0..=2 => u64::MAX - d, // carry neighbourhood
        3..=4 => d,            // borrow neighbourhood
        5 => 1u64 << 63,       // sign-bit edge of the top limb
        _ => r,                // anywhere
    })
}

/// Limb vectors spanning the boundary: mostly 0–2 limbs (inline and
/// just-spilled values), occasionally longer.
fn boundary_limbs() -> impl Strategy<Value = Vec<u64>> {
    (0u32..5, proptest::collection::vec(boundary_limb(), 0..6)).prop_map(|(sel, mut v)| {
        if sel < 4 {
            v.truncate(2);
        }
        v
    })
}

/// The invariant every constructed value must satisfy: single-limb
/// values are inline (no heap), larger ones spill exactly.
fn assert_true_footprint(n: &Nat) {
    let expected = if n.limbs().len() <= 1 {
        std::mem::size_of::<Nat>()
    } else {
        std::mem::size_of::<Nat>() + std::mem::size_of_val(n.limbs())
    };
    assert_eq!(n.size_bytes(), expected, "footprint of {n}");
}

proptest! {
    #[test]
    fn add_agrees_with_reference(a in boundary_limbs(), b in boundary_limbs()) {
        let (na, nb) = (Nat::from_limbs(a.clone()), Nat::from_limbs(b.clone()));
        let sum = &na + &nb;
        prop_assert_eq!(sum.limbs(), &reference::add(&reference::norm(a), &reference::norm(b))[..]);
        assert_true_footprint(&sum);
    }

    #[test]
    fn sub_agrees_with_reference(a in boundary_limbs(), b in boundary_limbs()) {
        let (a, b) = (reference::norm(a), reference::norm(b));
        let (hi, lo) = if reference::cmp(&a, &b).is_ge() { (a, b) } else { (b, a) };
        let d = Nat::from_limbs(hi.clone()) - Nat::from_limbs(lo.clone());
        prop_assert_eq!(d.limbs(), &reference::sub(&hi, &lo)[..]);
        assert_true_footprint(&d);
    }

    #[test]
    fn mul_agrees_with_reference(a in boundary_limbs(), b in boundary_limbs()) {
        let (na, nb) = (Nat::from_limbs(a.clone()), Nat::from_limbs(b.clone()));
        let prod = &na * &nb;
        prop_assert_eq!(prod.limbs(), &reference::mul(&reference::norm(a), &reference::norm(b))[..]);
        assert_true_footprint(&prod);
    }

    #[test]
    fn cmp_agrees_with_reference(a in boundary_limbs(), b in boundary_limbs()) {
        let (a, b) = (reference::norm(a), reference::norm(b));
        prop_assert_eq!(
            Nat::from_limbs(a.clone()).cmp(&Nat::from_limbs(b.clone())),
            reference::cmp(&a, &b)
        );
    }

    #[test]
    fn in_place_ops_agree_with_reference(a in boundary_limbs(), m in boundary_limb(), s in boundary_limb()) {
        let a = reference::norm(a);
        let mut n = Nat::from_limbs(a.clone());
        n.mul_u64_assign(m);
        n.add_u64_assign(s);
        let expect = reference::add(&reference::mul(&a, &reference::norm(vec![m])), &reference::norm(vec![s]));
        prop_assert_eq!(n.limbs(), &expect[..]);
        assert_true_footprint(&n);
    }

    #[test]
    fn incr_carries_like_the_reference(a in boundary_limbs()) {
        let a = reference::norm(a);
        let mut n = Nat::from_limbs(a.clone());
        n.incr();
        prop_assert_eq!(n.limbs(), &reference::add(&a, &[1])[..]);
        n.decr();
        prop_assert_eq!(n.limbs(), &a[..]);
        assert_true_footprint(&n);
    }

    #[test]
    fn division_reconstructs_at_the_boundary(a in boundary_limbs(), b in boundary_limbs()) {
        let (na, nb) = (Nat::from_limbs(a), Nat::from_limbs(b));
        prop_assume!(!nb.is_zero());
        let (q, r) = na.div_rem(&nb);
        prop_assert!(r < nb);
        prop_assert_eq!(&q * &nb + &r, na);
        assert_true_footprint(&q);
        assert_true_footprint(&r);
    }
}

/// The exact boundary cases the satellite task names, pinned (not left
/// to the generator): carry at `u64::MAX` and multiplication overflow
/// into 2+ limbs.
#[test]
fn pinned_spill_boundaries() {
    // u64::MAX + 1 crosses inline → spill.
    let sum = Nat::from(u64::MAX) + Nat::one();
    assert_eq!(sum.limbs(), &[0, 1]);
    assert_eq!(
        sum.size_bytes(),
        std::mem::size_of::<Nat>() + 2 * std::mem::size_of::<u64>()
    );
    // … and dividing back re-inlines.
    let (q, r) = sum.div_rem(&Nat::from(2u64));
    assert_eq!(q.size_bytes(), std::mem::size_of::<Nat>());
    assert_eq!(q, Nat::from(1u64 << 63));
    assert!(r.is_zero());

    // Products overflowing into exactly 2 limbs and beyond.
    let max = Nat::from(u64::MAX);
    let sq = &max * &max; // 2 limbs
    assert_eq!(sq.limbs().len(), 2);
    let quad = &sq * &sq; // 4 limbs
    assert_eq!(quad.limbs().len(), 4);
    assert_eq!(
        quad.size_bytes(),
        std::mem::size_of::<Nat>() + 4 * std::mem::size_of::<u64>()
    );
    // (max^2)^2 / max^2 = max^2 exactly.
    let (q, r) = quad.div_rem(&sq);
    assert_eq!(q, sq);
    assert!(r.is_zero());
}
