//! Deterministic synthetic TPC-H-like data at micro scale.
//!
//! The paper runs its differential tests against a real TPC-H database;
//! we substitute a seeded generator that produces foreign-key-consistent
//! tables with the same schema and key structure (see
//! `docs/ARCHITECTURE.md`; the role this data plays in the validation
//! strategy is `docs/DESIGN.md` §8). The
//! generated *data volumes* are intentionally tiny — differential
//! testing executes hundreds of sampled plans per query, including
//! nested-loops-heavy ones, so rows must stay in the hundreds. The
//! optimizer keeps using the SF-1 *statistics*; the executed data only
//! needs to exercise the same operator code paths and produce non-empty,
//! comparable results.
//!
//! Divergences from the statistics are deliberate and documented: filter
//! constants that select ~1/150 of rows at SF-1 (e.g. Q8's `p_type`)
//! are boosted in the micro data so filtered differential results are
//! non-empty.

#![warn(missing_docs)]

pub mod joingraph;

use plansample_catalog::tpch::TpchTables;
use plansample_catalog::{Catalog, Datum, TableId};
use plansample_exec::{Database, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Row counts for the micro database.
#[derive(Debug, Clone)]
pub struct MicroScale {
    /// Supplier rows.
    pub suppliers: usize,
    /// Customer rows.
    pub customers: usize,
    /// Part rows.
    pub parts: usize,
    /// Partsupp rows per part.
    pub partsupp_per_part: usize,
    /// Order rows.
    pub orders: usize,
    /// Maximum lineitem rows per order (uniform 1..=max).
    pub max_lines_per_order: usize,
}

impl Default for MicroScale {
    fn default() -> Self {
        MicroScale {
            suppliers: 30,
            customers: 50,
            parts: 40,
            partsupp_per_part: 2,
            orders: 120,
            max_lines_per_order: 4,
        }
    }
}

impl MicroScale {
    /// A smaller preset for tests that execute very many plans.
    pub fn tiny() -> Self {
        MicroScale {
            suppliers: 10,
            customers: 15,
            parts: 12,
            partsupp_per_part: 2,
            orders: 40,
            max_lines_per_order: 3,
        }
    }
}

/// The 5 TPC-H regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-H nations with their region keys.
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// Market segments.
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

fn int(v: i64) -> Datum {
    Datum::Int(v)
}

fn s(v: &str) -> Datum {
    Datum::Str(v.to_string())
}

/// Generates the micro TPC-H database. Deterministic in `seed`.
pub fn generate(catalog: &Catalog, tables: &TpchTables, scale: &MicroScale, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();

    // region [r_regionkey, r_name]
    let mut region = new_table(catalog, tables.region);
    for (i, name) in REGIONS.iter().enumerate() {
        region.push(vec![int(i as i64), s(name)]);
    }
    db.insert(tables.region, region);

    // nation [n_nationkey, n_name, n_regionkey]
    let mut nation = new_table(catalog, tables.nation);
    for (i, (name, region_key)) in NATIONS.iter().enumerate() {
        nation.push(vec![int(i as i64), s(name), int(*region_key)]);
    }
    db.insert(tables.nation, nation);

    // supplier [s_suppkey, s_name, s_nationkey, s_acctbal]
    // nationkey = i % 25 guarantees every nation has suppliers.
    let mut supplier = new_table(catalog, tables.supplier);
    for i in 0..scale.suppliers {
        supplier.push(vec![
            int(i as i64 + 1),
            s(&format!("Supplier#{i:05}")),
            int((i % 25) as i64),
            int(rng.gen_range(-99_999..=999_999)),
        ]);
    }
    db.insert(tables.supplier, supplier);

    // customer [c_custkey, c_name, c_nationkey, c_mktsegment, c_acctbal]
    let mut customer = new_table(catalog, tables.customer);
    for i in 0..scale.customers {
        customer.push(vec![
            int(i as i64 + 1),
            s(&format!("Customer#{i:05}")),
            int((i % 25) as i64),
            s(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
            int(rng.gen_range(-99_999..=999_999)),
        ]);
    }
    db.insert(tables.customer, customer);

    // part [p_partkey, p_name, p_type, p_size, p_brand, p_retailprice]
    // "green" names and the Q8 p_type value are boosted so micro-scale
    // filtered results are non-empty (see module docs).
    let mut part = new_table(catalog, tables.part);
    for i in 0..scale.parts {
        let name = if rng.gen_bool(0.15) {
            "green".to_string()
        } else {
            format!("part#{i:05}")
        };
        let p_type = if rng.gen_bool(1.0 / 15.0) {
            "ECONOMY ANODIZED STEEL".to_string()
        } else {
            format!("TYPE#{}", rng.gen_range(0..150))
        };
        part.push(vec![
            int(i as i64 + 1),
            s(&name),
            s(&p_type),
            int(rng.gen_range(1..=50)),
            s(&format!("Brand#{}", rng.gen_range(1..=25))),
            int(rng.gen_range(90_000..=2_000_000)),
        ]);
    }
    db.insert(tables.part, part);

    // partsupp [ps_partkey, ps_suppkey, ps_availqty, ps_supplycost]
    let mut partsupp = new_table(catalog, tables.partsupp);
    for p in 0..scale.parts {
        for k in 0..scale.partsupp_per_part {
            // distinct suppliers per part by striding
            let supp =
                (p + k * (scale.suppliers / scale.partsupp_per_part).max(1)) % scale.suppliers;
            partsupp.push(vec![
                int(p as i64 + 1),
                int(supp as i64 + 1),
                int(rng.gen_range(1..=9_999)),
                int(rng.gen_range(100..=100_000)),
            ]);
        }
    }
    db.insert(tables.partsupp, partsupp);

    // orders [o_orderkey, o_custkey, o_orderdate, o_totalprice, o_orderstatus]
    let mut orders = new_table(catalog, tables.orders);
    let mut order_dates = Vec::with_capacity(scale.orders);
    for i in 0..scale.orders {
        let date = rng.gen_range(0..2_406);
        order_dates.push(date);
        orders.push(vec![
            int(i as i64 + 1),
            int(rng.gen_range(0..scale.customers as i64) + 1),
            int(date),
            int(rng.gen_range(90_000..=50_000_000)),
            s(["F", "O", "P"][rng.gen_range(0..3)]),
        ]);
    }
    db.insert(tables.orders, orders);

    // lineitem [l_orderkey, l_partkey, l_suppkey, l_quantity,
    //           l_extendedprice, l_discount, l_shipdate]
    let mut lineitem = new_table(catalog, tables.lineitem);
    for (i, &date) in order_dates.iter().enumerate() {
        let lines = rng.gen_range(1..=scale.max_lines_per_order);
        for _ in 0..lines {
            lineitem.push(vec![
                int(i as i64 + 1),
                int(rng.gen_range(0..scale.parts as i64) + 1),
                int(rng.gen_range(0..scale.suppliers as i64) + 1),
                int(rng.gen_range(1..=50)),
                int(rng.gen_range(10_000..=1_000_000)),
                int(rng.gen_range(0..=10)),
                int((date + rng.gen_range(1..=120)).min(2_525)),
            ]);
        }
    }
    db.insert(tables.lineitem, lineitem);

    db
}

fn new_table(catalog: &Catalog, id: TableId) -> Table {
    Table::new(catalog.table(id).columns.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_catalog::tpch;

    fn build() -> (Catalog, TpchTables, Database) {
        let (cat, t) = tpch::catalog();
        let db = generate(&cat, &t, &MicroScale::default(), 42);
        (cat, t, db)
    }

    #[test]
    fn widths_match_catalog() {
        let (cat, t, db) = build();
        for id in [
            t.region, t.nation, t.supplier, t.customer, t.part, t.partsupp, t.orders, t.lineitem,
        ] {
            assert_eq!(
                db.table(id).unwrap().width(),
                cat.table(id).columns.len(),
                "width of {}",
                cat.table(id).name
            );
        }
    }

    #[test]
    fn fixed_dimensions() {
        let (_, t, db) = build();
        assert_eq!(db.table(t.region).unwrap().len(), 5);
        assert_eq!(db.table(t.nation).unwrap().len(), 25);
        // ASIA and FRANCE/GERMANY exist (used by Q5/Q7 filters).
        let names: Vec<String> = db
            .table(t.nation)
            .unwrap()
            .rows()
            .iter()
            .map(|r| r[1].as_str().unwrap().to_string())
            .collect();
        assert!(names.contains(&"FRANCE".to_string()));
        assert!(names.contains(&"GERMANY".to_string()));
    }

    #[test]
    fn foreign_keys_are_consistent() {
        let (_, t, db) = build();
        let customers = db.table(t.customer).unwrap().len() as i64;
        for row in db.table(t.orders).unwrap().rows() {
            let ck = row[1].as_int().unwrap();
            assert!(ck >= 1 && ck <= customers, "o_custkey {ck}");
        }
        let orders = db.table(t.orders).unwrap().len() as i64;
        let parts = db.table(t.part).unwrap().len() as i64;
        let suppliers = db.table(t.supplier).unwrap().len() as i64;
        for row in db.table(t.lineitem).unwrap().rows() {
            assert!(row[0].as_int().unwrap() <= orders);
            assert!(row[1].as_int().unwrap() <= parts);
            assert!(row[2].as_int().unwrap() <= suppliers);
        }
        for row in db.table(t.partsupp).unwrap().rows() {
            assert!(row[0].as_int().unwrap() <= parts);
            assert!(row[1].as_int().unwrap() <= suppliers);
        }
    }

    #[test]
    fn nation_coverage_for_suppliers_and_customers() {
        let (_, t, db) = build();
        let mut supp_nations = std::collections::HashSet::new();
        for row in db.table(t.supplier).unwrap().rows() {
            supp_nations.insert(row[2].as_int().unwrap());
        }
        // 30 suppliers across 25 nations: all nations covered.
        assert_eq!(supp_nations.len(), 25);
    }

    #[test]
    fn deterministic_in_seed() {
        let (cat, t) = tpch::catalog();
        let a = generate(&cat, &t, &MicroScale::tiny(), 7);
        let b = generate(&cat, &t, &MicroScale::tiny(), 7);
        let c = generate(&cat, &t, &MicroScale::tiny(), 8);
        assert_eq!(
            a.table(t.lineitem).unwrap().rows(),
            b.table(t.lineitem).unwrap().rows()
        );
        assert_ne!(
            a.table(t.lineitem).unwrap().rows(),
            c.table(t.lineitem).unwrap().rows()
        );
    }

    #[test]
    fn money_columns_are_integer_cents() {
        let (_, t, db) = build();
        for row in db.table(t.lineitem).unwrap().rows() {
            assert!(
                matches!(row[4], Datum::Int(_)),
                "l_extendedprice must be Int"
            );
        }
    }

    #[test]
    fn tiny_scale_is_smaller() {
        let (cat, t) = tpch::catalog();
        let tiny = generate(&cat, &t, &MicroScale::tiny(), 1);
        let full = generate(&cat, &t, &MicroScale::default(), 1);
        assert!(tiny.table(t.lineitem).unwrap().len() < full.table(t.lineitem).unwrap().len());
    }
}
