//! Context for the "negligible overhead" claim: the cost of regular
//! optimization itself (exploration + implementation + enforcers +
//! best-plan extraction), against which the counting post-processing
//! pass (bench `counting`) is compared.

use criterion::{criterion_group, criterion_main, Criterion};
use plansample_optimizer::{optimize, OptimizerConfig};

fn bench_optimization(c: &mut Criterion) {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let mut group = c.benchmark_group("optimize");
    group.sample_size(20);

    for (name, cp) in [("noCP", false), ("CP", true)] {
        let config = if cp {
            OptimizerConfig::with_cross_products()
        } else {
            OptimizerConfig::default()
        };
        for (qname, query) in [
            ("Q5", plansample_query::tpch::q5(&catalog)),
            ("Q8", plansample_query::tpch::q8(&catalog)),
        ] {
            group.bench_function(format!("{qname}_{name}"), |b| {
                b.iter(|| std::hint::black_box(optimize(&catalog, &query, &config).unwrap()))
            });
        }
    }
    group.finish();

    // Transformation-rule explorer for comparison (see docs/ARCHITECTURE.md).
    let q5 = plansample_query::tpch::q5(&catalog);
    let config = OptimizerConfig {
        explorer: plansample_optimizer::Explorer::Transform,
        ..Default::default()
    };
    c.bench_function("optimize/Q5_noCP_transform", |b| {
        b.iter(|| std::hint::black_box(optimize(&catalog, &q5, &config).unwrap()))
    });
}

criterion_group!(benches, bench_optimization);
criterion_main!(benches);
