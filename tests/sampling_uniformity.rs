//! Statistical validation of the uniform sampler on a *real* optimizer
//! memo (not the hand-built fixture): chi-square accepts uniformity for
//! the unranking sampler and rejects the naive-walk baseline — the
//! quantitative core of the paper's "unbiased testing" claim.

use plansample::PlanSpace;
use plansample_optimizer::{optimize, OptimizerConfig};
use plansample_query::QueryBuilder;
use plansample_stats::chi_square_uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn two_way_space_freqs(draws: usize, naive: bool) -> Vec<usize> {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("nation", Some("n")).unwrap();
    qb.rel("region", Some("r")).unwrap();
    qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();
    let query = qb.build().unwrap();
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    let n = space.total().to_u64().unwrap() as usize;

    let mut rng = StdRng::seed_from_u64(1234);
    let mut freq = vec![0usize; n];
    for _ in 0..draws {
        let plan = if naive {
            space.sample_naive_walk(&mut rng).unwrap()
        } else {
            space.sample(&mut rng)
        };
        let rank = space.rank(&plan).unwrap().to_u64().unwrap() as usize;
        freq[rank] += 1;
    }
    freq
}

#[test]
fn unranking_sampler_is_uniform_on_optimizer_memo() {
    let freq = two_way_space_freqs(56_000, false);
    assert!(freq.iter().all(|&f| f > 0), "every plan must be reachable");
    let test = chi_square_uniform(&freq);
    assert!(
        test.p_value > 0.001,
        "uniformity rejected: chi2={} p={}",
        test.statistic,
        test.p_value
    );
}

#[test]
fn naive_walk_is_biased_on_optimizer_memo() {
    let freq = two_way_space_freqs(56_000, true);
    let test = chi_square_uniform(&freq);
    assert!(
        test.p_value < 1e-6,
        "naive walk unexpectedly uniform: chi2={} p={}",
        test.statistic,
        test.p_value
    );
}

#[test]
fn sample_frequencies_match_subspace_proportions() {
    // Beyond global uniformity: the fraction of samples whose root is
    // operator v must match N(v)/N — the structural property that makes
    // stratified analysis of the space sound.
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = plansample_query::tpch::q7(&catalog);
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    let root = optimized.memo.root();

    let draws = 20_000usize;
    let mut rng = StdRng::seed_from_u64(77);
    let mut by_root: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for _ in 0..draws {
        let plan = space.sample(&mut rng);
        *by_root.entry(plan.id.index).or_default() += 1;
    }

    let total = space.total().to_f64();
    for (id, _) in optimized.memo.group(root).phys_iter() {
        let expected = space.count_rooted(id).to_f64() / total;
        let observed = *by_root.get(&id.index).unwrap_or(&0) as f64 / draws as f64;
        // 4-sigma binomial tolerance.
        let sigma = (expected * (1.0 - expected) / draws as f64).sqrt();
        assert!(
            (observed - expected).abs() <= 4.0 * sigma + 1e-9,
            "root {id}: observed {observed:.4} expected {expected:.4}"
        );
    }
}
