//! The flat plan-space layout against a naive nested-Vec reference.
//!
//! The CSR links (interned alternative lists, dense ids, precomputed
//! slot totals) and the iterative topological count replaced a
//! straightforward nested-`Vec` materialization with a recursive
//! memoized count. These tests keep the old shape alive as an
//! *executable specification*: on random join-graph topologies — both
//! optimizer-built and directly synthesized memos — every alternative
//! list, every per-expression count, every slot total, and the space
//! total must agree exactly with the naive reference.
//!
//! The second half covers sampling on *pruned* memos (a ROADMAP gap):
//! `sample_naive_walk` may dead-end where pruning emptied a slot, but it
//! must fail cleanly, succeed only with valid member plans, and never
//! fail on spaces without dead expressions — while the rank-based
//! uniform sampler never fails at all.

mod common;

use common::SynthSpace;
use plansample::PlanSpace;
use plansample_bignum::Nat;
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_memo::{eligible_children, validate_plan, Memo, PhysId};
use plansample_query::QuerySpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The pre-refactor data layout, reconstructed: `[group][expr][slot] →
/// alternatives` as nested `Vec`s and a recursive memoized count.
struct NaiveReference {
    slots: Vec<Vec<Vec<Vec<PhysId>>>>,
    counts: Vec<Vec<Nat>>,
    total: Nat,
}

impl NaiveReference {
    fn build(memo: &Memo, query: &QuerySpec) -> NaiveReference {
        let slots: Vec<Vec<Vec<Vec<PhysId>>>> = memo
            .groups()
            .map(|group| {
                group
                    .phys_iter()
                    .map(|(id, expr)| {
                        expr.child_slots(id.group)
                            .iter()
                            .map(|slot| eligible_children(memo, query, slot))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut cache: Vec<Vec<Option<Nat>>> = memo
            .groups()
            .map(|g| vec![None; g.physical.len()])
            .collect();
        for group in memo.groups() {
            for (id, _) in group.phys_iter() {
                count_rec(&slots, id, &mut cache);
            }
        }
        let counts: Vec<Vec<Nat>> = cache
            .into_iter()
            .map(|g| g.into_iter().map(|c| c.expect("all visited")).collect())
            .collect();
        let total = counts[memo.root().0 as usize].iter().sum();
        NaiveReference {
            slots,
            counts,
            total,
        }
    }

    fn count(&self, id: PhysId) -> &Nat {
        &self.counts[id.group.0 as usize][id.index]
    }

    fn slots(&self, id: PhysId) -> &[Vec<PhysId>] {
        &self.slots[id.group.0 as usize][id.index]
    }
}

fn count_rec(slots: &[Vec<Vec<Vec<PhysId>>>], id: PhysId, cache: &mut [Vec<Option<Nat>>]) -> Nat {
    if let Some(n) = &cache[id.group.0 as usize][id.index] {
        return n.clone();
    }
    let own = &slots[id.group.0 as usize][id.index];
    let n = if own.is_empty() {
        Nat::one()
    } else {
        let mut product = Nat::one();
        for alternatives in own {
            let b: Nat = alternatives
                .iter()
                .map(|&w| count_rec(slots, w, cache))
                .sum();
            product = product * b;
        }
        product
    };
    cache[id.group.0 as usize][id.index] = Some(n.clone());
    n
}

/// Every observable of the flat layout must match the reference.
fn assert_layouts_agree(label: &str, memo: &Memo, query: &QuerySpec, space: &PlanSpace) {
    let reference = NaiveReference::build(memo, query);
    assert_eq!(space.total(), &reference.total, "{label}: total");
    for group in memo.groups() {
        for (id, _) in group.phys_iter() {
            assert_eq!(
                space.count_rooted(id),
                reference.count(id),
                "{label}: count of {id}"
            );
            let flat = space.links().children_of(id);
            assert_eq!(flat, reference.slots(id), "{label}: links of {id}");
            // Precomputed slot totals equal fresh sums over the naive
            // lists.
            let dense = space.links().ids().dense(id);
            for (l, alternatives) in space
                .links()
                .slot_lists(dense)
                .iter()
                .zip(reference.slots(id))
            {
                let fresh: Nat = alternatives.iter().map(|&w| reference.count(w)).sum();
                assert_eq!(
                    space.counts().list_total(*l),
                    &fresh,
                    "{label}: slot total under {id}"
                );
            }
        }
    }
}

/// Small spec space for debug-mode optimizer runs.
fn arb_spec() -> impl Strategy<Value = JoinGraphSpec> {
    (0usize..4, 3usize..=5, 0u64..1_000_000).prop_map(|(t, n, seed)| {
        let topology = Topology::ALL[t];
        let n = if topology == Topology::Clique {
            n.min(4)
        } else {
            n
        };
        JoinGraphSpec::new(topology, n, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Optimizer-built memos: flat layout == naive reference.
    #[test]
    fn flat_layout_matches_naive_reference_on_optimized_spaces(spec in arb_spec()) {
        let synth = SynthSpace::build(spec);
        assert_layouts_agree(&synth.label, synth.memo(), &synth.query, synth.space());
    }

    /// Directly synthesized memos (no optimizer): same agreement, and
    /// these reach denser link structures than the optimizer's.
    #[test]
    fn flat_layout_matches_naive_reference_on_synthetic_memos(spec in arb_spec()) {
        let (_, query, memo) = spec.build_memo();
        let space = PlanSpace::build_shared(Arc::new(memo), Arc::new(query.clone()))
            .expect("synthetic memos are acyclic");
        assert_layouts_agree(&spec.label(), space.memo(), &query, &space);
    }
}

#[test]
fn twelve_relation_synthetic_space_round_trips() {
    // 10+-relation regime, debug-friendly topology: a 12-cycle has only
    // 133 connected subsets, so the direct memo builds instantly while
    // still exercising a space far past anything TPC-H reaches. (The
    // multi-limb clique-10 variant runs in release mode inside the
    // `build_scaling` bench.)
    let (_, query, memo) = JoinGraphSpec::new(Topology::Cycle, 12, 20000).build_memo();
    let space = PlanSpace::build_shared(Arc::new(memo), Arc::new(query)).unwrap();
    assert!(
        space.total().bits() > 32,
        "cycle-12 spaces are large, got {}",
        space.total()
    );
    // The bijection holds at the boundaries of the huge space.
    let mut last = space.total().clone();
    last.decr();
    for rank in [Nat::zero(), Nat::one(), last] {
        let plan = space.unrank(&rank).unwrap();
        assert_eq!(space.rank(&plan).unwrap(), rank);
        assert!(validate_plan(space.memo(), space.query(), &plan).is_empty());
    }
}

// ---------------------------------------------------------------------
// Pruned-memo sampling behavior.
// ---------------------------------------------------------------------

/// On a pruned memo the naive walk may dead-end; when it does not, the
/// result must be a valid member plan, and the rank-based sampler must
/// never fail regardless.
#[test]
fn naive_walk_on_pruned_memos_fails_cleanly_or_yields_members() {
    use plansample_optimizer::{optimize, prune, OptimizerConfig};
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = plansample_query::tpch::q5(&catalog);
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();

    for factor in [2.0, 1.2, 1.0] {
        let pruned = prune(&optimized.memo, &query, factor);
        let space = PlanSpace::build_shared(Arc::new(pruned), Arc::new(query.clone())).unwrap();
        assert!(!space.total().is_zero(), "pruning keeps the best plan");
        let has_dead = space
            .links()
            .all_ids()
            .any(|id| space.count_rooted(id).is_zero());

        let mut rng = StdRng::seed_from_u64(7_000 + factor as u64);
        let mut failures = 0usize;
        for _ in 0..200 {
            match space.sample_naive_walk(&mut rng) {
                Some(plan) => {
                    assert!(
                        validate_plan(space.memo(), space.query(), &plan).is_empty(),
                        "factor {factor}: walk produced an invalid plan"
                    );
                    let r = space.rank(&plan).expect("walked plans are members");
                    assert!(&r < space.total());
                }
                None => failures += 1,
            }
            // The uniform sampler never dead-ends on a non-empty space.
            let plan = space.sample(&mut rng);
            assert!(space.rank(&plan).is_ok());
        }
        assert!(
            has_dead || failures == 0,
            "factor {factor}: walk failed {failures} times with no dead expression"
        );
    }
}

/// Deterministic dead-end fixture: a root group holding one live hash
/// join and one dead merge join (no sorted providers). The naive walk
/// picks the dead root with probability 1/2 and must return `None`
/// exactly then; the uniform sampler must never pick it.
#[test]
fn naive_walk_failure_rate_matches_the_dead_alternative_share() {
    use plansample_catalog::{table, ColType};
    use plansample_memo::{GroupKey, PhysicalExpr, PhysicalOp};
    use plansample_query::{ColRef, QueryBuilder, RelId, RelSet};

    let mut catalog = plansample_catalog::Catalog::new();
    for name in ["a", "b"] {
        catalog
            .add_table(table(name, 10).col("k", ColType::Int, 10).build())
            .unwrap();
    }
    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("a", None).unwrap();
    qb.rel("b", None).unwrap();
    qb.join(("a", "k"), ("b", "k")).unwrap();
    let query = qb.build().unwrap();

    let (ra, rb) = (RelId(0), RelId(1));
    let mut memo = Memo::new();
    let ga = memo.add_group(GroupKey::Rels(RelSet::singleton(ra)));
    let gb = memo.add_group(GroupKey::Rels(RelSet::singleton(rb)));
    let gab = memo.add_group(GroupKey::Rels(RelSet::all(2)));
    for (g, rel) in [(ga, ra), (gb, rb)] {
        memo.add_physical(
            g,
            PhysicalExpr::new(PhysicalOp::TableScan { rel }, 10.0, 10.0),
        )
        .unwrap();
    }
    let live = memo
        .add_physical(
            gab,
            PhysicalExpr::new(
                PhysicalOp::HashJoin {
                    left: ga,
                    right: gb,
                },
                25.0,
                10.0,
            ),
        )
        .unwrap();
    memo.add_physical(
        gab,
        PhysicalExpr::new(
            PhysicalOp::MergeJoin {
                left: ga,
                right: gb,
                left_key: ColRef { rel: ra, col: 0 },
                right_key: ColRef { rel: rb, col: 0 },
            },
            20.0,
            10.0,
        ),
    )
    .unwrap();
    memo.set_root(gab);

    let space = PlanSpace::build(&memo, &query).unwrap();
    assert_eq!(space.total().to_u64(), Some(1));

    let draws = 4000;
    let mut rng = StdRng::seed_from_u64(99);
    let mut failures = 0usize;
    for _ in 0..draws {
        match space.sample_naive_walk(&mut rng) {
            Some(plan) => assert_eq!(plan.id, live, "only the live root completes"),
            None => failures += 1,
        }
    }
    // Binomial(4000, 1/2): ±5σ ≈ ±158.
    let expected = draws / 2;
    assert!(
        (failures as i64 - expected as i64).unsigned_abs() < 160,
        "failure rate {failures}/{draws} far from the dead share 1/2"
    );
    // The uniform sampler always returns the single member plan.
    for _ in 0..50 {
        assert_eq!(space.sample(&mut rng).id, live);
    }
}
