//! Differential tests of the fixed-width flat unrankers (DESIGN.md
//! §11).
//!
//! `sample_batch_flat` runs the mixed-radix decomposition on the
//! fastest rung of the tier ladder the space qualifies for — `u64` when
//! every count fits one limb, `u128` when every count fits two, exact
//! `Nat` beyond that. Correctness here is entirely differential: on the
//! *same seed*, the flat batch must reproduce the tree sampler's plans
//! bit for bit —
//!
//! * on random optimizer-built join-graph topologies (all single-limb
//!   at these sizes, so the `u64` tier is what's exercised);
//! * on the same spaces *forced* down the ladder with
//!   [`PlanSpace::force_tier`] — the `u128` rung and the `Nat` rung
//!   must emit the identical batches, across 1/2/4 threads;
//! * on directly synthesized spaces straddling the tier boundaries:
//!   chain/cycle graphs around the single-limb edge, clique-9 (the
//!   smallest clique past one limb, now served by the `u128` tier), and
//!   a chain long enough that its total genuinely needs three limbs
//!   (the remaining `Nat` regime);
//! * and the criteria themselves are pinned: `has_fast_path()` /
//!   `has_wide_path()` must reflect exactly whether every count fits
//!   one / two limbs.
//!
//! clique-10 (the bench's u128 regime) is covered when
//! `PLANSAMPLE_STATISTICAL=1` — its debug-mode memo synthesis is too
//! slow for the fast test tier.

use plansample::{CountTier, PlanBatch, PlanSpace};
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_optimizer::{optimize, OptimizerConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Draws `k` plans through both samplers on the same seed and asserts
/// the flat batch equals the tree batch's preorder listings.
fn assert_flat_matches_tree(space: &PlanSpace, seed: u64, k: usize) {
    let trees = {
        let mut rng = StdRng::seed_from_u64(seed);
        space.sample_batch(&mut rng, k)
    };
    let mut flat = PlanBatch::new();
    let mut rng = StdRng::seed_from_u64(seed);
    space.sample_batch_flat(&mut rng, k, &mut flat);
    assert_eq!(flat.len(), trees.len());
    for (i, (ids, tree)) in flat.iter().zip(&trees).enumerate() {
        assert_eq!(
            ids,
            tree.preorder_ids().as_slice(),
            "draw {i} diverged (tier={})",
            space.counts().tier()
        );
    }
}

/// `assert_flat_matches_tree` at every tier the space can be forced
/// onto, at 1, 2, and 4 worker threads — `k` is chosen large enough
/// (≥ 512) that multi-thread runs take the parallel shard path. The
/// reference trees are drawn once from the untouched space; every
/// (tier, threads) combination must reproduce them.
fn assert_tiers_and_threads_agree(space: &PlanSpace, seed: u64, k: usize) {
    let trees = {
        let mut rng = StdRng::seed_from_u64(seed);
        space.sample_batch(&mut rng, k)
    };
    for tier in [CountTier::U64, CountTier::U128, CountTier::Nat] {
        let mut forced = space.clone();
        forced.force_tier(tier);
        for threads in [1usize, 2, 4] {
            let mut flat = PlanBatch::new();
            let mut rng = StdRng::seed_from_u64(seed);
            threadpool::with_threads(threads, || forced.sample_batch_flat(&mut rng, k, &mut flat));
            assert_eq!(flat.len(), trees.len());
            for (i, (ids, tree)) in flat.iter().zip(&trees).enumerate() {
                assert_eq!(
                    ids,
                    tree.preorder_ids().as_slice(),
                    "draw {i} diverged (forced tier={}, actual={}, {threads} threads)",
                    tier,
                    forced.counts().tier()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random topology × size × seed over optimizer-built memos: the
    /// flat sampler is indistinguishable from the tree sampler.
    #[test]
    fn fast_path_matches_nat_path_on_random_topologies(
        topo_sel in 0usize..4,
        rels in 3usize..6,
        seed in 0u64..1000,
    ) {
        let spec = JoinGraphSpec::new(Topology::ALL[topo_sel], rels, seed);
        let (catalog, query) = spec.build();
        let optimized = optimize(&catalog, &query, &OptimizerConfig::default())
            .expect("synthetic queries optimize");
        let space = PlanSpace::build_shared(Arc::new(optimized.memo), Arc::new(query))
            .expect("acyclic memo");
        prop_assert!(
            space.counts().has_fast_path(),
            "spaces this small must stay single-limb"
        );
        assert_flat_matches_tree(&space, seed ^ 0xFA57, 128);
    }

    /// Directly synthesized chains and cycles across the single-limb
    /// boundary: small ones take the fast path, large ones step down
    /// the ladder, and every tier produces identical batches.
    #[test]
    fn fallback_boundary_is_exact_and_differential(
        cycle in any::<bool>(),
        rels in 5usize..15,
        seed in 0u64..100,
    ) {
        let topo = if cycle { Topology::Cycle } else { Topology::Chain };
        let (_, query, memo) = JoinGraphSpec::new(topo, rels, 20000 + seed).build_memo();
        let space = PlanSpace::build_shared(Arc::new(memo), Arc::new(query))
            .expect("synthetic memo is acyclic");
        // The criteria are the space's own counts, nothing heuristic:
        // each sidecar exists iff every count fits its width (and the
        // ladder keeps at most one).
        let all_fit_u64 = space.links().all_ids().all(|id|
            space.count_rooted(id).to_u64().is_some())
            && space.total().to_u64().is_some();
        let all_fit_u128 = space.links().all_ids().all(|id|
            space.count_rooted(id).to_u128().is_some())
            && space.total().to_u128().is_some();
        prop_assert_eq!(space.counts().has_fast_path(), all_fit_u64);
        prop_assert_eq!(space.counts().has_wide_path(), all_fit_u128 && !all_fit_u64);
        assert_flat_matches_tree(&space, seed ^ 0xB0B, 64);
    }

    /// Forced-tier sweep on small optimizer-built spaces: the `u64`,
    /// `u128`, and exact-`Nat` unrankers emit bit-identical batches at
    /// 1, 2, and 4 threads, with a batch size that exercises the
    /// parallel shard fill.
    #[test]
    fn forced_tiers_match_across_thread_counts(
        topo_sel in 0usize..4,
        seed in 0u64..100,
    ) {
        let spec = JoinGraphSpec::new(Topology::ALL[topo_sel], 5, seed);
        let (catalog, query) = spec.build();
        let optimized = optimize(&catalog, &query, &OptimizerConfig::default())
            .expect("synthetic queries optimize");
        let space = PlanSpace::build_shared(Arc::new(optimized.memo), Arc::new(query))
            .expect("acyclic memo");
        prop_assert!(space.counts().has_fast_path());
        assert_tiers_and_threads_agree(&space, seed ^ 0x7143, 600);
    }
}

/// clique-9: the smallest clique whose total overflows one limb — it
/// must land on the `u128` tier (not the exact fallback) and still
/// match the tree sampler draw for draw, including when forced down to
/// `Nat` and across thread counts.
#[test]
fn clique9_takes_the_u128_tier_and_matches() {
    let (_, query, memo) = JoinGraphSpec::new(Topology::Clique, 9, 20000).build_memo();
    let space = PlanSpace::build_shared(Arc::new(memo), Arc::new(query)).expect("clique-9 builds");
    assert!(
        !space.counts().has_fast_path(),
        "clique-9 total {} must not fit one limb",
        space.total()
    );
    assert!(
        space.counts().has_wide_path(),
        "clique-9 total {} must fit two limbs",
        space.total()
    );
    assert_eq!(space.counts().tier(), CountTier::U128);
    assert!(space.total().limbs().len() >= 2);
    assert_flat_matches_tree(&space, 0x911, 48);

    // Past the tier boundary on the same space: forcing the exact path
    // changes throughput only, never content.
    let mut nat = space.clone();
    nat.force_tier(CountTier::Nat);
    assert_eq!(nat.counts().tier(), CountTier::Nat);
    let mut a = PlanBatch::new();
    let mut b = PlanBatch::new();
    let mut rng = StdRng::seed_from_u64(0x911);
    space.sample_batch_flat(&mut rng, 48, &mut a);
    let mut rng = StdRng::seed_from_u64(0x911);
    nat.sample_batch_flat(&mut rng, 48, &mut b);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x, y, "u128 tier diverged from forced-Nat");
    }
}

/// A genuinely 3-limb space — a chain long enough that its total
/// overflows `u128` — exercises the remaining exact-`Nat` regime of
/// `sample_batch_flat` with no forcing involved.
#[test]
fn three_limb_chains_use_the_exact_fallback_and_match() {
    // Chain plan spaces grow fast; scan upward to the first 3-limb one
    // so the test stays pinned to the boundary rather than a magic size.
    for rels in 15..40 {
        let (_, query, memo) = JoinGraphSpec::new(Topology::Chain, rels, 20000).build_memo();
        let space = PlanSpace::build_shared(Arc::new(memo), Arc::new(query)).expect("chain builds");
        if space.total().limbs().len() < 3 {
            continue;
        }
        assert_eq!(space.counts().tier(), CountTier::Nat);
        assert!(!space.counts().has_fast_path() && !space.counts().has_wide_path());
        assert_flat_matches_tree(&space, 0x3113, 32);
        return;
    }
    panic!("no chain under 40 relations needed three limbs");
}

/// clique-10 (the sampling bench's u128 regime), in the slow tier
/// only.
#[test]
fn clique10_u128_tier_matches_in_the_statistical_tier() {
    if std::env::var("PLANSAMPLE_STATISTICAL").is_err() {
        eprintln!("skipping clique-10 tier check (set PLANSAMPLE_STATISTICAL=1)");
        return;
    }
    let (_, query, memo) = JoinGraphSpec::new(Topology::Clique, 10, 20000).build_memo();
    let space = PlanSpace::build_shared(Arc::new(memo), Arc::new(query)).expect("clique-10 builds");
    assert!(!space.counts().has_fast_path());
    assert_eq!(space.counts().tier(), CountTier::U128);
    assert_flat_matches_tree(&space, 0x1010, 32);
}
