//! Synthetic join-graph generator for statistical validation.
//!
//! The paper evaluates on four TPC-H queries; validating the sampler's
//! *uniformity* on only two hand-picked spaces leaves most of the
//! structural variety untested. This module manufactures join queries of
//! the four canonical graph shapes at parameterized sizes:
//!
//! - **chain**: `r0 — r1 — … — r(n−1)`, the sparsest connected graph
//!   (only contiguous sub-plans exist without Cartesian products);
//! - **star**: a hub `r0` joined to every spoke, the data-warehouse
//!   shape;
//! - **cycle**: a chain closed back on itself, the smallest graph with
//!   redundant join paths;
//! - **clique**: every pair joined — join-order freedom like enabling
//!   Cartesian products, so plan counts explode fastest (a 9-relation
//!   clique already needs multiple `u64` limbs).
//!
//! Table statistics (row counts, distinct values, index availability)
//! are drawn deterministically from a seed, so every generated space is
//! reproducible yet structurally "random" — the property the
//! rank/unrank bijection and uniform-sampling test suites quantify over
//! (`docs/DESIGN.md` §8). [`JoinGraphSpec::build_memo`] is also the
//! benchmark workload for the parallel plan-space build (`docs/DESIGN.md`
//! §5): clique-10/12 memos synthesized directly, without optimizer
//! search, reach the multi-limb 700k-expression regime in seconds.

use plansample_catalog::{table, Catalog, ColType};
use plansample_memo::{
    satisfies_cols, GroupId, GroupKey, Memo, PhysicalExpr, PhysicalOp, SortOrder,
};
use plansample_query::{ColRef, QueryBuilder, QuerySpec, RelId, RelSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a synthetic join graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// `r0 — r1 — … — r(n−1)`.
    Chain,
    /// Hub `r0` joined to every other relation.
    Star,
    /// Chain plus the closing edge `r(n−1) — r0`.
    Cycle,
    /// Every pair of relations joined.
    Clique,
}

impl Topology {
    /// All four shapes, for sweeps.
    pub const ALL: [Topology; 4] = [
        Topology::Chain,
        Topology::Star,
        Topology::Cycle,
        Topology::Clique,
    ];

    /// Lower-case name for labels and test output.
    pub fn name(self) -> &'static str {
        match self {
            Topology::Chain => "chain",
            Topology::Star => "star",
            Topology::Cycle => "cycle",
            Topology::Clique => "clique",
        }
    }

    /// The join edges of this shape over `n` relations, as index pairs.
    ///
    /// # Panics
    /// Panics when `n < 2` (no join graph) or on a cycle with `n < 3`
    /// (a 2-cycle would duplicate the chain edge).
    pub fn edges(self, n: usize) -> Vec<(usize, usize)> {
        assert!(n >= 2, "a join graph needs at least 2 relations");
        match self {
            Topology::Chain => (0..n - 1).map(|i| (i, i + 1)).collect(),
            Topology::Star => (1..n).map(|i| (0, i)).collect(),
            Topology::Cycle => {
                assert!(n >= 3, "a cycle needs at least 3 relations");
                (0..n).map(|i| (i, (i + 1) % n)).collect()
            }
            Topology::Clique => (0..n)
                .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
                .collect(),
        }
    }
}

/// A reproducible synthetic join query: topology, size, and the seed
/// that fixes all table statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinGraphSpec {
    /// Graph shape.
    pub topology: Topology,
    /// Number of relations (`>= 2`; cycles need `>= 3`).
    pub relations: usize,
    /// Seed for row counts, NDVs, and index placement.
    pub seed: u64,
}

impl JoinGraphSpec {
    /// Convenience constructor.
    pub fn new(topology: Topology, relations: usize, seed: u64) -> Self {
        JoinGraphSpec {
            topology,
            relations,
            seed,
        }
    }

    /// A label like `"chain-6#42"` for test diagnostics.
    pub fn label(&self) -> String {
        format!("{}-{}#{}", self.topology.name(), self.relations, self.seed)
    }

    /// The join edges of this spec.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.topology.edges(self.relations)
    }

    /// Materializes the catalog (tables `r0 … r(n−1)`, each with a join
    /// key `k` and payload `v`) and the join query. Deterministic in
    /// every field of the spec.
    pub fn build(&self) -> (Catalog, QuerySpec) {
        // Mix the topology and size into the stream so specs differing
        // only in shape do not share statistics.
        let mix = (self.relations as u64) << 8 | self.topology as u64;
        let mut rng = StdRng::seed_from_u64(self.seed ^ mix.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut catalog = Catalog::new();
        for i in 0..self.relations {
            let rows = 10u64.pow(rng.gen_range(1..=5)) * rng.gen_range(1..=9);
            let ndv = rows.div_ceil(rng.gen_range(1..=10)).max(1);
            let mut b = table(&format!("r{i}"), rows)
                .col("k", ColType::Int, ndv)
                .col("v", ColType::Int, rows.div_ceil(2).max(1));
            if rng.gen_bool(0.5) {
                b = b.index_on(0);
            }
            catalog.add_table(b.build()).unwrap();
        }
        let query = {
            let mut qb = QueryBuilder::new(&catalog);
            for i in 0..self.relations {
                qb.rel(&format!("r{i}"), None).unwrap();
            }
            for (a, b) in self.edges() {
                qb.join((&format!("r{a}"), "k"), (&format!("r{b}"), "k"))
                    .unwrap();
            }
            qb.build().unwrap()
        };
        (catalog, query)
    }

    /// Materializes the *complete* memo for this spec directly — the
    /// dynamic program the optimizer's exploration + implementation
    /// phases would produce (every connected sub-graph becomes a group;
    /// scans, both join orientations with all three join
    /// implementations, and Sort enforcers for interesting orders) —
    /// without paying for cost-based search.
    ///
    /// This is how the layout benchmarks reach the 10–12-relation
    /// synthetic spaces the plan-enumeration literature treats as the
    /// interesting regime: a clique-10 memo (~709k physical expressions,
    /// multi-limb plan counts) synthesizes in seconds, where running the
    /// full optimizer takes minutes. Deterministic in every field of the
    /// spec.
    ///
    /// # Panics
    /// Panics when `relations >= 32` (the DP enumerates subsets of a
    /// `u32` relation bitmask; larger cliques would be astronomically
    /// big anyway).
    pub fn build_memo(&self) -> (Catalog, QuerySpec, Memo) {
        let n = self.relations;
        assert!(n < 32, "build_memo supports fewer than 32 relations");
        let (catalog, query) = self.build();

        // Adjacency bitmask per relation, for connectivity tests.
        let mut adj = vec![0u32; n];
        for (a, b) in self.edges() {
            adj[a] |= 1 << b;
            adj[b] |= 1 << a;
        }
        let connected = |mask: u32| -> bool {
            let mut seen = 1u32 << mask.trailing_zeros();
            loop {
                let neighbours = (0..n)
                    .filter(|&i| seen & (1 << i) != 0)
                    .fold(0, |acc, i| acc | adj[i]);
                let grown = seen | (neighbours & mask);
                if grown == seen {
                    return seen == mask;
                }
                seen = grown;
            }
        };
        let relset = |mask: u32| -> RelSet {
            RelSet::from_iter(
                (0..n)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| RelId(i as u32)),
            )
        };

        // Groups in subset-size order: children before parents, like the
        // optimizer's bottom-up exploration.
        let mut masks: Vec<u32> = (1..(1u32 << n)).filter(|&m| connected(m)).collect();
        masks.sort_by_key(|m| m.count_ones());

        let mut memo = Memo::new();
        for &mask in &masks {
            let set = relset(mask);
            let gid = memo.add_group(GroupKey::Rels(set));
            if mask.count_ones() == 1 {
                self.add_scans(&catalog, &query, &mut memo, gid, set.sole_member());
            } else {
                self.add_joins(&catalog, &query, &mut memo, gid, set, connected);
            }
        }
        add_interesting_order_enforcers(&catalog, &query, &mut memo);
        // Like optimizer-produced memos, synthesized ones are read-only
        // from here on (and byte-accounted by the benchmarks): release
        // the growth slack so size_bytes() is the true footprint.
        memo.shrink_to_fit();
        let root = memo
            .find_group(GroupKey::Rels(relset((1u32 << n) - 1)))
            .expect("the full relation set is connected");
        memo.set_root(root);
        (catalog, query, memo)
    }

    fn add_scans(
        &self,
        catalog: &Catalog,
        query: &QuerySpec,
        memo: &mut Memo,
        gid: GroupId,
        rel: RelId,
    ) {
        let table = catalog.table(query.relations[rel.idx()].table);
        let rows = table.row_count as f64;
        let out = query.filtered_card(catalog, rel);
        memo.add_physical(
            gid,
            PhysicalExpr::new(PhysicalOp::TableScan { rel }, rows, out),
        );
        for ix in &table.indexes {
            let col = ColRef {
                rel,
                col: ix.column as u32,
            };
            memo.add_physical(
                gid,
                PhysicalExpr::new(PhysicalOp::SortedIdxScan { rel, col }, rows * 1.2, out),
            );
        }
    }

    fn add_joins(
        &self,
        catalog: &Catalog,
        query: &QuerySpec,
        memo: &mut Memo,
        gid: GroupId,
        set: RelSet,
        connected: impl Fn(u32) -> bool,
    ) {
        let out = query.set_card(catalog, set);
        for (a, b) in set.splits() {
            if !connected(a.mask() as u32) || !connected(b.mask() as u32) {
                continue;
            }
            // Both orientations, like the optimizer's commuted logical
            // joins.
            for (lset, rset) in [(a, b), (b, a)] {
                let crossing = query.edges_crossing(lset, rset);
                if crossing.is_empty() {
                    continue; // no cross products in synthetic memos
                }
                let left = memo
                    .find_group(GroupKey::Rels(lset))
                    .expect("connected halves precede their union");
                let right = memo.find_group(GroupKey::Rels(rset)).expect("see above");
                let (lcard, rcard) = (query.set_card(catalog, lset), query.set_card(catalog, rset));
                memo.add_physical(
                    gid,
                    PhysicalExpr::new(
                        PhysicalOp::NestedLoopJoin { left, right },
                        lcard * rcard * 0.01 + out,
                        out,
                    ),
                );
                memo.add_physical(
                    gid,
                    PhysicalExpr::new(
                        PhysicalOp::HashJoin { left, right },
                        lcard + rcard + out,
                        out,
                    ),
                );
                for edge in crossing {
                    let (lk, rk) = if lset.contains(edge.left.rel) {
                        (edge.left, edge.right)
                    } else {
                        (edge.right, edge.left)
                    };
                    memo.add_physical(
                        gid,
                        PhysicalExpr::new(
                            PhysicalOp::MergeJoin {
                                left,
                                right,
                                left_key: lk,
                                right_key: rk,
                            },
                            lcard + rcard + out * 1.1,
                            out,
                        ),
                    );
                }
            }
        }
    }
}

/// Mirrors the optimizer's enforcer rule: a `Sort` per interesting order
/// (the local endpoint of every join edge leaving the group's relation
/// set), skipped when nothing in the group is a sortable input.
fn add_interesting_order_enforcers(catalog: &Catalog, query: &QuerySpec, memo: &mut Memo) {
    for gid in (0..memo.num_groups() as u32).map(GroupId) {
        let GroupKey::Rels(set) = memo.group(gid).key else {
            continue;
        };
        let mut targets: Vec<SortOrder> = Vec::new();
        for edge in &query.join_edges {
            for col in [edge.left, edge.right] {
                let other = if col == edge.left {
                    edge.right
                } else {
                    edge.left
                };
                if set.contains(col.rel) && !set.contains(other.rel) {
                    let ord = SortOrder::on_col(col);
                    if !targets.contains(&ord) {
                        targets.push(ord);
                    }
                }
            }
        }
        let card = query.set_card(catalog, set);
        for target in targets {
            let sortable = memo.group(gid).physical.iter().any(|e| {
                !e.op.is_enforcer() && !satisfies_cols(query, set, e.delivered_cols(), &target)
            });
            if sortable {
                memo.add_physical(
                    gid,
                    PhysicalExpr::new(
                        PhysicalOp::Sort {
                            target: target.clone(),
                        },
                        card * 1.5,
                        card,
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_counts_per_topology() {
        for n in [3usize, 5, 8] {
            assert_eq!(Topology::Chain.edges(n).len(), n - 1);
            assert_eq!(Topology::Star.edges(n).len(), n - 1);
            assert_eq!(Topology::Cycle.edges(n).len(), n);
            assert_eq!(Topology::Clique.edges(n).len(), n * (n - 1) / 2);
        }
    }

    #[test]
    fn edges_connect_the_graph() {
        // Union-find-free connectivity check: BFS from 0 reaches all.
        for topo in Topology::ALL {
            let n = 6;
            let edges = topo.edges(n);
            let mut reached = vec![false; n];
            reached[0] = true;
            for _ in 0..n {
                for &(a, b) in &edges {
                    if reached[a] || reached[b] {
                        reached[a] = true;
                        reached[b] = true;
                    }
                }
            }
            assert!(reached.iter().all(|&r| r), "{} disconnected", topo.name());
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_relation_graph_rejected() {
        Topology::Chain.edges(1);
    }

    #[test]
    #[should_panic(expected = "cycle needs at least 3")]
    fn two_cycle_rejected() {
        Topology::Cycle.edges(2);
    }

    #[test]
    fn build_produces_resolved_query() {
        let spec = JoinGraphSpec::new(Topology::Star, 5, 7);
        let (catalog, query) = spec.build();
        assert_eq!(query.relations.len(), 5);
        assert_eq!(query.join_edges.len(), 4);
        for edge in &query.join_edges {
            assert!(edge.selectivity > 0.0 && edge.selectivity <= 1.0);
        }
        for rel in &query.relations {
            assert!(catalog.table(rel.table).row_count >= 10);
        }
    }

    #[test]
    fn build_is_deterministic_in_the_spec() {
        let a = JoinGraphSpec::new(Topology::Cycle, 4, 99).build();
        let b = JoinGraphSpec::new(Topology::Cycle, 4, 99).build();
        assert_eq!(format!("{:?}", a.1), format!("{:?}", b.1));
        let rows_a: Vec<u64> = (0..4)
            .map(|i| a.0.table_by_name(&format!("r{i}")).unwrap().1.row_count)
            .collect();
        let rows_b: Vec<u64> = (0..4)
            .map(|i| b.0.table_by_name(&format!("r{i}")).unwrap().1.row_count)
            .collect();
        assert_eq!(rows_a, rows_b);
    }

    #[test]
    fn seed_and_topology_change_the_statistics() {
        let rows = |spec: JoinGraphSpec| -> Vec<u64> {
            let (cat, _) = spec.build();
            (0..spec.relations)
                .map(|i| cat.table_by_name(&format!("r{i}")).unwrap().1.row_count)
                .collect()
        };
        let base = rows(JoinGraphSpec::new(Topology::Chain, 4, 1));
        assert_ne!(base, rows(JoinGraphSpec::new(Topology::Chain, 4, 2)));
        assert_ne!(base, rows(JoinGraphSpec::new(Topology::Star, 4, 1)));
    }

    #[test]
    fn labels_are_unique_per_spec() {
        let a = JoinGraphSpec::new(Topology::Chain, 4, 1).label();
        let b = JoinGraphSpec::new(Topology::Star, 4, 1).label();
        assert_eq!(a, "chain-4#1");
        assert_ne!(a, b);
    }

    #[test]
    fn build_memo_groups_are_the_connected_subsets() {
        // A chain's connected subsets are exactly the contiguous ranges:
        // n·(n+1)/2 of them.
        let (_, _, memo) = JoinGraphSpec::new(Topology::Chain, 5, 3).build_memo();
        assert_eq!(memo.num_groups(), 5 * 6 / 2);
        // A clique's connected subsets are all non-empty subsets.
        let (_, _, memo) = JoinGraphSpec::new(Topology::Clique, 5, 3).build_memo();
        assert_eq!(memo.num_groups(), (1 << 5) - 1);
        assert_eq!(memo.root().0 as usize, memo.num_groups() - 1);
    }

    #[test]
    fn build_memo_expressions_are_well_formed() {
        let (_, query, memo) = JoinGraphSpec::new(Topology::Cycle, 6, 11).build_memo();
        assert!(memo.num_physical() > memo.num_groups());
        for group in memo.groups() {
            for expr in &group.physical {
                assert!(expr.local_cost.is_finite() && expr.local_cost > 0.0);
                assert!(expr.out_card >= 1.0);
                // Join children are strictly smaller relation sets.
                if let plansample_memo::PhysicalOp::HashJoin { left, right }
                | plansample_memo::PhysicalOp::NestedLoopJoin { left, right } = &expr.op
                {
                    let own = group.scope(&query);
                    let l = memo.group(*left).scope(&query);
                    let r = memo.group(*right).scope(&query);
                    assert_eq!(l.union(r), own);
                    assert!(l.is_disjoint(r));
                }
            }
        }
    }

    #[test]
    fn build_memo_is_deterministic() {
        let spec = JoinGraphSpec::new(Topology::Star, 6, 21);
        let (_, _, a) = spec.build_memo();
        let (_, _, b) = spec.build_memo();
        assert_eq!(a.num_groups(), b.num_groups());
        assert_eq!(a.num_physical(), b.num_physical());
        let render = |m: &plansample_memo::Memo| {
            m.groups()
                .map(|g| format!("{:?}", g.physical.iter().map(|e| &e.op).collect::<Vec<_>>()))
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn build_memo_scales_to_ten_plus_relations() {
        let (_, _, memo) = JoinGraphSpec::new(Topology::Cycle, 12, 7).build_memo();
        // Cycle-n connected subsets: the full set plus n·(n−1) proper
        // arcs.
        assert_eq!(memo.num_groups(), 12 * 11 + 1);
        assert!(memo.num_physical() > 1000);
    }
}
