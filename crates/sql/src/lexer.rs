//! SQL lexer: byte-offset-tracking tokenizer for the supported subset.

use std::fmt;

/// A lexical token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/value.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// Token kinds. Keywords are recognized later (case-insensitively) from
/// `Ident`, keeping the lexer free of keyword tables.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (also used for USEPLAN numbers too big for i64 —
    /// stored as raw digits).
    Number(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number(s) => write!(f, "number `{s}`"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Ne => write!(f, "`<>`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
        }
    }
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

/// Tokenizes `sql`.
pub fn lex(sql: &str) -> Result<Vec<Token>, LexError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let offset = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    offset,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `=` after `!`".to_string(),
                        offset,
                    });
                }
            }
            '\'' => {
                let mut out = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                message: "unterminated string literal".to_string(),
                                offset,
                            })
                        }
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                out.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            out.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(out),
                    offset,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    // A dot is part of the number only when followed by a
                    // digit (so `1.x` lexes as `1` `.` `x` — not needed
                    // for this subset, but keeps `t.c` unambiguous).
                    if bytes[i] == b'.'
                        && !bytes
                            .get(i + 1)
                            .map(|b| (*b as char).is_ascii_digit())
                            .unwrap_or(false)
                    {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number(sql[start..i].to_string()),
                    offset,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(sql[start..i].to_string()),
                    offset,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    offset,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_full_statement() {
        let ks = kinds("SELECT * FROM t WHERE a.x = 3;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Star,
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Number("3".into()),
                TokenKind::Semi,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= <> != ="),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Eq
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(
            kinds("'hello' 'it''s'"),
            vec![
                TokenKind::Str("hello".into()),
                TokenKind::Str("it's".into())
            ]
        );
    }

    #[test]
    fn numbers_int_float_and_qualified_names() {
        assert_eq!(
            kinds("12 3.5 t.c"),
            vec![
                TokenKind::Number("12".into()),
                TokenKind::Number("3.5".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Dot,
                TokenKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn huge_useplan_numbers_survive() {
        let ks = kinds("4432829940185443282994018512345");
        assert_eq!(
            ks,
            vec![TokenKind::Number("4432829940185443282994018512345".into())]
        );
    }

    #[test]
    fn offsets_are_byte_positions() {
        let ts = lex("ab  cd").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 4);
    }

    #[test]
    fn errors_carry_offsets() {
        let e = lex("a ? b").unwrap_err();
        assert_eq!(e.offset, 2);
        assert!(e.message.contains('?'));
        let e = lex("'unterminated").unwrap_err();
        assert!(e.message.contains("unterminated"));
        let e = lex("a ! b").unwrap_err();
        assert!(e.message.contains("after `!`"));
    }
}
