//! Regression-pins the TPC-H plan-space sizes (this build's Table 1
//! `#Plans` column) and checks the structural invariants the paper's
//! evaluation relies on.
//!
//! The absolute values are implementation-specific (they depend on the
//! rule set, see `docs/EXPERIMENTS.md`); pinning them catches accidental
//! changes to exploration, implementation rules, enforcer generation, or
//! property handling.

use plansample::PlanSpace;
use plansample_bignum::Nat;
use plansample_optimizer::{optimize, OptimizerConfig};

fn space_size(name: &str, cross_products: bool) -> Nat {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = match name {
        "Q5" => plansample_query::tpch::q5(&catalog),
        "Q6" => plansample_query::tpch::q6(&catalog),
        "Q7" => plansample_query::tpch::q7(&catalog),
        "Q8" => plansample_query::tpch::q8(&catalog),
        "Q9" => plansample_query::tpch::q9(&catalog),
        _ => unreachable!(),
    };
    let config = if cross_products {
        OptimizerConfig::with_cross_products()
    } else {
        OptimizerConfig::default()
    };
    let optimized = optimize(&catalog, &query, &config).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    space.total().clone()
}

#[test]
fn pinned_counts_without_cross_products() {
    assert_eq!(space_size("Q5", false).to_decimal(), "840579641856");
    assert_eq!(space_size("Q7", false).to_decimal(), "81257862528");
    assert_eq!(space_size("Q8", false).to_decimal(), "7686395164876800");
    assert_eq!(space_size("Q9", false).to_decimal(), "647088602496");
}

#[test]
fn pinned_counts_with_cross_products() {
    assert_eq!(space_size("Q5", true).to_decimal(), "6366517920960");
    assert_eq!(space_size("Q7", true).to_decimal(), "2096413505472");
    assert_eq!(space_size("Q8", true).to_decimal(), "1758007804933702272");
    assert_eq!(space_size("Q9", true).to_decimal(), "3638106979776");
}

#[test]
fn q6_control_space_is_tiny() {
    // §5: "The distributions of queries that contained few tables were
    // of no particular shape" — Q6 has a handful of plans.
    let n = space_size("Q6", false);
    assert!(n.to_u64().unwrap() < 20, "Q6 space {n}");
    assert_eq!(space_size("Q6", true), n, "no joins, CP mode is irrelevant");
}

#[test]
fn cross_products_strictly_enlarge_every_space() {
    for q in ["Q5", "Q7", "Q8", "Q9"] {
        let no_cp = space_size(q, false);
        let cp = space_size(q, true);
        assert!(cp > no_cp, "{q}: CP {cp} must exceed noCP {no_cp}");
    }
}

#[test]
fn q8_has_the_largest_space() {
    // 8 relations beat the 6-relation queries — the paper's Table 1
    // shows the same dominance.
    let q8 = space_size("Q8", false);
    for q in ["Q5", "Q7", "Q9"] {
        assert!(q8 > space_size(q, false), "{q} should be smaller than Q8");
    }
}

#[test]
fn counts_exceed_u64_usefully() {
    // The Q8 CP space needs more than 60 bits — the reason counting
    // uses arbitrary-precision integers.
    let n = space_size("Q8", true);
    assert!(n.bits() > 60, "Q8 CP bits = {}", n.bits());
    assert!(n.to_u64().is_some() || n.to_u128().is_some());
}

#[test]
fn best_cost_is_invariant_to_cross_product_mode() {
    // Enabling cross products adds alternatives but the optimum for a
    // connected query never uses one under this cost model.
    let (catalog, _) = plansample_catalog::tpch::catalog();
    for query in [
        plansample_query::tpch::q5(&catalog),
        plansample_query::tpch::q7(&catalog),
        plansample_query::tpch::q9(&catalog),
    ] {
        let a = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
        let b = optimize(&catalog, &query, &OptimizerConfig::with_cross_products()).unwrap();
        assert!((a.best_cost - b.best_cost).abs() < 1e-9 * a.best_cost);
    }
}
