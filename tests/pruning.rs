//! The pruning ablation (`ablation_pruning` binary) as invariants: cost-bound
//! pruning shrinks the testable space monotonically, preserves the
//! optimum, and the pruned space remains a *subset* — every plan of the
//! pruned memo appears (with identical results) in the full space.

use plansample::PlanSpace;
use plansample_datagen::MicroScale;
use plansample_optimizer::{optimize, prune, OptimizerConfig};
use std::sync::Arc;

/// Zero-copy space construction: the pruned memo is owned and unused
/// afterwards, so hand it straight to the space instead of letting
/// `PlanSpace::build` clone it.
fn shared_space(memo: plansample_memo::Memo, query: &plansample_query::QuerySpec) -> PlanSpace {
    PlanSpace::build_shared(Arc::new(memo), Arc::new(query.clone())).unwrap()
}

#[test]
fn pruning_is_monotone_and_preserves_the_optimum() {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = plansample_query::tpch::q5(&catalog);
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let full = PlanSpace::build(&optimized.memo, &query).unwrap();
    let full_total = full.total().clone();

    let mut previous = full_total.clone();
    for factor in [100.0, 10.0, 2.0, 1.0] {
        let pruned = prune(&optimized.memo, &query, factor);
        let space = shared_space(pruned, &query);
        assert!(
            space.total() <= &previous,
            "factor {factor}: {} > previous {previous}",
            space.total()
        );
        previous = space.total().clone();

        // The optimum survives every factor.
        let totals = plansample_optimizer::compute_totals(space.memo(), &query);
        let (_, best) = plansample_optimizer::best_plan(space.memo(), &query, &totals).unwrap();
        assert!(
            (best - optimized.best_cost).abs() < 1e-9 * optimized.best_cost,
            "factor {factor} lost the optimum"
        );
    }
    // Keep-only-best leaves a drastically smaller space.
    let tight_space = shared_space(prune(&optimized.memo, &query, 1.0), &query);
    assert!(tight_space.total().to_f64() < full_total.to_f64() * 1e-6);
}

#[test]
fn pruned_plans_still_execute_identically() {
    let (catalog, tables) = plansample_catalog::tpch::catalog();
    let db = plansample_datagen::generate(&catalog, &tables, &MicroScale::tiny(), 5);
    let query = plansample_query::tpch::q9(&catalog);
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = shared_space(prune(&optimized.memo, &query, 2.0), &query);

    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let report = space.validate_sampled(&catalog, &db, 40, &mut rng).unwrap();
    assert!(report.all_passed(), "{report}");
}

#[test]
fn pruning_keeps_group_count_but_drops_expressions() {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = plansample_query::tpch::q7(&catalog);
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let pruned = prune(&optimized.memo, &query, 1.5);
    assert_eq!(pruned.num_groups(), optimized.memo.num_groups());
    assert!(pruned.num_physical() < optimized.memo.num_physical());
    assert_eq!(pruned.root(), optimized.memo.root());
}
