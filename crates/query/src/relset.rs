//! [`RelSet`]: a compact bitset over the relations of one query block.
//!
//! Group identity in the MEMO (and hence duplicate detection during
//! exploration) is keyed by the set of base relations a sub-plan covers, so
//! this type is on the optimizer's hottest path. Queries are limited to 64
//! relation instances — far beyond anything the paper's workloads (or any
//! sane SQL) contain.

use crate::RelId;
use std::fmt;

/// A set of relation instances, represented as a 64-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RelSet(u64);

impl RelSet {
    /// The empty set.
    pub const EMPTY: RelSet = RelSet(0);

    /// Maximum number of relations representable.
    pub const MAX_RELS: usize = 64;

    /// Singleton set `{rel}`.
    pub fn singleton(rel: RelId) -> Self {
        assert!(
            rel.idx() < Self::MAX_RELS,
            "relation index {} out of range",
            rel.0
        );
        RelSet(1 << rel.0)
    }

    /// Set containing relations `0..n`.
    pub fn all(n: usize) -> Self {
        assert!(n <= Self::MAX_RELS);
        if n == 64 {
            RelSet(u64::MAX)
        } else {
            RelSet((1u64 << n) - 1)
        }
    }

    /// Raw mask (stable across calls; used for hashing/interop).
    pub fn mask(&self) -> u64 {
        self.0
    }

    /// Number of relations in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    pub fn contains(&self, rel: RelId) -> bool {
        rel.idx() < Self::MAX_RELS && self.0 & (1 << rel.0) != 0
    }

    /// `true` iff `other` is a subset of `self`.
    pub fn is_superset(&self, other: RelSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// `true` iff the sets share no relation.
    pub fn is_disjoint(&self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Set union.
    pub fn union(&self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(&self, other: RelSet) -> RelSet {
        RelSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: RelSet) -> RelSet {
        RelSet(self.0 & !other.0)
    }

    /// Inserts a relation.
    pub fn insert(&mut self, rel: RelId) {
        *self = self.union(RelSet::singleton(rel));
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = RelId> + '_ {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(RelId(i))
            }
        })
    }

    /// The single member of a singleton set.
    ///
    /// # Panics
    /// Panics unless `len() == 1`.
    pub fn sole_member(&self) -> RelId {
        assert_eq!(self.len(), 1, "sole_member on non-singleton {self:?}");
        RelId(self.0.trailing_zeros())
    }

    /// Enumerates every way to split this set into an unordered pair of
    /// non-empty disjoint halves `(left, right)` with `left ∪ right == self`.
    /// Each unordered pair appears exactly once (the half containing the
    /// lowest relation is reported as `left`).
    pub fn splits(&self) -> Vec<(RelSet, RelSet)> {
        let n = self.len();
        if n < 2 {
            return Vec::new();
        }
        let members: Vec<RelId> = self.iter().collect();
        let mut out = Vec::with_capacity((1usize << (n - 1)) - 1);
        // Fix members[0] on the left to avoid double counting.
        for pattern in 0..(1u64 << (n - 1)) {
            let mut left = RelSet::singleton(members[0]);
            let mut right = RelSet::EMPTY;
            for (i, &m) in members[1..].iter().enumerate() {
                if pattern & (1 << i) != 0 {
                    left.insert(m);
                } else {
                    right.insert(m);
                }
            }
            if !right.is_empty() {
                out.push((left, right));
            }
        }
        out
    }
}

impl FromIterator<RelId> for RelSet {
    fn from_iter<I: IntoIterator<Item = RelId>>(iter: I) -> Self {
        iter.into_iter()
            .fold(RelSet::EMPTY, |acc, r| acc.union(RelSet::singleton(r)))
    }
}

impl fmt::Debug for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", r.0)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(ids: &[u32]) -> RelSet {
        RelSet::from_iter(ids.iter().map(|&i| RelId(i)))
    }

    #[test]
    fn basic_set_algebra() {
        let a = rs(&[0, 2, 5]);
        let b = rs(&[2, 3]);
        assert_eq!(a.union(b), rs(&[0, 2, 3, 5]));
        assert_eq!(a.intersect(b), rs(&[2]));
        assert_eq!(a.difference(b), rs(&[0, 5]));
        assert!(a.contains(RelId(2)));
        assert!(!a.contains(RelId(3)));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(RelSet::EMPTY.is_empty());
    }

    #[test]
    fn subset_and_disjoint() {
        let a = rs(&[1, 2, 3]);
        assert!(a.is_superset(rs(&[1, 3])));
        assert!(!a.is_superset(rs(&[0])));
        assert!(a.is_disjoint(rs(&[0, 4])));
        assert!(!a.is_disjoint(rs(&[3, 4])));
        assert!(a.is_superset(RelSet::EMPTY));
    }

    #[test]
    fn iteration_is_sorted() {
        let a = rs(&[5, 1, 9]);
        let v: Vec<u32> = a.iter().map(|r| r.0).collect();
        assert_eq!(v, vec![1, 5, 9]);
    }

    #[test]
    fn all_builds_prefix() {
        assert_eq!(RelSet::all(3), rs(&[0, 1, 2]));
        assert_eq!(RelSet::all(0), RelSet::EMPTY);
        assert_eq!(RelSet::all(64).len(), 64);
    }

    #[test]
    fn sole_member_of_singleton() {
        assert_eq!(RelSet::singleton(RelId(7)).sole_member(), RelId(7));
    }

    #[test]
    #[should_panic(expected = "non-singleton")]
    fn sole_member_rejects_pairs() {
        rs(&[1, 2]).sole_member();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn singleton_out_of_range() {
        RelSet::singleton(RelId(64));
    }

    #[test]
    fn splits_enumerate_unordered_pairs_once() {
        // {0,1,2}: 3 unordered splits: {0}|{1,2}, {0,1}|{2}, {0,2}|{1}.
        let splits = rs(&[0, 1, 2]).splits();
        assert_eq!(splits.len(), 3);
        for (l, r) in &splits {
            assert!(l.is_disjoint(*r));
            assert_eq!(l.union(*r), rs(&[0, 1, 2]));
            assert!(
                l.contains(RelId(0)),
                "canonical split keeps lowest member left"
            );
        }
        // n members -> 2^(n-1) - 1 unordered splits.
        assert_eq!(rs(&[0, 1, 2, 3]).splits().len(), 7);
        assert_eq!(rs(&[3, 9]).splits().len(), 1);
        assert!(rs(&[4]).splits().is_empty());
        assert!(RelSet::EMPTY.splits().is_empty());
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", rs(&[0, 3])), "{0,3}");
    }
}
