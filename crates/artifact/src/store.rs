//! A directory of artifacts addressed by query + config fingerprint.
//!
//! The store is deliberately dumb: one file per prepared query, named
//! by a hash of the *same* normalized fingerprint
//! [`plansample_core::cache_key`] computes, so the store key and the
//! `PlanService` cache key can never drift apart. Publication is
//! atomic (temp file + rename, see [`crate::save`]); a concurrent
//! writer of the same key simply wins the rename race with an
//! identical byte image. Anything that fails to decode — corruption,
//! an old format version, a fingerprint that belongs to a different
//! query (hash collision or stale config) — is moved aside to a
//! `.quarantined` file rather than deleted, so an operator can inspect
//! it while the store keeps serving.

use crate::{checksum, ArtifactError};
use plansample_core::{cache_key, PlanService, PreparedQuery};
use plansample_optimizer::OptimizerConfig;
use plansample_query::QuerySpec;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File extension of a published artifact.
const EXT: &str = "plan";

/// A directory of plan-space artifacts keyed by normalized query +
/// optimizer-config fingerprint.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

/// What a [`ArtifactStore::warm`] pass did, for startup logging.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WarmReport {
    /// Artifacts decoded and admitted into the service cache.
    pub loaded: usize,
    /// Artifacts that decoded but were refused by the service (config
    /// mismatch, or the key was already cached).
    pub refused: usize,
    /// Files that failed to decode and were quarantined.
    pub quarantined: usize,
}

impl ArtifactStore {
    /// Opens (creating if needed) the store directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ArtifactError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ArtifactStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file that does (or would) hold this query + config's
    /// artifact. The name is a hash of the normalized fingerprint:
    /// stable across processes, free of filesystem-hostile characters,
    /// and identical for every spelling that normalizes alike.
    pub fn path_for(&self, query: &QuerySpec, config: &OptimizerConfig) -> PathBuf {
        let fingerprint = cache_key(query, config);
        self.dir
            .join(format!("{:016x}.{EXT}", checksum(fingerprint.as_bytes())))
    }

    /// Encodes and atomically publishes `prepared`, returning the
    /// published path.
    pub fn save(&self, prepared: &PreparedQuery) -> Result<PathBuf, ArtifactError> {
        let path = self.path_for(prepared.query(), prepared.config());
        crate::save(prepared, &path)?;
        Ok(path)
    }

    /// Looks up the artifact for `query` under `config`.
    ///
    /// * `Ok(Some(_))` — present and valid.
    /// * `Ok(None)` — absent, or present but *stale* (its fingerprint
    ///   is not this query + config's; the file is quarantined).
    /// * `Err(_)` — present but corrupt; the typed error says how, and
    ///   the file is quarantined so the next lookup is a clean miss.
    pub fn load(
        &self,
        query: &QuerySpec,
        config: &OptimizerConfig,
    ) -> Result<Option<PreparedQuery>, ArtifactError> {
        let path = self.path_for(query, config);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        match crate::decode(&bytes) {
            Ok(prepared) => {
                if cache_key(prepared.query(), prepared.config()) == cache_key(query, config) {
                    Ok(Some(prepared))
                } else {
                    // Same file name, different fingerprint: a hash
                    // collision or a stale entry. Never serve it.
                    self.quarantine(&path);
                    Ok(None)
                }
            }
            Err(e) => {
                self.quarantine(&path);
                Err(e)
            }
        }
    }

    /// Every published artifact file currently in the store.
    pub fn entries(&self) -> Result<Vec<PathBuf>, ArtifactError> {
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().map(|x| x == EXT).unwrap_or(false))
            .collect();
        paths.sort();
        Ok(paths)
    }

    /// Loads every artifact in the store into `service`'s cache
    /// (startup warming). Corrupt files are quarantined, artifacts
    /// prepared under a different optimizer configuration are refused
    /// by [`PlanService::warm`] — in both cases warming continues, and
    /// the report says what happened.
    pub fn warm(&self, service: &PlanService) -> Result<WarmReport, ArtifactError> {
        let mut report = WarmReport::default();
        for path in self.entries()? {
            let loaded = fs::read(&path)
                .map_err(ArtifactError::from)
                .and_then(|bytes| crate::decode(&bytes));
            match loaded {
                Ok(prepared) => {
                    if service.warm(Arc::new(prepared)) {
                        report.loaded += 1;
                    } else {
                        report.refused += 1;
                    }
                }
                Err(_) => {
                    self.quarantine(&path);
                    report.quarantined += 1;
                }
            }
        }
        Ok(report)
    }

    /// Moves a bad file aside (best-effort: a failed rename leaves it
    /// in place, and the next lookup will quarantine it again).
    fn quarantine(&self, path: &Path) {
        let _ = fs::rename(path, path.with_extension("quarantined"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("plansample-artifact-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn q5_prepared() -> (QuerySpec, OptimizerConfig, PreparedQuery) {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        let query = plansample_query::tpch::q5(&catalog);
        let config = OptimizerConfig::default();
        let prepared = PreparedQuery::prepare(&catalog, &query, &config).expect("q5 optimizes");
        (query, config, prepared)
    }

    #[test]
    fn save_load_round_trip_through_the_store() {
        let dir = temp_dir("roundtrip");
        let store = ArtifactStore::open(&dir).unwrap();
        let (query, config, prepared) = q5_prepared();
        assert!(store.load(&query, &config).unwrap().is_none(), "cold miss");
        let path = store.save(&prepared).unwrap();
        assert!(path.exists());
        assert_eq!(store.entries().unwrap(), vec![path.clone()]);
        let loaded = store.load(&query, &config).unwrap().expect("hit");
        assert_eq!(loaded.total(), prepared.total());
        // A different config is a different key: still a miss.
        let other = OptimizerConfig::with_cross_products();
        assert!(store.load(&query, &other).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_and_the_store_keeps_serving() {
        let dir = temp_dir("quarantine");
        let store = ArtifactStore::open(&dir).unwrap();
        let (query, config, prepared) = q5_prepared();
        let path = store.save(&prepared).unwrap();
        // Flip one payload byte: the next load must fail typed…
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(&query, &config),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        // …and the file is out of the way: clean miss, store serves on.
        assert!(!path.exists(), "corrupt file moved aside");
        assert!(path.with_extension("quarantined").exists());
        assert!(store.load(&query, &config).unwrap().is_none());
        // Re-publishing heals the entry.
        store.save(&prepared).unwrap();
        assert!(store.load(&query, &config).unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_fills_a_service_and_reports_mismatches() {
        let dir = temp_dir("warm");
        let store = ArtifactStore::open(&dir).unwrap();
        let (query, config, prepared) = q5_prepared();
        store.save(&prepared).unwrap();

        let (catalog, _) = plansample_catalog::tpch::catalog();
        let service = PlanService::new(catalog.clone(), config.clone(), 8);
        let before = plansample_optimizer::thread_optimizations_performed();
        let report = store.warm(&service).unwrap();
        assert_eq!(
            report,
            WarmReport {
                loaded: 1,
                refused: 0,
                quarantined: 0
            }
        );
        assert!(service.is_cached(&query), "warmed key is a cache hit");
        let served = service.get_or_prepare(&query).unwrap();
        assert_eq!(served.total(), prepared.total());
        assert_eq!(
            plansample_optimizer::thread_optimizations_performed(),
            before,
            "a warmed artifact must serve with zero re-optimizations"
        );

        // A service under a different config refuses the artifact.
        let other = PlanService::new(catalog, OptimizerConfig::with_cross_products(), 8);
        let report = other.stats();
        assert_eq!(report.entries, 0);
        let warm = store.warm(&other).unwrap();
        assert_eq!(warm.loaded, 0);
        assert_eq!(warm.refused, 1);
        assert!(!other.is_cached(&query));
        let _ = fs::remove_dir_all(&dir);
    }
}
