//! Analytical search-space statistics (an extension in the spirit of
//! §5/§6: "a further use of our enumeration and sampling primitives is
//! the study of the search space itself").
//!
//! Because the counts give every sub-space's exact size, the *expected
//! operator mix of a uniformly drawn plan* is computable in closed form,
//! no sampling needed: the root expression `v` appears with probability
//! `N(v)/N`, and conditional on a parent appearing, a child `w` fills
//! slot `s` with probability `N(w)/b(s)`. Propagating these top-down
//! yields the expected number of occurrences of every memo expression —
//! e.g. "a uniform Q5 plan contains 2.3 nested-loops joins on average",
//! the kind of parameter the paper suggests could "predict the
//! distribution analytically".

use crate::PlanSpace;

impl PlanSpace {
    /// Expected number of occurrences of each expression in one
    /// uniformly sampled plan, indexed like the memo
    /// (`[group][expr] -> E[occurrences]`).
    ///
    /// Occurrences rather than probabilities because an expression can
    /// appear more than once in a plan only through enforcer stacking,
    /// which this memo design rules out — so values are in `[0, 1]` and
    /// are genuine probabilities; the method still sums contributions
    /// defensively.
    pub fn operator_frequencies(&self) -> Vec<Vec<f64>> {
        let nest = |flat: &[f64]| -> Vec<Vec<f64>> {
            self.memo
                .groups()
                .map(|g| {
                    g.phys_iter()
                        .map(|(id, _)| flat[self.links.ids().dense(id).idx()])
                        .collect()
                })
                .collect()
        };
        let mut expected = vec![0.0f64; self.links.num_exprs()];
        let total = self.total().to_f64();
        if total == 0.0 {
            return nest(&expected);
        }

        // Seed the roots with N(v)/N, then push accumulated mass down the
        // links' precomputed topological order in reverse (parents before
        // children), so every expression is processed exactly once — a
        // naive worklist would re-expand shared sub-spaces exponentially
        // often.
        for &d in self.links.list(self.links.root_list()) {
            expected[d.idx()] = self.counts.rooted(d).to_f64() / total;
        }
        for &d in self.links.topo().iter().rev() {
            let mass = expected[d.idx()];
            if mass == 0.0 {
                continue;
            }
            for &l in self.links.slot_lists(d) {
                let b = self.counts.list_total(l).to_f64();
                if b == 0.0 {
                    continue;
                }
                for &w in self.links.list(l) {
                    expected[w.idx()] += mass * self.counts.rooted(w).to_f64() / b;
                }
            }
        }
        nest(&expected)
    }

    /// Expected plan size (operator count) of a uniform sample — the sum
    /// of all expected occurrences.
    pub fn expected_plan_size(&self) -> f64 {
        self.operator_frequencies()
            .iter()
            .flat_map(|g| g.iter())
            .sum()
    }

    /// Expected occurrences per *operator name* ("HashJoin" → 1.7, …),
    /// sorted descending — the headline "operator mix" view.
    pub fn operator_mix(&self) -> Vec<(&'static str, f64)> {
        let freqs = self.operator_frequencies();
        let mut by_name: std::collections::HashMap<&'static str, f64> =
            std::collections::HashMap::new();
        for group in self.memo.groups() {
            for (id, expr) in group.phys_iter() {
                *by_name.entry(expr.op.name()).or_default() += freqs[id.group.0 as usize][id.index];
            }
        }
        let mut out: Vec<(&'static str, f64)> = by_name.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::paper_example;
    use crate::PlanSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frequencies_match_hand_computed_values_on_the_fixture() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let f = space.operator_frequencies();
        let get = |id: plansample_memo::PhysId| f[id.group.0 as usize][id.index];

        // Roots: 16/32 each.
        assert!((get(ex.root_c_ab) - 0.5).abs() < 1e-12);
        assert!((get(ex.root_ab_c) - 0.5).abs() < 1e-12);
        // Group AB feeds both roots with mass 1 in total; HashJoin takes
        // 6/8 of it, MergeJoin 2/8.
        assert!((get(ex.hash_join_ab) - 0.75).abs() < 1e-12);
        assert!((get(ex.merge_join_ab) - 0.25).abs() < 1e-12);
        // Group C also appears in every plan: TableScan_C and IdxScan_C
        // split it 1/2 : 1/2.
        assert!((get(ex.table_scan_c) - 0.5).abs() < 1e-12);
        assert!((get(ex.idx_scan_c) - 0.5).abs() < 1e-12);
        // Group A, direct children: HashJoin spreads 0.75 over three
        // alternatives, MergeJoin spreads 0.25 over {IdxScan, Sort}.
        assert!((get(ex.idx_scan_a) - (0.25 + 0.125)).abs() < 1e-12);
        assert!((get(ex.sort_a) - (0.25 + 0.125)).abs() < 1e-12);
        // TableScan_A occurs both as a direct join input (0.75/3) and as
        // the Sort's input (full Sort mass): 0.25 + 0.375.
        assert!((get(ex.table_scan_a) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn frequencies_match_monte_carlo() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let f = space.operator_frequencies();

        let draws = 60_000usize;
        let mut rng = StdRng::seed_from_u64(31);
        let mut counts: Vec<Vec<usize>> = f.iter().map(|g| vec![0; g.len()]).collect();
        for _ in 0..draws {
            for id in space.sample(&mut rng).preorder_ids() {
                counts[id.group.0 as usize][id.index] += 1;
            }
        }
        for (gi, group) in f.iter().enumerate() {
            for (ei, &expected) in group.iter().enumerate() {
                let observed = counts[gi][ei] as f64 / draws as f64;
                // 5-sigma binomial tolerance.
                let sigma = (expected.max(1e-12) * (1.0 - expected.min(1.0)).max(0.0)
                    / draws as f64)
                    .sqrt();
                assert!(
                    (observed - expected).abs() <= 5.0 * sigma + 2e-3,
                    "expr {gi}.{ei}: observed {observed:.4}, analytic {expected:.4}"
                );
            }
        }
    }

    #[test]
    fn expected_plan_size_is_exact_on_the_fixture() {
        // Every plan of the fixture has 5 operators except hash-join
        // plans whose A-side is the Sort (6 operators: the sort + scan).
        // Count: plans containing Sort_A = (via hash join: 2 roots × 1 ×
        // 2 B-choices × 2 C-choices = 8) + (via merge join left: 2 roots
        // × 1 × 1 × 2 = 4) = 12 of 32.
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let expected = (32.0 * 5.0 + 12.0) / 32.0;
        assert!(
            (space.expected_plan_size() - expected).abs() < 1e-9,
            "got {}",
            space.expected_plan_size()
        );
    }

    #[test]
    fn operator_mix_sums_to_plan_size() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let mix = space.operator_mix();
        let total: f64 = mix.iter().map(|(_, v)| v).sum();
        assert!((total - space.expected_plan_size()).abs() < 1e-9);
        // HashJoin appears in every plan at the root and in 3/4 of AB
        // slots: 1.0 + 0.75.
        let hj = mix.iter().find(|(n, _)| *n == "HashJoin").unwrap().1;
        assert!((hj - 1.75).abs() < 1e-12);
    }
}
