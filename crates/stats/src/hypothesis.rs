//! A small hypothesis-test framework.
//!
//! Every test in this crate — chi-square goodness-of-fit, one- and
//! two-sample Kolmogorov–Smirnov — reports a [`TestOutcome`]: the
//! statistic, a bound on the p-value under the null, the null
//! distribution itself (so critical values at any significance level can
//! be recovered), and an effect size. Degenerate inputs (empty samples,
//! single-category tables, non-positive expectations) are typed
//! [`StatsError`]s rather than NaNs or panics, so statistical test
//! harnesses can assert on them.

use crate::special::{gamma_q, kolmogorov_q};
use std::fmt;

/// Errors from constructing a statistical test on degenerate input.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A chi-square table needs at least two categories to have any
    /// degrees of freedom; `got` is the number supplied.
    NotEnoughCategories {
        /// Number of categories supplied.
        got: usize,
    },
    /// Observed and expected tables differ in length.
    LengthMismatch {
        /// Length of the observed table.
        observed: usize,
        /// Length of the expected table.
        expected: usize,
    },
    /// An expected count was zero or negative (the chi-square statistic
    /// divides by it).
    NonPositiveExpected {
        /// Index of the offending category.
        index: usize,
        /// The offending expected count.
        value: f64,
    },
    /// The sample contains no (finite) observations.
    EmptySample,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NotEnoughCategories { got } => {
                write!(f, "chi-square needs at least 2 categories, got {got}")
            }
            StatsError::LengthMismatch { observed, expected } => {
                write!(
                    f,
                    "observed ({observed}) and expected ({expected}) tables differ in length"
                )
            }
            StatsError::NonPositiveExpected { index, value } => {
                write!(
                    f,
                    "expected count {value} at category {index} is not positive"
                )
            }
            StatsError::EmptySample => write!(f, "sample contains no observations"),
        }
    }
}

impl std::error::Error for StatsError {}

/// The distribution a test statistic is referred to under the null
/// hypothesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NullDistribution {
    /// Chi-square with `dof` degrees of freedom.
    ChiSquare {
        /// Degrees of freedom.
        dof: usize,
    },
    /// The Kolmogorov distribution of `√n_eff · D` (with Stephens'
    /// finite-sample correction applied via `effective_n`).
    Kolmogorov {
        /// Effective sample size (`n` one-sample, `n·m/(n+m)` two-sample).
        effective_n: f64,
    },
}

/// Outcome of a hypothesis test.
///
/// Carries everything a harness needs to make and *explain* a decision:
/// the statistic, an upper bound on `P[statistic ≥ observed | H₀]`, the
/// null distribution for recovering critical values at any significance
/// level, and the sample size for effect-size normalization.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    /// Human-readable test name (`"chi-square"`, `"ks-1sample"`, …).
    pub test: &'static str,
    /// The test statistic.
    pub statistic: f64,
    /// Upper bound on `P[statistic ≥ observed]` under the null.
    pub p_value: f64,
    /// Total number of observations behind the statistic.
    pub n: usize,
    /// The statistic's null distribution.
    pub null: NullDistribution,
}

impl TestOutcome {
    /// `true` iff the null hypothesis is rejected at significance `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
        self.p_value < alpha
    }

    /// Degrees of freedom, for chi-square-distributed statistics.
    pub fn dof(&self) -> Option<usize> {
        match self.null {
            NullDistribution::ChiSquare { dof } => Some(dof),
            NullDistribution::Kolmogorov { .. } => None,
        }
    }

    /// Survival function of the null distribution evaluated at `x`, in
    /// the same units as [`statistic`](Self::statistic).
    fn survival(&self, x: f64) -> f64 {
        match self.null {
            NullDistribution::ChiSquare { dof } => {
                if x <= 0.0 {
                    1.0
                } else {
                    gamma_q(dof as f64 / 2.0, x / 2.0)
                }
            }
            NullDistribution::Kolmogorov { effective_n } => {
                kolmogorov_q(scaled_ks(x.max(0.0), effective_n))
            }
        }
    }

    /// The critical value `c` with `P[statistic ≥ c | H₀] = alpha`:
    /// the rejection threshold at significance `alpha`, recovered from
    /// the null distribution by bisection.
    pub fn critical_value(&self, alpha: f64) -> f64 {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha in (0,1)");
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        while self.survival(hi) > alpha {
            hi *= 2.0;
            if hi > 1e12 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.survival(mid) > alpha {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// A sample-size-free effect size: Cohen's `w = √(χ²/n)` for
    /// chi-square statistics (w ≈ 0.1 small, 0.3 medium, 0.5 large), and
    /// the sup-distance `D` itself for KS statistics (already scale-free).
    pub fn effect_size(&self) -> f64 {
        match self.null {
            NullDistribution::ChiSquare { .. } => (self.statistic / self.n as f64).sqrt(),
            NullDistribution::Kolmogorov { .. } => self.statistic,
        }
    }
}

impl fmt::Display for TestOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: statistic {:.4}, p <= {:.3e}, effect size {:.3} (n = {})",
            self.test,
            self.statistic,
            self.p_value,
            self.effect_size(),
            self.n
        )
    }
}

/// Stephens' finite-sample scaling `(√n_eff + 0.12 + 0.11/√n_eff) · D`
/// that maps a KS statistic onto the asymptotic Kolmogorov distribution.
pub(crate) fn scaled_ks(d: f64, effective_n: f64) -> f64 {
    let root = effective_n.sqrt();
    (root + 0.12 + 0.11 / root) * d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chi2_outcome(statistic: f64, dof: usize, n: usize) -> TestOutcome {
        TestOutcome {
            test: "chi-square",
            statistic,
            p_value: gamma_q(dof as f64 / 2.0, statistic / 2.0),
            n,
            null: NullDistribution::ChiSquare { dof },
        }
    }

    #[test]
    fn critical_value_inverts_chi_square_survival() {
        // Table values: chi2(3 dof) upper 5% point = 7.815, 1% = 11.345;
        // chi2(10) upper 5% = 18.307.
        let t = chi2_outcome(1.0, 3, 100);
        assert!((t.critical_value(0.05) - 7.815).abs() < 1e-2);
        assert!((t.critical_value(0.01) - 11.345).abs() < 1e-2);
        let t = chi2_outcome(1.0, 10, 100);
        assert!((t.critical_value(0.05) - 18.307).abs() < 1e-2);
    }

    #[test]
    fn critical_value_inverts_kolmogorov_survival() {
        // For large n the KS 5% critical value is ≈ 1.358/√n.
        let n = 10_000.0;
        let t = TestOutcome {
            test: "ks",
            statistic: 0.0,
            p_value: 1.0,
            n: 10_000,
            null: NullDistribution::Kolmogorov { effective_n: n },
        };
        let crit = t.critical_value(0.05);
        assert!(
            (crit - 1.3581 / n.sqrt()).abs() < 2e-4,
            "crit {crit} vs {}",
            1.3581 / n.sqrt()
        );
    }

    #[test]
    fn rejection_is_consistent_with_critical_value() {
        let t = chi2_outcome(9.0, 3, 500);
        // 9.0 is above the 5% point (7.815) but below the 1% point.
        assert!(t.rejects_at(0.05));
        assert!(!t.rejects_at(0.01));
        assert!(t.statistic > t.critical_value(0.05));
        assert!(t.statistic < t.critical_value(0.01));
    }

    #[test]
    fn effect_size_is_cohens_w_for_chi_square() {
        let t = chi2_outcome(45.0, 4, 500);
        assert!((t.effect_size() - (45.0f64 / 500.0).sqrt()).abs() < 1e-12);
        assert_eq!(t.dof(), Some(4));
    }

    #[test]
    fn outcome_display_is_informative() {
        let t = chi2_outcome(45.0, 4, 500);
        let text = t.to_string();
        assert!(text.contains("chi-square") && text.contains("n = 500"));
    }

    #[test]
    fn stats_error_messages() {
        assert!(StatsError::NotEnoughCategories { got: 1 }
            .to_string()
            .contains("at least 2"));
        assert!(StatsError::EmptySample
            .to_string()
            .contains("no observations"));
        assert!(StatsError::LengthMismatch {
            observed: 3,
            expected: 4
        }
        .to_string()
        .contains("differ"));
        assert!(StatsError::NonPositiveExpected {
            index: 2,
            value: 0.0
        }
        .to_string()
        .contains("not positive"));
    }
}
