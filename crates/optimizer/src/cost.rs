//! The cost model.
//!
//! Textbook formulas over estimated cardinalities. Absolute constants are
//! not calibrated against any product (the paper's §5 argues the *shape*
//! of cost distributions is robust to the cost model); what matters for
//! reproducing the paper's phenomena is the relative structure:
//!
//! - scans are linear, index scans slightly dearer per row;
//! - sorting is `n·log n` — expensive on big inputs, negligible on small;
//! - hash join pays a build premium on the left input;
//! - merge join is the cheapest join *given* sorted inputs;
//! - nested loops are quadratic — catastrophic on large inputs but the
//!   best choice when one side has a handful of rows. This operator is
//!   what produces the heavy right tail in the paper's Figure 4.

/// Cost-model constants. All costs are abstract units ≈ "row touches".
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Per-row cost of a sequential heap scan.
    pub seq_row: f64,
    /// Per-row cost of an ordered index scan (random-access penalty).
    pub idx_row: f64,
    /// Multiplier on `n·log2(n+2)` for sorting.
    pub sort_factor: f64,
    /// Per-row cost of building a hash table (hash join, hash aggregate).
    pub hash_build_row: f64,
    /// Per-row cost of probing a hash table.
    pub hash_probe_row: f64,
    /// Per-row cost of advancing a merge join input.
    pub merge_row: f64,
    /// Per *pair* cost of nested-loops evaluation.
    pub nlj_pair: f64,
    /// Per-row cost of streaming aggregation.
    pub stream_agg_row: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seq_row: 1.0,
            idx_row: 1.2,
            sort_factor: 0.5,
            hash_build_row: 1.5,
            hash_probe_row: 1.0,
            merge_row: 1.0,
            nlj_pair: 0.02,
            stream_agg_row: 1.0,
        }
    }
}

impl CostModel {
    /// Heap scan of a table with `rows` stored rows (filters are applied
    /// while scanning, so the stored — not the filtered — count is paid).
    pub fn table_scan(&self, rows: f64) -> f64 {
        self.seq_row * rows
    }

    /// Full ordered scan through an index.
    pub fn idx_scan(&self, rows: f64) -> f64 {
        self.idx_row * rows
    }

    /// Sorting `rows` input rows.
    pub fn sort(&self, rows: f64) -> f64 {
        self.sort_factor * rows * (rows + 2.0).log2()
    }

    /// Hash join: build on `left_rows`, probe with `right_rows`.
    pub fn hash_join(&self, left_rows: f64, right_rows: f64) -> f64 {
        self.hash_build_row * left_rows + self.hash_probe_row * right_rows
    }

    /// Merge join over pre-sorted inputs.
    pub fn merge_join(&self, left_rows: f64, right_rows: f64) -> f64 {
        self.merge_row * (left_rows + right_rows)
    }

    /// Nested-loops join (inner rescanned per outer row).
    pub fn nested_loop_join(&self, left_rows: f64, right_rows: f64) -> f64 {
        self.nlj_pair * left_rows * right_rows + self.seq_row * left_rows
    }

    /// Hash aggregation of `rows` input rows.
    pub fn hash_agg(&self, rows: f64) -> f64 {
        self.hash_build_row * rows
    }

    /// Streaming aggregation of `rows` (already grouped) input rows.
    pub fn stream_agg(&self, rows: f64) -> f64 {
        self.stream_agg_row * rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_are_linear() {
        let m = CostModel::default();
        assert_eq!(m.table_scan(1000.0), 1000.0);
        assert!(m.idx_scan(1000.0) > m.table_scan(1000.0));
        assert_eq!(m.table_scan(0.0), 0.0);
    }

    #[test]
    fn sort_is_superlinear() {
        let m = CostModel::default();
        let small = m.sort(1000.0);
        let big = m.sort(2000.0);
        assert!(big > 2.0 * small * 0.99, "n log n growth");
        assert!(
            m.sort(1e6) > m.table_scan(1e6),
            "sorting beats scanning in cost"
        );
    }

    #[test]
    fn merge_join_cheapest_given_sorted_inputs() {
        let m = CostModel::default();
        let (l, r) = (1e5, 1e5);
        assert!(m.merge_join(l, r) < m.hash_join(l, r));
        assert!(m.hash_join(l, r) < m.nested_loop_join(l, r));
    }

    #[test]
    fn nlj_wins_on_tiny_inner() {
        let m = CostModel::default();
        // outer 1e6 rows, inner 1 row: NLJ ~ 1e6*0.02 + 1e6 vs hash 1.5e6+1.
        assert!(m.nested_loop_join(1e6, 1.0) < m.hash_join(1e6, 1.0));
    }

    #[test]
    fn nlj_catastrophic_on_large_inputs() {
        let m = CostModel::default();
        // The paper's heavy tail: NLJ on 6M x 1.5M is ~5 orders of
        // magnitude worse than a hash join.
        let ratio = m.nested_loop_join(6e6, 1.5e6) / m.hash_join(6e6, 1.5e6);
        assert!(ratio > 1e4, "ratio {ratio}");
    }

    #[test]
    fn hash_join_build_side_matters() {
        let m = CostModel::default();
        assert!(m.hash_join(100.0, 1e6) < m.hash_join(1e6, 100.0));
    }

    #[test]
    fn agg_costs() {
        let m = CostModel::default();
        assert!(m.stream_agg(1000.0) < m.hash_agg(1000.0));
    }
}
