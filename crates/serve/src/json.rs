//! Minimal JSON support for the bench artifact.
//!
//! The environment has no serde, so this module hand-rolls exactly the
//! slice `BENCH_serving.json` needs: an order-preserving object writer
//! and a small recursive-descent parser used to validate the artifact's
//! schema in CI (`plansample-loadgen --validate`). The parser handles
//! the full JSON value grammar minus `\u` escapes, never panics on
//! malformed input, and bounds recursion depth.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64; the artifact's counters fit exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (validation only).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// What kind of scope is open (controls the closing bracket and
/// whether members take keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Obj,
    Arr,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    /// Whether the scope already has a member (comma control).
    has_member: bool,
}

/// Incremental writer for one JSON object tree. Keys are written in
/// insertion order, values must be pushed via the typed methods, and
/// `finish` closes every open scope — so the output is well-formed by
/// construction. Inside an array scope (opened with [`ObjWriter::arr`])
/// elements are pushed with the `elem_*` methods; everywhere else,
/// members take keys.
#[derive(Debug, Default)]
pub struct ObjWriter {
    out: String,
    scopes: Vec<Scope>,
}

impl ObjWriter {
    /// Starts the root object.
    pub fn new() -> Self {
        ObjWriter {
            out: "{".into(),
            scopes: vec![Scope {
                kind: ScopeKind::Obj,
                has_member: false,
            }],
        }
    }

    fn comma(&mut self) {
        if let Some(last) = self.scopes.last_mut() {
            if last.has_member {
                self.out.push(',');
            }
            last.has_member = true;
        }
    }

    fn key(&mut self, key: &str) {
        debug_assert!(
            !matches!(self.scopes.last(), Some(s) if s.kind == ScopeKind::Arr),
            "keyed member inside an array scope"
        );
        self.comma();
        let _ = write!(self.out, "{}:", quoted(key));
    }

    fn push_scope(&mut self, kind: ScopeKind) {
        self.out.push(match kind {
            ScopeKind::Obj => '{',
            ScopeKind::Arr => '[',
        });
        self.scopes.push(Scope {
            kind,
            has_member: false,
        });
    }

    /// Writes a string member.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.out.push_str(&quoted(value));
        self
    }

    /// Writes an integer member.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Writes a float member (finite; NaN/inf become null).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Opens a nested object member.
    pub fn obj(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.push_scope(ScopeKind::Obj);
        self
    }

    /// Opens a nested array member; fill it with the `elem_*` methods.
    pub fn arr(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.push_scope(ScopeKind::Arr);
        self
    }

    /// Opens an object as the next element of the enclosing array.
    pub fn elem_obj(&mut self) -> &mut Self {
        debug_assert!(
            matches!(self.scopes.last(), Some(s) if s.kind == ScopeKind::Arr),
            "array element outside an array scope"
        );
        self.comma();
        self.push_scope(ScopeKind::Obj);
        self
    }

    /// Closes the innermost nested scope.
    pub fn end(&mut self) -> &mut Self {
        if let Some(scope) = self.scopes.pop() {
            self.out.push(match scope.kind {
                ScopeKind::Obj => '}',
                ScopeKind::Arr => ']',
            });
        }
        self
    }

    /// Closes every open scope and returns the document.
    pub fn finish(mut self) -> String {
        while let Some(scope) = self.scopes.pop() {
            self.out.push(match scope.kind {
                ScopeKind::Obj => '}',
                ScopeKind::Arr => ']',
            });
        }
        self.out
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a JSON document. Returns a message naming the failure offset
/// on malformed input; never panics.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos, depth + 1)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key at byte {pos} is not a string")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            other => {
                                return Err(format!("unsupported escape {other:?} at byte {pos}"))
                            }
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is &str, so
                        // boundaries are valid).
                        let start = *pos;
                        let mut end = start + 1;
                        while end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
                            end += 1;
                        }
                        s.push_str(
                            std::str::from_utf8(&bytes[start..end])
                                .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                        );
                        *pos = end;
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("malformed number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_reparses() {
        let mut w = ObjWriter::new();
        w.str("name", "load \"test\"").int("n", 42);
        w.obj("nested").float("p50", 1.25).end();
        let text = w.finish();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.get("n").and_then(Json::as_num), Some(42.0));
        assert_eq!(
            parsed
                .get("nested")
                .and_then(|n| n.get("p50"))
                .and_then(Json::as_num),
            Some(1.25)
        );
        assert_eq!(parsed.get("name"), Some(&Json::Str("load \"test\"".into())));
    }

    #[test]
    fn writer_arrays_reparse() {
        let mut w = ObjWriter::new();
        w.int("reactors", 2).arr("per_reactor");
        for i in 0..2u64 {
            w.elem_obj().int("index", i).int("requests", 10 * i).end();
        }
        w.end().int("after", 7);
        let parsed = parse(&w.finish()).unwrap();
        let arr = match parsed.get("per_reactor") {
            Some(Json::Arr(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].get("requests").and_then(Json::as_num), Some(10.0));
        assert_eq!(parsed.get("after").and_then(Json::as_num), Some(7.0));
    }

    #[test]
    fn malformed_inputs_error_without_panicking() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "[1,",
            "\"unterminated",
            "{\"a\":01x}",
            "nul",
            "{}}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }
}
