//! Uniform random sampling of execution plans (§1, §3).
//!
//! "Once an unranking mechanism is available, uniform sampling of
//! elements in the space reduces to random generation of numbers in the
//! range 0, …, N−1." [`PlanSpace::sample`] draws a uniform rank with
//! [`Nat::random_below`] and unranks it — every plan has probability
//! exactly `1/N`.
//!
//! [`PlanSpace::sample_naive_walk`] is the obvious-but-wrong alternative
//! kept as a measurable baseline: walk the memo top-down picking
//! *operators* uniformly at each step. Because a subtree's probability
//! is then the product of per-step choices rather than `1/N`, plans in
//! bushy, asymmetric regions of the space are systematically
//! over-sampled. The statistical tests show a chi-square uniformity test
//! accepts the unranking sampler and rejects the naive walk — the reason
//! the paper needs the counting machinery at all.

use crate::{PlanBatch, PlanSpace};
use plansample_bignum::Nat;
use plansample_memo::{DenseId, PlanNode};
use rand::Rng;

impl PlanSpace {
    /// Draws one plan uniformly from the space.
    ///
    /// # Panics
    /// Panics if the space is empty (`total() == 0`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> PlanNode {
        assert!(
            !self.total().is_zero(),
            "cannot sample from an empty plan space"
        );
        let rank = Nat::random_below(rng, self.total());
        self.unrank(&rank).expect("rank drawn below the total")
    }

    /// Smallest number of draws per worker thread worth forking the
    /// unranking across the pool.
    const PAR_MIN_DRAWS: usize = 256;

    /// Draws `k` plans uniformly and independently (with replacement),
    /// as in the paper's 10 000-plan experiments. The batched entry
    /// point of the prepared-query serving surface: amortizes the memo
    /// preparation over arbitrarily many draws.
    ///
    /// Large batches unrank in parallel over the `threadpool` workers.
    /// The caller's RNG is consumed exactly as the sequential loop
    /// consumes it — all `k` ranks are drawn up front, then unranked
    /// (the deterministic, side-effect-free part) concurrently — so the
    /// returned batch is identical at every thread count.
    ///
    /// # Panics
    /// Panics if `k > 0` and the space is empty.
    pub fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<PlanNode> {
        assert!(
            k == 0 || !self.total().is_zero(),
            "cannot sample from an empty plan space"
        );
        let ranks: Vec<Nat> = (0..k)
            .map(|_| Nat::random_below(rng, self.total()))
            .collect();
        threadpool::parallel_map(k, Self::PAR_MIN_DRAWS, |i| {
            self.unrank(&ranks[i]).expect("rank drawn below the total")
        })
    }

    /// Draws `k` plans uniformly into a reusable flat batch — the
    /// zero-allocation serving path.
    ///
    /// The fill runs on the fastest rung of the tier ladder the space
    /// qualifies for (see [`crate::Counts::tier`]): single-limb spaces
    /// unrank in `u64`, two-limb spaces (clique-9/10 scale) in `u128`,
    /// and only wider spaces pay the exact [`Nat`] fallback with its
    /// tree flattening. On both fixed-width tiers each draw is a
    /// rejection-sampled rank plus the mixed-radix unrank appended
    /// straight into `out`'s buffers: once those are at capacity, a
    /// steady-state fill performs **zero heap allocations per draw**
    /// (asserted by `tests/alloc_counting.rs`).
    ///
    /// The RNG is consumed exactly as [`sample_batch`](Self::sample_batch)
    /// consumes it ([`Nat::random_below_u64`] and
    /// [`Nat::random_below_u128`] replay `random_below`'s draw sequence
    /// limb for limb), and large batches fan the unranking out in
    /// fixed-size chunks over the persistent worker pool — written into
    /// `out`'s own per-chunk shard batches and merged in draw order —
    /// so the batch content is bit-identical to `sample_batch`'s at
    /// every thread count, and parallel fills stay allocation-free in
    /// steady state too.
    ///
    /// # Panics
    /// Panics if `k > 0` and the space is empty.
    pub fn sample_batch_flat<R: Rng + ?Sized>(&self, rng: &mut R, k: usize, out: &mut PlanBatch) {
        assert!(
            k == 0 || !self.total().is_zero(),
            "cannot sample from an empty plan space"
        );
        out.start_fill();
        let inline = threadpool::num_threads() == 1 || k < 2 * Self::PAR_MIN_DRAWS;
        if let Some(fast) = self.counts.fast() {
            let total = self
                .total()
                .to_u64()
                .expect("the fast sidecar implies a single-limb total");
            if inline {
                // Inline fill: draw and unrank per plan, nothing but
                // `out`'s own (reused) buffers touched.
                let mut stack = std::mem::take(&mut out.stack);
                for _ in 0..k {
                    let rank = Nat::random_below_u64(rng, total);
                    self.unrank_flat_u64(fast, rank, out.ids_mut(), &mut stack);
                    out.finish_plan();
                }
                out.stack = stack;
                return;
            }
            // Parallel fill: ranks up front (same RNG order as above),
            // then fixed-size chunks unranked concurrently into `out`'s
            // persistent shards and merged in draw order. The chunk size
            // is independent of the worker count, so the merged content
            // never depends on it.
            let mut ranks = std::mem::take(&mut out.ranks);
            ranks.clear();
            ranks.extend((0..k).map(|_| Nat::random_below_u64(rng, total)));
            Self::fill_shards(k, out, |part, c| {
                part.start_fill();
                let mut stack = std::mem::take(&mut part.stack);
                let lo = c * Self::PAR_MIN_DRAWS;
                for &rank in &ranks[lo..(lo + Self::PAR_MIN_DRAWS).min(k)] {
                    self.unrank_flat_u64(fast, rank, part.ids_mut(), &mut stack);
                    part.finish_plan();
                }
                part.stack = stack;
            });
            out.ranks = ranks;
        } else if let Some(wide) = self.counts.wide() {
            // The u128 tier: same structure two limbs up.
            let total = self
                .total()
                .to_u128()
                .expect("the wide sidecar implies a two-limb total");
            if inline {
                let mut stack = std::mem::take(&mut out.stack_wide);
                for _ in 0..k {
                    let rank = Nat::random_below_u128(rng, total);
                    self.unrank_flat_u128(wide, rank, out.ids_mut(), &mut stack);
                    out.finish_plan();
                }
                out.stack_wide = stack;
                return;
            }
            let mut ranks = std::mem::take(&mut out.ranks_wide);
            ranks.clear();
            ranks.extend((0..k).map(|_| Nat::random_below_u128(rng, total)));
            Self::fill_shards(k, out, |part, c| {
                part.start_fill();
                let mut stack = std::mem::take(&mut part.stack_wide);
                let lo = c * Self::PAR_MIN_DRAWS;
                for &rank in &ranks[lo..(lo + Self::PAR_MIN_DRAWS).min(k)] {
                    self.unrank_flat_u128(wide, rank, part.ids_mut(), &mut stack);
                    part.finish_plan();
                }
                part.stack_wide = stack;
            });
            out.ranks_wide = ranks;
        } else {
            for plan in self.sample_batch(rng, k) {
                out.push_tree(&plan);
            }
        }
    }

    /// Fans a parallel flat fill out over `out`'s persistent shard
    /// batches. Chunk `c` always covers draws
    /// `[c·PAR_MIN_DRAWS, (c+1)·PAR_MIN_DRAWS)` — a fixed mapping
    /// independent of how the pool splits the chunk range across
    /// workers — and the shards merge into `out` in chunk order, so the
    /// result is identical at every thread count. Shards (and their
    /// unrank scratch) live in `out` and keep their capacity across
    /// fills, which is what makes the *parallel* steady state
    /// allocation-free, not just the inline one.
    fn fill_shards<F: Fn(&mut PlanBatch, usize) + Sync>(
        k: usize,
        out: &mut PlanBatch,
        fill_chunk: F,
    ) {
        let chunks = k.div_ceil(Self::PAR_MIN_DRAWS);
        let mut shards = std::mem::take(&mut out.shards);
        if shards.len() < chunks {
            shards.resize_with(chunks, PlanBatch::new);
        }
        struct Shards(*mut PlanBatch);
        unsafe impl Sync for Shards {}
        impl Shards {
            /// SAFETY: the caller must hold the only live access to
            /// shard `c` (here: `parallel_for` hands each index to
            /// exactly one worker) and `c` must be in bounds.
            #[allow(clippy::mut_from_ref)]
            unsafe fn shard(&self, c: usize) -> &mut PlanBatch {
                &mut *self.0.add(c)
            }
        }
        let base = Shards(shards.as_mut_ptr());
        threadpool::parallel_for(chunks, 1, |range| {
            for c in range {
                // SAFETY: `c < chunks ≤ shards.len()`, and `parallel_for`
                // hands each index to exactly one worker, so every shard
                // borrow is in bounds and exclusive.
                let part = unsafe { base.shard(c) };
                fill_chunk(part, c);
            }
        });
        for part in &shards[..chunks] {
            out.append_flat(part);
        }
        out.shards = shards;
    }

    /// Alias of [`sample_batch`](Self::sample_batch), kept for the
    /// pre-prepared-query API surface.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<PlanNode> {
        self.sample_batch(rng, k)
    }

    /// Biased baseline: pick an operator uniformly among the group's (or
    /// slot's) alternatives at every step, ignoring subtree counts.
    /// Returns `None` if the walk reaches an operator with an
    /// unsatisfiable slot (possible in pruned memos).
    pub fn sample_naive_walk<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<PlanNode> {
        self.naive_pick(rng, self.links.list(self.links.root_list()))
    }

    fn naive_pick<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        alternatives: &[DenseId],
    ) -> Option<PlanNode> {
        if alternatives.is_empty() {
            return None;
        }
        let v = alternatives[rng.gen_range(0..alternatives.len())];
        let children = self
            .links
            .slot_lists(v)
            .iter()
            .map(|&l| self.naive_pick(rng, self.links.list(l)))
            .collect::<Option<Vec<_>>>()?;
        Some(PlanNode {
            id: self.links.ids().phys(v),
            children,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::paper_example;
    use crate::PlanSpace;
    use plansample_bignum::Nat;
    use plansample_memo::validate_plan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn samples_are_valid_plans() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for plan in space.sample_many(&mut rng, 200) {
            assert!(validate_plan(&ex.memo, &ex.query, &plan).is_empty());
        }
    }

    #[test]
    fn uniform_sampler_covers_the_space_evenly() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let draws = 32_000usize;
        let mut freq: HashMap<u64, usize> = HashMap::new();
        for _ in 0..draws {
            let plan = space.sample(&mut rng);
            let r = space.rank(&plan).unwrap().to_u64().unwrap();
            *freq.entry(r).or_default() += 1;
        }
        assert_eq!(freq.len(), 32, "all 32 plans appear");
        // Expected 1000 per plan; chi-square with 31 dof, p=0.001
        // critical value ≈ 61.1.
        let expected = draws as f64 / 32.0;
        let chi2: f64 = (0..32u64)
            .map(|r| {
                let o = *freq.get(&r).unwrap_or(&0) as f64;
                (o - expected).powi(2) / expected
            })
            .sum();
        assert!(chi2 < 61.1, "chi-square {chi2} rejects uniformity");
    }

    #[test]
    fn naive_walk_is_measurably_biased() {
        // In the fixture, plan rank 16 (root 7.8 with first choices) is
        // reached by the naive walk with probability 1/2 · 1/3 · 1/2 ·
        // 1/2 · … while uniform gives 1/32; aggregate: the chi-square
        // statistic across all 32 plans must blow past the critical
        // value.
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let draws = 32_000usize;
        let mut freq: HashMap<u64, usize> = HashMap::new();
        for _ in 0..draws {
            let plan = space.sample_naive_walk(&mut rng).unwrap();
            let r = space.rank(&plan).unwrap().to_u64().unwrap();
            *freq.entry(r).or_default() += 1;
        }
        let expected = draws as f64 / 32.0;
        let chi2: f64 = (0..32u64)
            .map(|r| {
                let o = *freq.get(&r).unwrap_or(&0) as f64;
                (o - expected).powi(2) / expected
            })
            .sum();
        assert!(chi2 > 61.1, "naive walk unexpectedly uniform: chi2={chi2}");
    }

    #[test]
    fn flat_batch_matches_tree_batch_at_every_thread_count() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        assert!(space.counts().has_fast_path());
        let trees = {
            let mut rng = StdRng::seed_from_u64(11);
            space.sample_batch(&mut rng, 600)
        };
        for threads in [1, 2, 4] {
            let mut batch = crate::PlanBatch::new();
            let mut rng = StdRng::seed_from_u64(11);
            threadpool::with_threads(threads, || {
                space.sample_batch_flat(&mut rng, 600, &mut batch)
            });
            assert_eq!(batch.len(), 600);
            for (flat, tree) in batch.iter().zip(&trees) {
                assert_eq!(flat, tree.preorder_ids().as_slice(), "{threads} threads");
            }
        }
    }

    #[test]
    fn sampling_respects_the_seed() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let a: Vec<Nat> = {
            let mut rng = StdRng::seed_from_u64(1);
            space
                .sample_many(&mut rng, 10)
                .iter()
                .map(|p| space.rank(p).unwrap())
                .collect()
        };
        let b: Vec<Nat> = {
            let mut rng = StdRng::seed_from_u64(1);
            space
                .sample_many(&mut rng, 10)
                .iter()
                .map(|p| space.rank(p).unwrap())
                .collect()
        };
        assert_eq!(a, b);
    }
}
