//! Serving smoke test for the artifact store: a server with
//! `--artifact-dir` persists every preparation write-through; a restart
//! with `--warm` serves the same answers *bit-identically* without
//! re-optimizing; and a version-bumped artifact is refused at warm time
//! (the restarted server simply re-prepares — availability over reuse).

use plansample_serve::server::{self, ServerConfig};
use plansample_serve::{Client, Request, Response, Workload};
use std::fs;
use std::path::{Path, PathBuf};

const SQL: &str = "SELECT * FROM region r, nation n, supplier s \
                   WHERE n.n_regionkey = r.r_regionkey AND s.s_nationkey = n.n_nationkey";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plansample-warm-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path, warm: bool) -> ServerConfig {
    ServerConfig {
        reactors: 1,
        workers: 1,
        artifact_dir: Some(dir.to_path_buf()),
        warm,
        ..Default::default()
    }
}

/// The request battery whose replies must survive a restart unchanged.
fn battery() -> Vec<Request> {
    let workload = Workload::Sql(SQL.to_string());
    vec![
        Request::Count(workload.clone()),
        Request::Best(workload.clone()),
        Request::Unrank(workload.clone(), plansample_bignum::Nat::from(17u64)),
        Request::SampleBatch(workload, 42, 8),
    ]
}

fn stats(client: &mut Client) -> plansample_serve::StatsReply {
    match client.call(&Request::Stats).unwrap() {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    }
}

#[test]
fn warm_restart_serves_bit_identical_replies_without_reoptimizing() {
    let dir = temp_dir("roundtrip");

    // --- First life: prepare once, answer the battery, persist. ------
    let handle = server::start(config(&dir, false)).expect("first server starts");
    let mut client = Client::connect(handle.addr()).unwrap();
    let prepared = client
        .call(&Request::Prepare(Workload::Sql(SQL.to_string())))
        .unwrap();
    let Response::Prepared { cached, .. } = prepared else {
        panic!("expected Prepared, got {prepared:?}");
    };
    assert!(!cached, "first preparation is a cold miss");
    let first: Vec<Response> = battery()
        .iter()
        .map(|req| client.call(req).unwrap())
        .collect();
    for r in &first {
        assert!(!matches!(r, Response::Error { .. }), "got {r:?}");
    }
    drop(client);
    handle.stop();

    let artifacts: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("artifact dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "plan").unwrap_or(false))
        .collect();
    assert_eq!(artifacts.len(), 1, "write-through published one artifact");

    // --- Second life: warm from the store, answer identically. -------
    let handle = server::start(config(&dir, true)).expect("warmed server starts");
    let mut client = Client::connect(handle.addr()).unwrap();
    let s = stats(&mut client);
    assert_eq!(s.entries, 1, "warming admitted the artifact");
    assert_eq!(s.misses, 0, "warming is not a miss");

    let prepared = client
        .call(&Request::Prepare(Workload::Sql(SQL.to_string())))
        .unwrap();
    assert!(
        matches!(prepared, Response::Prepared { cached: true, .. }),
        "warmed entry must be a cache hit, got {prepared:?}"
    );
    let second: Vec<Response> = battery()
        .iter()
        .map(|req| client.call(req).unwrap())
        .collect();
    assert_eq!(
        first, second,
        "replies must be bit-identical across the restart"
    );

    let s = stats(&mut client);
    assert_eq!(s.misses, 0, "the warmed server never re-optimized");
    assert!(s.hits > battery().len() as u64);
    drop(client);
    handle.stop();

    // --- Third life: a version-bumped artifact is refused. -----------
    let path = &artifacts[0];
    let mut bytes = fs::read(path).unwrap();
    let bumped = plansample_artifact::FORMAT_VERSION + 1;
    bytes[8..12].copy_from_slice(&bumped.to_le_bytes());
    fs::write(path, &bytes).unwrap();

    let handle = server::start(config(&dir, true)).expect("server starts past a bad artifact");
    let mut client = Client::connect(handle.addr()).unwrap();
    let s = stats(&mut client);
    assert_eq!(s.entries, 0, "a future-version artifact must not warm");
    assert!(
        path.with_extension("quarantined").exists(),
        "the refused artifact is quarantined for inspection"
    );
    // Serving is unaffected: the query just re-prepares…
    let prepared = client
        .call(&Request::Prepare(Workload::Sql(SQL.to_string())))
        .unwrap();
    assert!(matches!(prepared, Response::Prepared { cached: false, .. }));
    let third: Vec<Response> = battery()
        .iter()
        .map(|req| client.call(req).unwrap())
        .collect();
    assert_eq!(first, third, "re-prepared replies still match");
    drop(client);
    handle.stop();

    // …and the re-preparation re-published a current-version artifact.
    let healed = fs::read(&artifacts[0]).expect("artifact re-published");
    assert_eq!(
        u32::from_le_bytes(healed[8..12].try_into().unwrap()),
        plansample_artifact::FORMAT_VERSION
    );
    let _ = fs::remove_dir_all(&dir);
}
