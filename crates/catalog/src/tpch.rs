//! The TPC-H schema with scale-factor-1 statistics.
//!
//! The paper's evaluation (§5, Table 1, Figure 4) runs the join-intensive
//! TPC-H queries Q5, Q7, Q8, Q9 against SQL Server's view of a TPC-H
//! database. We reproduce that view: official SF-1 row counts and
//! realistic per-column NDVs, plus ordered primary-key indexes (and a few
//! clustered foreign-key indexes) so the optimizer has the index-scan and
//! merge-join alternatives that make the plan space interesting.
//!
//! Only the columns the reproduced queries touch are modelled; adding more
//! would inflate scan schemas without adding any plan alternatives.

use crate::{table, Catalog, ColType, TableId};

/// Table ids for the TPC-H catalog, in the order [`catalog`] defines them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchTables {
    /// `region` (5 rows at SF-1).
    pub region: TableId,
    /// `nation` (25 rows).
    pub nation: TableId,
    /// `supplier` (10 000 rows).
    pub supplier: TableId,
    /// `customer` (150 000 rows).
    pub customer: TableId,
    /// `part` (200 000 rows).
    pub part: TableId,
    /// `partsupp` (800 000 rows).
    pub partsupp: TableId,
    /// `orders` (1 500 000 rows).
    pub orders: TableId,
    /// `lineitem` (6 000 000 rows).
    pub lineitem: TableId,
}

/// Builds the TPC-H catalog at a given scale factor (1.0 = SF-1 statistics).
///
/// Scaling multiplies row counts and key NDVs; small dimension tables
/// (region, nation) and low-cardinality attribute NDVs are fixed by the
/// TPC-H specification and do not scale.
pub fn catalog_at(sf: f64) -> (Catalog, TpchTables) {
    assert!(sf > 0.0, "scale factor must be positive");
    let scale = |n: u64| -> u64 { ((n as f64 * sf).round() as u64).max(1) };
    let mut cat = Catalog::new();

    let region = cat
        .add_table(
            table("region", 5)
                .col("r_regionkey", ColType::Int, 5)
                .col("r_name", ColType::Str, 5)
                .index_on(0)
                .build(),
        )
        .expect("fresh catalog");

    let nation = cat
        .add_table(
            table("nation", 25)
                .col("n_nationkey", ColType::Int, 25)
                .col("n_name", ColType::Str, 25)
                .col("n_regionkey", ColType::Int, 5)
                .index_on(0)
                .build(),
        )
        .expect("fresh catalog");

    let supplier = cat
        .add_table(
            table("supplier", scale(10_000))
                .col("s_suppkey", ColType::Int, scale(10_000))
                .col("s_name", ColType::Str, scale(10_000))
                .col("s_nationkey", ColType::Int, 25)
                .col("s_acctbal", ColType::Int, scale(9_955))
                .index_on(0)
                .build(),
        )
        .expect("fresh catalog");

    let customer = cat
        .add_table(
            table("customer", scale(150_000))
                .col("c_custkey", ColType::Int, scale(150_000))
                .col("c_name", ColType::Str, scale(150_000))
                .col("c_nationkey", ColType::Int, 25)
                .col("c_mktsegment", ColType::Str, 5)
                .col("c_acctbal", ColType::Int, scale(140_187))
                .index_on(0)
                .build(),
        )
        .expect("fresh catalog");

    let part = cat
        .add_table(
            table("part", scale(200_000))
                .col("p_partkey", ColType::Int, scale(200_000))
                .col("p_name", ColType::Str, scale(199_997))
                .col("p_type", ColType::Str, 150)
                .col("p_size", ColType::Int, 50)
                .col("p_brand", ColType::Str, 25)
                .col("p_retailprice", ColType::Int, scale(20_899))
                .index_on(0)
                .build(),
        )
        .expect("fresh catalog");

    let partsupp = cat
        .add_table(
            table("partsupp", scale(800_000))
                .col("ps_partkey", ColType::Int, scale(200_000))
                .col("ps_suppkey", ColType::Int, scale(10_000))
                .col("ps_availqty", ColType::Int, 9_999)
                .col("ps_supplycost", ColType::Int, scale(99_865))
                .index_on(0)
                .index_on(1)
                .build(),
        )
        .expect("fresh catalog");

    let orders = cat
        .add_table(
            table("orders", scale(1_500_000))
                .col("o_orderkey", ColType::Int, scale(1_500_000))
                // TPC-H populates orders for only 2/3 of customers.
                .col("o_custkey", ColType::Int, scale(100_000))
                .col("o_orderdate", ColType::Int, 2_406)
                .col("o_totalprice", ColType::Int, scale(1_464_556))
                .col("o_orderstatus", ColType::Str, 3)
                .index_on(0)
                .index_on(1)
                .build(),
        )
        .expect("fresh catalog");

    let lineitem = cat
        .add_table(
            table("lineitem", scale(6_000_000))
                .col("l_orderkey", ColType::Int, scale(1_500_000))
                .col("l_partkey", ColType::Int, scale(200_000))
                .col("l_suppkey", ColType::Int, scale(10_000))
                .col("l_quantity", ColType::Int, 50)
                .col("l_extendedprice", ColType::Int, scale(933_900))
                .col("l_discount", ColType::Int, 11)
                .col("l_shipdate", ColType::Int, 2_526)
                .index_on(0)
                .index_on(2)
                .build(),
        )
        .expect("fresh catalog");

    (
        cat,
        TpchTables {
            region,
            nation,
            supplier,
            customer,
            part,
            partsupp,
            orders,
            lineitem,
        },
    )
}

/// SF-1 TPC-H catalog, the configuration used by the paper's experiments.
pub fn catalog() -> (Catalog, TpchTables) {
    catalog_at(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf1_row_counts_match_spec() {
        let (cat, t) = catalog();
        assert_eq!(cat.table(t.region).row_count, 5);
        assert_eq!(cat.table(t.nation).row_count, 25);
        assert_eq!(cat.table(t.supplier).row_count, 10_000);
        assert_eq!(cat.table(t.customer).row_count, 150_000);
        assert_eq!(cat.table(t.part).row_count, 200_000);
        assert_eq!(cat.table(t.partsupp).row_count, 800_000);
        assert_eq!(cat.table(t.orders).row_count, 1_500_000);
        assert_eq!(cat.table(t.lineitem).row_count, 6_000_000);
        assert_eq!(cat.len(), 8);
    }

    #[test]
    fn primary_keys_are_indexed() {
        let (cat, t) = catalog();
        for (tid, pk) in [
            (t.region, "r_regionkey"),
            (t.nation, "n_nationkey"),
            (t.supplier, "s_suppkey"),
            (t.customer, "c_custkey"),
            (t.part, "p_partkey"),
            (t.orders, "o_orderkey"),
            (t.lineitem, "l_orderkey"),
        ] {
            let def = cat.table(tid);
            let col = def.column_index(pk).unwrap();
            assert!(def.has_index_on(col), "{pk} should be indexed");
        }
    }

    #[test]
    fn key_ndvs_equal_referenced_cardinalities() {
        let (cat, t) = catalog();
        let li = cat.table(t.lineitem);
        assert_eq!(
            li.column(li.column_index("l_orderkey").unwrap()).ndv,
            1_500_000
        );
        assert_eq!(li.column(li.column_index("l_suppkey").unwrap()).ndv, 10_000);
        let nat = cat.table(t.nation);
        assert_eq!(nat.column(nat.column_index("n_regionkey").unwrap()).ndv, 5);
    }

    #[test]
    fn scaling_scales_keys_but_not_small_domains() {
        let (cat, t) = catalog_at(0.01);
        assert_eq!(cat.table(t.lineitem).row_count, 60_000);
        assert_eq!(cat.table(t.region).row_count, 5);
        let li = cat.table(t.lineitem);
        // l_quantity has a fixed 1..50 domain regardless of SF.
        assert_eq!(li.column(li.column_index("l_quantity").unwrap()).ndv, 50);
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn zero_scale_rejected() {
        catalog_at(0.0);
    }

    #[test]
    fn tiny_scale_clamps_to_one_row() {
        let (cat, t) = catalog_at(1e-9);
        assert!(cat.table(t.lineitem).row_count >= 1);
    }
}
