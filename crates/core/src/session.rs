//! The `OPTION (USEPLAN n)` workflow as a library API (§4).
//!
//! A [`Session`] bundles a catalog, a database, and an optimizer
//! configuration. [`Session::execute`] runs a query with the
//! optimizer's plan; [`Session::execute_plan`] runs it with *plan
//! number n* — the paper's SQL-level `OPTION (USEPLAN 8)` hook, which
//! the `plansample-sql` crate exposes through actual SQL syntax.
//! Every outcome reports the plan's cost scaled to the optimum (the
//! paper's cost unit in §5).

use crate::lower::lower;
use crate::validate::ValidateError;
use crate::{PlanSpace, SpaceError};
use plansample_bignum::Nat;
use plansample_catalog::Catalog;
use plansample_exec::{Database, ExecError, Table};
use plansample_memo::PlanNode;
use plansample_optimizer::{optimize, OptError, Optimized, OptimizerConfig};
use plansample_query::QuerySpec;
use std::fmt;

/// Errors from session operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// Optimization failed.
    Opt(OptError),
    /// Rank machinery failed (e.g. USEPLAN number out of range).
    Space(SpaceError),
    /// Execution failed.
    Exec(ExecError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Opt(e) => write!(f, "{e}"),
            SessionError::Space(e) => write!(f, "{e}"),
            SessionError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<OptError> for SessionError {
    fn from(e: OptError) -> Self {
        SessionError::Opt(e)
    }
}

impl From<SpaceError> for SessionError {
    fn from(e: SpaceError) -> Self {
        SessionError::Space(e)
    }
}

impl From<ExecError> for SessionError {
    fn from(e: ExecError) -> Self {
        SessionError::Exec(e)
    }
}

impl From<ValidateError> for SessionError {
    fn from(e: ValidateError) -> Self {
        match e {
            ValidateError::Space(e) => SessionError::Space(e),
            ValidateError::Exec(e) => SessionError::Exec(e),
        }
    }
}

/// Result of executing a query through a session.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The result rows.
    pub table: Table,
    /// Which plan ran: `None` = the optimizer's choice, `Some(rank)` =
    /// `USEPLAN rank`.
    pub rank: Option<Nat>,
    /// Total number of plans in the query's space.
    pub space_size: Nat,
    /// The executed plan's total cost.
    pub plan_cost: f64,
    /// Cost scaled so the optimizer's plan is 1.0 (the paper's unit).
    pub scaled_cost: f64,
    /// Rendered plan tree for display.
    pub plan_text: String,
}

/// A query-processing session: catalog + data + optimizer settings.
#[derive(Debug)]
pub struct Session {
    catalog: Catalog,
    db: Database,
    config: OptimizerConfig,
}

impl Session {
    /// Creates a session with default optimizer settings.
    pub fn new(catalog: Catalog, db: Database) -> Self {
        Session::with_config(catalog, db, OptimizerConfig::default())
    }

    /// Creates a session with explicit optimizer settings.
    pub fn with_config(catalog: Catalog, db: Database, config: OptimizerConfig) -> Self {
        Session {
            catalog,
            db,
            config,
        }
    }

    /// The session's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The session's database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    fn optimize(&self, query: &QuerySpec) -> Result<Optimized, SessionError> {
        Ok(optimize(&self.catalog, query, &self.config)?)
    }

    /// Counts the plans the optimizer considers for `query` — the
    /// paper's "build the MEMO structure, count the possible plans".
    pub fn count_plans(&self, query: &QuerySpec) -> Result<Nat, SessionError> {
        let optimized = self.optimize(query)?;
        let space = PlanSpace::build(&optimized.memo, query)?;
        Ok(space.total().clone())
    }

    /// Executes `query` with the optimizer's chosen plan.
    pub fn execute(&self, query: &QuerySpec) -> Result<QueryOutcome, SessionError> {
        let optimized = self.optimize(query)?;
        let space = PlanSpace::build(&optimized.memo, query)?;
        self.run_plan(query, &optimized, &space, &optimized.best_plan, None)
    }

    /// Executes `query` with plan number `rank` — `OPTION (USEPLAN rank)`.
    pub fn execute_plan(
        &self,
        query: &QuerySpec,
        rank: &Nat,
    ) -> Result<QueryOutcome, SessionError> {
        let optimized = self.optimize(query)?;
        let space = PlanSpace::build(&optimized.memo, query)?;
        let plan = space.unrank(rank)?;
        self.run_plan(query, &optimized, &space, &plan, Some(rank.clone()))
    }

    fn run_plan(
        &self,
        query: &QuerySpec,
        optimized: &Optimized,
        space: &PlanSpace<'_>,
        plan: &PlanNode,
        rank: Option<Nat>,
    ) -> Result<QueryOutcome, SessionError> {
        let exec = lower(&optimized.memo, query, &self.catalog, plan);
        let table = exec.execute(&self.db)?;
        let plan_cost = plan.total_cost(&optimized.memo);
        Ok(QueryOutcome {
            table,
            rank,
            space_size: space.total().clone(),
            plan_cost,
            scaled_cost: plan_cost / optimized.best_cost,
            plan_text: plan.render(&optimized.memo),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_catalog::tpch;
    use plansample_datagen::MicroScale;

    fn session() -> Session {
        let (catalog, tables) = tpch::catalog();
        let db = plansample_datagen::generate(&catalog, &tables, &MicroScale::tiny(), 11);
        Session::new(catalog, db)
    }

    #[test]
    fn optimizer_plan_executes_q5() {
        let s = session();
        let q = plansample_query::tpch::q5(s.catalog());
        let out = s.execute(&q).unwrap();
        assert!(out.rank.is_none());
        assert!(
            (out.scaled_cost - 1.0).abs() < 1e-9,
            "optimizer plan is the 1.0 reference"
        );
        assert!(out.plan_text.contains("Agg"));
        assert!(out.space_size.to_f64() > 1e6);
    }

    #[test]
    fn useplan_reproduces_specific_plans() {
        let s = session();
        let q = plansample_query::tpch::q5(s.catalog());
        let reference = s.execute(&q).unwrap();
        for rank in [0u64, 8, 12345] {
            let out = s.execute_plan(&q, &Nat::from(rank)).unwrap();
            assert_eq!(out.rank, Some(Nat::from(rank)));
            assert!(
                out.table.multiset_eq(&reference.table),
                "USEPLAN {rank} must agree with the optimizer's plan"
            );
            assert!(out.scaled_cost >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn useplan_out_of_range_is_an_error() {
        let s = session();
        let q = plansample_query::tpch::q6(s.catalog());
        let n = s.count_plans(&q).unwrap();
        assert!(matches!(
            s.execute_plan(&q, &n),
            Err(SessionError::Space(SpaceError::RankOutOfRange { .. }))
        ));
        let mut last = n;
        last.decr();
        assert!(s.execute_plan(&q, &last).is_ok());
    }

    #[test]
    fn count_plans_matches_space() {
        let s = session();
        let q = plansample_query::tpch::q6(s.catalog());
        // Q6: lineitem scan (2 alternatives incl. sorts etc.) + agg pair.
        let n = s.count_plans(&q).unwrap();
        assert!(n.to_u64().unwrap() >= 4);
    }
}
