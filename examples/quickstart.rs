//! Quickstart: count, enumerate, unrank, rank, and sample execution
//! plans for a small join query.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use plansample::PlanSpace;
use plansample_bignum::Nat;
use plansample_catalog::{table, Catalog, ColType};
use plansample_optimizer::{optimize, OptimizerConfig};
use plansample_query::QueryBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A catalog: two tables, an index on each key.
    let mut catalog = Catalog::new();
    catalog
        .add_table(
            table("orders", 10_000)
                .col("o_id", ColType::Int, 10_000)
                .col("o_customer", ColType::Int, 500)
                .index_on(0)
                .build(),
        )
        .unwrap();
    catalog
        .add_table(
            table("items", 40_000)
                .col("i_order", ColType::Int, 10_000)
                .col("i_price", ColType::Int, 2_000)
                .index_on(0)
                .build(),
        )
        .unwrap();

    // 2. A query: orders ⋈ items.
    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("orders", Some("o")).unwrap();
    qb.rel("items", Some("i")).unwrap();
    qb.join(("o", "o_id"), ("i", "i_order")).unwrap();
    let query = qb.build().unwrap();

    // 3. Optimize: the memo now encodes EVERY plan the optimizer
    //    considered, not just the winner.
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    println!("optimizer's plan (cost {:.0}):", optimized.best_cost);
    println!("{}", optimized.best_plan.render(&optimized.memo));

    // 4. Build the plan space: materialized links (§3.1) + counts (§3.2).
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    println!(
        "the memo encodes {} complete execution plans\n",
        space.total()
    );

    // 5. Enumerate the whole space (it is small here).
    for (i, plan) in space.enumerate().enumerate() {
        let cost = plan.total_cost(&optimized.memo);
        let ops: Vec<String> = plan
            .preorder_ids()
            .iter()
            .map(|id| format!("{}[{id}]", optimized.memo.phys(*id).op.name()))
            .collect();
        println!("plan {i:>2}: cost {cost:>8.0}  {}", ops.join(" "));
    }

    // 6. Unrank / rank are a bijection.
    let plan7 = space.unrank(&Nat::from(7u64)).unwrap();
    assert_eq!(space.rank(&plan7).unwrap(), Nat::from(7u64));
    println!("\nplan number 7, reconstructed by unranking:");
    println!("{}", plan7.render(&optimized.memo));

    // 7. Uniform sampling: every plan with probability exactly 1/N.
    let mut rng = StdRng::seed_from_u64(1);
    let sample = space.sample(&mut rng);
    println!(
        "uniformly sampled plan: number {} of {}",
        space.rank(&sample).unwrap(),
        space.total()
    );
}
