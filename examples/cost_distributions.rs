//! §5 workflow: the cost distribution of a real search space.
//!
//! Prepares TPC-H Q5 against SF-1 statistics once, draws a uniform
//! batch of plan samples, scales costs to the optimum, and reports the
//! Table 1 statistics plus a Figure 4-style histogram of the lower 50%
//! and a Gamma fit of the full distribution.
//!
//! ```text
//! cargo run --release --example cost_distributions
//! ```

use plansample::PreparedQuery;
use plansample_optimizer::OptimizerConfig;
use plansample_stats::{fit_gamma, Histogram, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLES: usize = 2_000;

fn main() {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = plansample_query::tpch::q5(&catalog);
    // One optimization pass; every measurement below reuses its memo.
    let prepared = PreparedQuery::prepare(&catalog, &query, &OptimizerConfig::default()).unwrap();

    println!(
        "TPC-H Q5: {} relations, {} physical operators in the memo, {} complete plans",
        query.relations.len(),
        prepared.memo().num_physical(),
        prepared.total()
    );

    let mut rng = StdRng::seed_from_u64(5);
    let costs: Vec<f64> = prepared
        .sample_batch(&mut rng, SAMPLES)
        .iter()
        .map(|plan| prepared.scaled_cost(plan))
        .collect();

    let s = Summary::of(&costs);
    println!("\n{SAMPLES} uniform samples, costs scaled to the optimum (1.0):");
    println!("  min  {:>12.2}", s.min());
    println!("  mean {:>12.1}", s.mean());
    println!("  max  {:>12.1}", s.max());
    println!(
        "  within  2x of optimum: {:>6.2}%",
        100.0 * s.fraction_below(2.0)
    );
    println!(
        "  within 10x of optimum: {:>6.2}%",
        100.0 * s.fraction_below(10.0)
    );

    println!("\nlower 50% of sampled costs (the paper's Figure 4 view):");
    let hist = Histogram::lower_fraction(&costs, 0.5, 20);
    print!("{}", hist.render(40));

    let fit = fit_gamma(&costs);
    println!(
        "\ngamma fit over the full sample: shape k = {:.3}, scale = {:.1}",
        fit.shape, fit.scale
    );
    println!(
        "the paper observed asymmetric, exponential-resembling distributions \
         (Gamma shape ≈ 1) concentrated near the optimum."
    );

    // Analytic operator mix of a uniform plan (no sampling involved):
    // exact expected occurrences derived from the sub-space counts.
    println!("\nexpected operator mix of one uniformly drawn plan (computed, not sampled):");
    for (name, freq) in prepared.space().operator_mix() {
        println!("  {name:<15} {freq:>6.3}");
    }
    println!(
        "  total {:>17.3} operators per plan on average",
        prepared.space().expected_plan_size()
    );
}
