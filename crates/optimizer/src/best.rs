//! Best-plan extraction and cost-bound pruning.
//!
//! Every physical expression's *total* cost is its local cost plus, for
//! each child slot, the minimum total cost among the slot's eligible
//! children — a dynamic program over the (acyclic) plan graph. The best
//! plan of the memo is the cheapest expression of the root group with its
//! argmin children expanded recursively; this is "the most cost effective
//! operator in the root group" the paper extracts (§2) and the optimum
//! all sampled costs are normalized to (§5).

use plansample_memo::{eligible_children, GroupId, Memo, PhysId, PlanNode};
use plansample_query::QuerySpec;

/// Memoized total costs for every physical expression.
#[derive(Debug)]
pub struct Totals {
    by_group: Vec<Vec<f64>>,
}

impl Totals {
    /// Total cost of the sub-plan space rooted in `id` (infinite when
    /// some child slot has no eligible provider).
    pub fn total(&self, id: PhysId) -> f64 {
        self.by_group[id.group.0 as usize][id.index]
    }

    /// Cheapest total in `group`, infinite for empty/unsatisfiable groups.
    pub fn group_best(&self, group: GroupId) -> f64 {
        self.by_group[group.0 as usize]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

/// Computes total costs for all expressions.
pub fn compute_totals(memo: &Memo, query: &QuerySpec) -> Totals {
    let mut by_group: Vec<Vec<Option<f64>>> = memo
        .groups()
        .map(|g| vec![None; g.physical.len()])
        .collect();
    for group in memo.groups() {
        for (id, _) in group.phys_iter() {
            total_rec(memo, query, id, &mut by_group);
        }
    }
    Totals {
        by_group: by_group
            .into_iter()
            .map(|v| v.into_iter().map(|c| c.expect("all visited")).collect())
            .collect(),
    }
}

fn total_rec(memo: &Memo, query: &QuerySpec, id: PhysId, cache: &mut [Vec<Option<f64>>]) -> f64 {
    if let Some(c) = cache[id.group.0 as usize][id.index] {
        return c;
    }
    let expr = memo.phys(id);
    let mut total = expr.local_cost;
    for slot in expr.child_slots(id.group) {
        let best = eligible_children(memo, query, &slot)
            .into_iter()
            .map(|child| total_rec(memo, query, child, cache))
            .fold(f64::INFINITY, f64::min);
        total += best; // INFINITY when the slot is unsatisfiable
    }
    cache[id.group.0 as usize][id.index] = Some(total);
    total
}

/// Extracts the cheapest complete plan rooted in the memo's root group.
/// Returns `None` when no finite-cost plan exists (cannot happen for
/// memos produced by the optimizer pipeline).
pub fn best_plan(memo: &Memo, query: &QuerySpec, totals: &Totals) -> Option<(PlanNode, f64)> {
    let root = memo.group(memo.root());
    let (best_id, _) = root
        .phys_iter()
        .map(|(id, _)| (id, totals.total(id)))
        .filter(|(_, c)| c.is_finite())
        .min_by(|a, b| a.1.total_cmp(&b.1))?;
    let plan = expand(memo, query, totals, best_id);
    let cost = totals.total(best_id);
    Some((plan, cost))
}

fn expand(memo: &Memo, query: &QuerySpec, totals: &Totals, id: PhysId) -> PlanNode {
    let expr = memo.phys(id);
    let children = expr
        .child_slots(id.group)
        .iter()
        .map(|slot| {
            let child = eligible_children(memo, query, slot)
                .into_iter()
                .min_by(|a, b| totals.total(*a).total_cmp(&totals.total(*b)))
                .expect("finite-cost parent implies satisfiable slots");
            expand(memo, query, totals, child)
        })
        .collect();
    PlanNode { id, children }
}

/// Cost-bound pruning (the `ablation_pruning` experiment): returns a copy of
/// the memo where each group keeps only expressions whose total cost is
/// within `keep_factor` of the group's best. `keep_factor = 1.0` keeps
/// only cost-optimal expressions; larger factors keep near-optimal ones.
///
/// This emulates the search-time "cost based pruning heuristic" the
/// paper describes (§2) — and motivates its advice that, for testing,
/// "it is useful to have the optimizer keep each alternative generated".
pub fn prune(memo: &Memo, query: &QuerySpec, keep_factor: f64) -> Memo {
    assert!(
        keep_factor >= 1.0,
        "keep_factor below 1.0 would drop the best plan"
    );
    let totals = compute_totals(memo, query);
    let mut pruned = Memo::new();
    for group in memo.groups() {
        let gid = pruned.add_group(group.key);
        debug_assert_eq!(gid, group.id);
        for op in &group.logical {
            pruned.add_logical(gid, op.clone());
        }
        let best = totals.group_best(group.id);
        for (id, expr) in group.phys_iter() {
            let t = totals.total(id);
            if t.is_finite() && t <= best * keep_factor {
                pruned.add_physical(gid, expr.clone());
            }
        }
    }
    pruned.set_root(memo.root());
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_bottom_up;
    use crate::implement::{add_enforcers, implement_all};
    use crate::CostModel;
    use plansample_catalog::{table, Catalog, ColType};
    use plansample_memo::validate_plan;
    use plansample_query::QueryBuilder;

    fn pipeline(cat: &Catalog, q: &QuerySpec) -> Memo {
        let mut memo = Memo::new();
        explore_bottom_up(q, false, &mut memo).unwrap();
        let cost = CostModel::default();
        implement_all(q, cat, &cost, true, true, &mut memo);
        add_enforcers(q, cat, &cost, &mut memo);
        memo
    }

    use plansample_query::QuerySpec;

    fn two_rel() -> (Catalog, QuerySpec) {
        let mut cat = Catalog::new();
        cat.add_table(
            table("a", 1000)
                .col("k", ColType::Int, 1000)
                .index_on(0)
                .build(),
        )
        .unwrap();
        cat.add_table(table("b", 10).col("k", ColType::Int, 10).build())
            .unwrap();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("a", None).unwrap();
        qb.rel("b", None).unwrap();
        qb.join(("a", "k"), ("b", "k")).unwrap();
        let q = qb.build().unwrap();
        (cat, q)
    }

    #[test]
    fn totals_are_finite_for_all_expressions() {
        let (cat, q) = two_rel();
        let memo = pipeline(&cat, &q);
        let totals = compute_totals(&memo, &q);
        for group in memo.groups() {
            for (id, _) in group.phys_iter() {
                assert!(totals.total(id).is_finite(), "{id} should be completable");
            }
        }
    }

    #[test]
    fn best_plan_is_valid_and_cheapest() {
        let (cat, q) = two_rel();
        let memo = pipeline(&cat, &q);
        let totals = compute_totals(&memo, &q);
        let (plan, cost) = best_plan(&memo, &q, &totals).unwrap();
        assert!(validate_plan(&memo, &q, &plan).is_empty());
        assert!((plan.total_cost(&memo) - cost).abs() < 1e-9);
        // no expression in the root group beats it
        for (id, _) in memo.group(memo.root()).phys_iter() {
            assert!(totals.total(id) >= cost - 1e-9);
        }
    }

    #[test]
    fn totals_compose_over_slots() {
        let (cat, q) = two_rel();
        let memo = pipeline(&cat, &q);
        let totals = compute_totals(&memo, &q);
        // For every expression: total == local + sum of min over slots.
        for group in memo.groups() {
            for (id, expr) in group.phys_iter() {
                let expected: f64 = expr.local_cost
                    + expr
                        .child_slots(id.group)
                        .iter()
                        .map(|s| {
                            plansample_memo::eligible_children(&memo, &q, s)
                                .into_iter()
                                .map(|c| totals.total(c))
                                .fold(f64::INFINITY, f64::min)
                        })
                        .sum::<f64>();
                assert!((totals.total(id) - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn pruning_keeps_best_and_shrinks() {
        let (cat, q) = two_rel();
        let memo = pipeline(&cat, &q);
        let totals = compute_totals(&memo, &q);
        let (_, best_cost) = best_plan(&memo, &q, &totals).unwrap();

        let pruned = prune(&memo, &q, 1.0);
        assert!(pruned.num_physical() < memo.num_physical());
        assert_eq!(pruned.num_groups(), memo.num_groups());
        let ptotals = compute_totals(&pruned, &q);
        let (pplan, pcost) = best_plan(&pruned, &q, &ptotals).unwrap();
        assert!(
            (pcost - best_cost).abs() < 1e-9,
            "pruning preserves the optimum"
        );
        assert!(validate_plan(&pruned, &q, &pplan).is_empty());
    }

    #[test]
    fn looser_factor_keeps_more() {
        let (cat, q) = two_rel();
        let memo = pipeline(&cat, &q);
        let tight = prune(&memo, &q, 1.0);
        let loose = prune(&memo, &q, 100.0);
        assert!(loose.num_physical() >= tight.num_physical());
        assert!(loose.num_physical() <= memo.num_physical());
    }

    #[test]
    #[should_panic(expected = "keep_factor")]
    fn pruning_factor_below_one_rejected() {
        let (cat, q) = two_rel();
        let memo = pipeline(&cat, &q);
        prune(&memo, &q, 0.5);
    }

    #[test]
    fn best_plan_prefers_cheap_join_order() {
        // b has 10 rows, a has 1000: hash join should build on the small
        // side or NLJ with tiny inner; either way cost well below the
        // reverse NLJ.
        let (cat, q) = two_rel();
        let memo = pipeline(&cat, &q);
        let totals = compute_totals(&memo, &q);
        let (plan, cost) = best_plan(&memo, &q, &totals).unwrap();
        let worst = memo
            .group(memo.root())
            .phys_iter()
            .map(|(id, _)| totals.total(id))
            .fold(0.0f64, f64::max);
        assert!(cost < worst, "best {cost} vs worst {worst}");
        assert!(plan.size() >= 3);
    }
}
