//! Targeted (sub-space) enumeration and sampling.
//!
//! §1 of the paper: "Starting from a query [with] specific properties
//! … an 'area' of the optimizer and execution code is targeted and
//! exercised in a variety of combinations." Beyond whole-space
//! operations, the counts support the same bijection for the sub-space
//! of plans *rooted in a chosen expression*: `N(v)` plans, ranks
//! `0 … N(v)-1`. This lets a tester aim at, say, exactly the plans whose
//! top join is a merge join, with uniform coverage inside that slice.

use crate::{PlanSpace, SpaceError};
use plansample_bignum::Nat;
use plansample_memo::{PhysId, PlanNode};
use rand::Rng;

impl PlanSpace {
    /// Builds plan number `rank` *within the sub-space rooted at `v`*
    /// (`rank < count_rooted(v)`). The root of the result is always `v`.
    pub fn unrank_rooted(&self, v: PhysId, rank: &Nat) -> Result<PlanNode, SpaceError> {
        if rank >= self.count_rooted(v) {
            return Err(SpaceError::RankOutOfRange {
                rank: rank.clone(),
                total: self.count_rooted(v).clone(),
            });
        }
        Ok(self.unrank_expr(self.links.ids().dense(v), rank.clone()))
    }

    /// Uniform sample from the sub-space rooted at `v`.
    ///
    /// # Panics
    /// Panics when the sub-space is empty (`count_rooted(v) == 0`).
    pub fn sample_rooted<R: Rng + ?Sized>(&self, rng: &mut R, v: PhysId) -> PlanNode {
        let n = self.count_rooted(v);
        assert!(!n.is_zero(), "expression {v} roots no complete plan");
        let rank = Nat::random_below(rng, n);
        self.unrank_expr(self.links.ids().dense(v), rank)
    }

    /// The rank of `plan` within the sub-space rooted at its own root
    /// expression (inverse of [`unrank_rooted`](Self::unrank_rooted)).
    pub fn rank_rooted(&self, plan: &PlanNode) -> Result<Nat, SpaceError> {
        self.rank_expr(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::PlanSpace;
    use plansample_memo::validate_plan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rooted_unranking_is_a_bijection_per_expression() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        for (v, expect) in [
            (ex.merge_join_ab, 2u64),
            (ex.hash_join_ab, 6),
            (ex.root_c_ab, 16),
            (ex.sort_a, 1),
        ] {
            assert_eq!(space.count_rooted(v).to_u64(), Some(expect));
            let mut seen = std::collections::HashSet::new();
            for r in 0..expect {
                let plan = space.unrank_rooted(v, &Nat::from(r)).unwrap();
                assert_eq!(plan.id, v, "root is pinned");
                assert!(validate_plan(&ex.memo, &ex.query, &plan).is_empty());
                assert_eq!(space.rank_rooted(&plan).unwrap(), Nat::from(r));
                assert!(seen.insert(format!("{:?}", plan.preorder_ids())));
            }
            assert!(space.unrank_rooted(v, &Nat::from(expect)).is_err());
        }
    }

    #[test]
    fn rooted_sampling_targets_the_chosen_operator() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let plan = space.sample_rooted(&mut rng, ex.merge_join_ab);
            assert_eq!(plan.id, ex.merge_join_ab);
            // Plans under the merge join use only sorted providers.
            assert_ne!(plan.children[0].id, ex.table_scan_a);
        }
    }

    #[test]
    fn rooted_sampling_covers_the_subspace_uniformly() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut freq = [0usize; 6];
        let draws = 6000;
        for _ in 0..draws {
            let plan = space.sample_rooted(&mut rng, ex.hash_join_ab);
            let r = space.rank_rooted(&plan).unwrap().to_u64().unwrap() as usize;
            freq[r] += 1;
        }
        // Chi-square, 5 dof, p=0.001 critical ≈ 20.5.
        let expected = draws as f64 / 6.0;
        let chi2: f64 = freq
            .iter()
            .map(|&o| (o as f64 - expected).powi(2) / expected)
            .sum();
        assert!(chi2 < 20.5, "chi2 {chi2}: {freq:?}");
    }

    #[test]
    #[should_panic(expected = "roots no complete plan")]
    fn sampling_a_dead_subspace_panics() {
        // Build a memo where a merge join is dead (no sorted providers).
        use plansample_catalog::{table, ColType};
        use plansample_memo::{GroupKey, Memo, PhysicalExpr, PhysicalOp};
        use plansample_query::{ColRef, QueryBuilder, RelId, RelSet};

        let mut catalog = plansample_catalog::Catalog::new();
        catalog
            .add_table(table("a", 5).col("k", ColType::Int, 5).build())
            .unwrap();
        catalog
            .add_table(table("b", 5).col("k", ColType::Int, 5).build())
            .unwrap();
        let mut qb = QueryBuilder::new(&catalog);
        qb.rel("a", None).unwrap();
        qb.rel("b", None).unwrap();
        qb.join(("a", "k"), ("b", "k")).unwrap();
        let query = qb.build().unwrap();

        let mut memo = Memo::new();
        let ga = memo.add_group(GroupKey::Rels(RelSet::singleton(RelId(0))));
        let gb = memo.add_group(GroupKey::Rels(RelSet::singleton(RelId(1))));
        let gab = memo.add_group(GroupKey::Rels(RelSet::all(2)));
        memo.add_physical(
            ga,
            PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(0) }, 1.0, 5.0),
        )
        .unwrap();
        memo.add_physical(
            gb,
            PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(1) }, 1.0, 5.0),
        )
        .unwrap();
        let dead = memo
            .add_physical(
                gab,
                PhysicalExpr::new(
                    PhysicalOp::MergeJoin {
                        left: ga,
                        right: gb,
                        left_key: ColRef {
                            rel: RelId(0),
                            col: 0,
                        },
                        right_key: ColRef {
                            rel: RelId(1),
                            col: 0,
                        },
                    },
                    1.0,
                    5.0,
                ),
            )
            .unwrap();
        memo.set_root(gab);
        let space = PlanSpace::build(&memo, &query).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        space.sample_rooted(&mut rng, dead);
    }
}
