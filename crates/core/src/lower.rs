//! Lowering: memo plan trees → self-contained executable plans.
//!
//! A [`PlanNode`] references memo expressions whose predicates and
//! columns are symbolic ([`plansample_query::ColRef`]s). The executor
//! wants raw column *offsets*. The bridge is a canonical row-layout
//! convention: a sub-plan covering relation set `S` produces rows that
//! concatenate the full column lists of the relations of `S` in
//! ascending [`plansample_query::RelId`] order. Joins restore this
//! canonical layout via their assembly maps no matter which side the
//! relations arrive from, so every operator's offsets are computable
//! from the query alone.

use plansample_catalog::Catalog;
use plansample_exec::{AggSpec, ColFilter, ExecNode, JoinSpec, Side};
use plansample_memo::{Memo, PhysicalOp, PlanNode};
use plansample_query::{ColRef, QuerySpec, RelId, RelSet};

/// Lowers a complete plan into an executable tree.
///
/// # Panics
/// Panics when the plan does not belong to `memo` or violates the
/// arities of its operators — lower only plans produced by
/// `PlanSpace::unrank`/`sample` or the optimizer (all structurally
/// validated by construction).
pub fn lower(memo: &Memo, query: &QuerySpec, catalog: &Catalog, plan: &PlanNode) -> ExecNode {
    let node = lower_node(memo, query, catalog, plan);
    // Non-aggregate queries may carry a final projection.
    if query.aggregate.is_none() {
        if let Some(projection) = &query.projection {
            let scope = query.all_rels();
            let cols = projection
                .iter()
                .map(|&c| offset_in_scope(query, catalog, scope, c))
                .collect();
            return ExecNode::Project {
                input: Box::new(node),
                cols,
            };
        }
    }
    node
}

/// Width (column count) of one relation instance.
fn rel_width(query: &QuerySpec, catalog: &Catalog, rel: RelId) -> usize {
    catalog
        .table(query.relations[rel.idx()].table)
        .columns
        .len()
}

/// Offset of `col` within the canonical layout of `scope`.
fn offset_in_scope(query: &QuerySpec, catalog: &Catalog, scope: RelSet, col: ColRef) -> usize {
    assert!(
        scope.contains(col.rel),
        "column {col:?} outside scope {scope:?}"
    );
    let mut offset = 0;
    for rel in scope.iter() {
        if rel == col.rel {
            return offset + col.col_idx();
        }
        offset += rel_width(query, catalog, rel);
    }
    unreachable!("scope iteration covers the containing relation");
}

/// Offset of a whole relation's segment within the layout of `scope`.
fn rel_offset_in_scope(query: &QuerySpec, catalog: &Catalog, scope: RelSet, rel: RelId) -> usize {
    offset_in_scope(query, catalog, scope, ColRef { rel, col: 0 })
}

fn compiled_filters(query: &QuerySpec, rel: RelId) -> Vec<ColFilter> {
    query
        .filters_on(rel)
        .map(|f| ColFilter {
            offset: f.col.col_idx(),
            op: f.op,
            value: f.value.clone(),
        })
        .collect()
}

fn join_spec(
    query: &QuerySpec,
    catalog: &Catalog,
    left_scope: RelSet,
    right_scope: RelSet,
) -> JoinSpec {
    let eq_pairs = query
        .edges_crossing(left_scope, right_scope)
        .into_iter()
        .map(|edge| {
            let (l, r) = if left_scope.contains(edge.left.rel) {
                (edge.left, edge.right)
            } else {
                (edge.right, edge.left)
            };
            (
                offset_in_scope(query, catalog, left_scope, l),
                offset_in_scope(query, catalog, right_scope, r),
            )
        })
        .collect();
    // Assemble the canonical ascending-relation layout of the union.
    let assemble = left_scope
        .union(right_scope)
        .iter()
        .map(|rel| {
            let width = rel_width(query, catalog, rel);
            if left_scope.contains(rel) {
                (
                    Side::Left,
                    rel_offset_in_scope(query, catalog, left_scope, rel),
                    width,
                )
            } else {
                (
                    Side::Right,
                    rel_offset_in_scope(query, catalog, right_scope, rel),
                    width,
                )
            }
        })
        .collect();
    JoinSpec { eq_pairs, assemble }
}

fn lower_node(memo: &Memo, query: &QuerySpec, catalog: &Catalog, plan: &PlanNode) -> ExecNode {
    let expr = memo.phys(plan.id);
    let scope = memo.group(plan.id.group).scope(query);
    match &expr.op {
        PhysicalOp::TableScan { rel } => ExecNode::TableScan {
            table: query.relations[rel.idx()].table,
            filters: compiled_filters(query, *rel),
        },
        PhysicalOp::SortedIdxScan { rel, col } => ExecNode::IndexScan {
            table: query.relations[rel.idx()].table,
            sort_col: col.col_idx(),
            filters: compiled_filters(query, *rel),
        },
        PhysicalOp::Sort { target } => ExecNode::Sort {
            input: Box::new(lower_node(memo, query, catalog, &plan.children[0])),
            keys: target
                .cols()
                .iter()
                .map(|&c| offset_in_scope(query, catalog, scope, c))
                .collect(),
        },
        PhysicalOp::NestedLoopJoin { left, right } => {
            let (ls, rs) = (
                memo.group(*left).scope(query),
                memo.group(*right).scope(query),
            );
            ExecNode::NestedLoopJoin {
                left: Box::new(lower_node(memo, query, catalog, &plan.children[0])),
                right: Box::new(lower_node(memo, query, catalog, &plan.children[1])),
                spec: join_spec(query, catalog, ls, rs),
            }
        }
        PhysicalOp::HashJoin { left, right } => {
            let (ls, rs) = (
                memo.group(*left).scope(query),
                memo.group(*right).scope(query),
            );
            ExecNode::HashJoin {
                left: Box::new(lower_node(memo, query, catalog, &plan.children[0])),
                right: Box::new(lower_node(memo, query, catalog, &plan.children[1])),
                spec: join_spec(query, catalog, ls, rs),
            }
        }
        PhysicalOp::MergeJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let (ls, rs) = (
                memo.group(*left).scope(query),
                memo.group(*right).scope(query),
            );
            ExecNode::MergeJoin {
                left: Box::new(lower_node(memo, query, catalog, &plan.children[0])),
                right: Box::new(lower_node(memo, query, catalog, &plan.children[1])),
                left_key: offset_in_scope(query, catalog, ls, *left_key),
                right_key: offset_in_scope(query, catalog, rs, *right_key),
                spec: join_spec(query, catalog, ls, rs),
            }
        }
        PhysicalOp::HashAgg { .. } | PhysicalOp::StreamAgg { .. } => {
            let agg = query
                .aggregate
                .as_ref()
                .expect("aggregate operator implies an aggregate in the query");
            let input_scope = query.all_rels();
            let group = agg
                .group_by
                .iter()
                .map(|&c| offset_in_scope(query, catalog, input_scope, c))
                .collect();
            let aggs = agg
                .aggs
                .iter()
                .map(|a| AggSpec {
                    func: a.func,
                    arg: a
                        .arg
                        .map(|c| offset_in_scope(query, catalog, input_scope, c)),
                })
                .collect();
            let input = Box::new(lower_node(memo, query, catalog, &plan.children[0]));
            if matches!(expr.op, PhysicalOp::HashAgg { .. }) {
                ExecNode::HashAgg { input, group, aggs }
            } else {
                ExecNode::StreamAgg { input, group, aggs }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::PlanSpace;
    use plansample_bignum::Nat;
    use plansample_catalog::Datum::Int;
    use plansample_catalog::TableId;
    use plansample_exec::{Database, Table};

    fn micro_db() -> Database {
        // a(k): 4 rows; b(k, m): 4 rows; c(k): 3 rows
        let mut db = Database::new();
        db.insert(
            TableId(0),
            Table::from_rows(
                1,
                vec![vec![Int(1)], vec![Int(2)], vec![Int(3)], vec![Int(2)]],
            )
            .unwrap(),
        );
        db.insert(
            TableId(1),
            Table::from_rows(
                2,
                vec![
                    vec![Int(2), Int(10)],
                    vec![Int(3), Int(11)],
                    vec![Int(5), Int(10)],
                    vec![Int(2), Int(12)],
                ],
            )
            .unwrap(),
        );
        db.insert(
            TableId(2),
            Table::from_rows(1, vec![vec![Int(10)], vec![Int(11)], vec![Int(99)]]).unwrap(),
        );
        db
    }

    #[test]
    fn all_32_fixture_plans_execute_identically() {
        // The §4 claim end-to-end on the paper's own example: every plan
        // of the space produces the same result.
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let db = micro_db();

        let reference = lower(
            &ex.memo,
            &ex.query,
            &ex.catalog,
            &space.unrank(&Nat::zero()).unwrap(),
        )
        .execute(&db)
        .unwrap();
        assert!(!reference.is_empty(), "joined fixture data is non-empty");

        for plan in space.enumerate() {
            let exec = lower(&ex.memo, &ex.query, &ex.catalog, &plan);
            let out = exec.execute(&db).unwrap();
            assert!(
                out.multiset_eq(&reference),
                "plan {:?} diverged",
                plan.preorder_ids()
            );
        }
    }

    #[test]
    fn offsets_follow_canonical_layout() {
        let ex = paper_example::build();
        // scope {a,b,c}: a has width 1, b width 2, c width 1.
        let scope = ex.query.all_rels();
        let b_m = ColRef {
            rel: RelId(1),
            col: 1,
        };
        let c_k = ColRef {
            rel: RelId(2),
            col: 0,
        };
        assert_eq!(offset_in_scope(&ex.query, &ex.catalog, scope, b_m), 2);
        assert_eq!(offset_in_scope(&ex.query, &ex.catalog, scope, c_k), 3);
        // scope {b,c} alone shifts offsets left by a's width.
        let bc = RelSet::from_iter([RelId(1), RelId(2)]);
        assert_eq!(offset_in_scope(&ex.query, &ex.catalog, bc, c_k), 2);
    }

    #[test]
    #[should_panic(expected = "outside scope")]
    fn out_of_scope_column_panics() {
        let ex = paper_example::build();
        let a_only = RelSet::from_iter([RelId(0)]);
        let b_k = ColRef {
            rel: RelId(1),
            col: 0,
        };
        offset_in_scope(&ex.query, &ex.catalog, a_only, b_k);
    }

    #[test]
    fn join_spec_restores_canonical_order() {
        let ex = paper_example::build();
        // join {c} (left) with {a,b} (right): output must be a,b,c.
        let ls = RelSet::from_iter([RelId(2)]);
        let rs = RelSet::from_iter([RelId(0), RelId(1)]);
        let spec = join_spec(&ex.query, &ex.catalog, ls, rs);
        assert_eq!(
            spec.assemble,
            vec![(Side::Right, 0, 1), (Side::Right, 1, 2), (Side::Left, 0, 1)]
        );
        // one crossing edge: b.m = c.k
        assert_eq!(spec.eq_pairs, vec![(0, 2)]);
    }
}
