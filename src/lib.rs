//! Workspace umbrella crate: exists to host the cross-crate integration tests in `tests/` and the runnable `examples/`.
