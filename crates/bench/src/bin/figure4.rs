//! Experiment E2/E6 — regenerates **Figure 4** of the paper: cost
//! distributions for TPC-H Q5, Q7, Q8, Q9 (10 000 uniform samples,
//! lower 50% of sampled costs, frequency histograms), plus the §5
//! distribution-shape analysis (exponential resemblance, Gamma shape
//! parameter ≈ 1) behind `--fit`.
//!
//! ```text
//! cargo run --release -p plansample-bench --bin figure4 [-- --fit] [-- --csv DIR]
//! ```

use plansample_bench::{join_queries, prepare, sample_scaled_costs, EXPERIMENT_SEED};
use plansample_stats::{fit_exponential, fit_gamma, Histogram, Summary};
use std::io::Write as _;

const SAMPLES: usize = 10_000;
const BUCKETS: usize = 25;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fit = args.iter().any(|a| a == "--fit");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (catalog, _) = plansample_catalog::tpch::catalog();

    println!("Figure 4: cost distributions (lower 50% of {SAMPLES} sampled scaled costs)");
    println!("search spaces without Cartesian products, as in Table 1 rows 1-4");

    for (name, query) in join_queries(&catalog) {
        let prepared = prepare(&catalog, name, query, false);
        let costs = sample_scaled_costs(&prepared, SAMPLES, EXPERIMENT_SEED);
        let hist = Histogram::lower_fraction(&costs, 0.5, BUCKETS);
        let kept: usize = hist.counts().iter().sum();

        println!();
        println!(
            "TPC-H {name}  (space size {}, lower-50% range [{:.2}, {:.2}], {kept} samples shown)",
            prepared.space().total(),
            hist.lo(),
            hist.hi()
        );
        print!("{}", hist.render(50));

        if fit {
            let s = Summary::of(&costs);
            let gamma = fit_gamma(&costs);
            let expo = fit_exponential(&costs);
            let gof_g = gamma.goodness_of_fit(&costs).expect("non-empty sample");
            let gof_e = expo.goodness_of_fit(&costs).expect("non-empty sample");
            println!(
                "  full-sample stats: min {:.2}  mean {:.1}  max {:.1}",
                s.min(),
                s.mean(),
                s.max()
            );
            println!(
                "  gamma fit: shape k = {:.3} (paper: \"shape parameter close to 1\"), scale = {:.2}, KS D = {:.3}",
                gamma.shape, gamma.scale, gof_g.statistic
            );
            println!(
                "  exponential fit: rate = {:.4}, KS D = {:.3}",
                expo.rate, gof_e.statistic
            );
        }

        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/figure4_{}.csv", name.to_lowercase());
            let mut f = std::fs::File::create(&path).expect("create csv");
            writeln!(f, "scaled_cost_bucket_mid,frequency").unwrap();
            for (mid, count) in hist.series() {
                writeln!(f, "{mid},{count}").unwrap();
            }
            println!("  wrote {path}");
        }
    }

    // §5 control: small queries have no particular shape.
    let q6 = plansample_query::tpch::q6(&catalog);
    let prepared = prepare(&catalog, "Q6", q6, false);
    let space = prepared.space();
    println!();
    println!(
        "control TPC-H Q6: only {} plans (\"distributions of queries that contained few \
         tables were of no particular shape\")",
        space.total()
    );
}
