//! Division with remainder (Knuth's Algorithm D) and bit shifts.
//!
//! Unranking decomposes a local rank into mixed-radix digits
//! `s_v(i) = floor(R_v(i) / B_v(i-1))`, `R_v(i) = R_v(i+1) mod B_v(i)`
//! (paper §3.3), so exact big÷big division is on the hot path of plan
//! generation. Inline (single-limb) operands — the common case — divide
//! with one machine instruction pair and never allocate.

use crate::Nat;

impl Nat {
    /// Returns `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Nat) -> (Nat, Nat) {
        assert!(!divisor.is_zero(), "Nat division by zero");
        if let (Some(a), Some(b)) = (self.as_small(), divisor.as_small()) {
            return (Nat::small(a / b), Nat::small(a % b));
        }
        if self < divisor {
            return (Nat::zero(), self.clone());
        }
        if let Some(d) = divisor.as_small() {
            let (q, r) = self.div_rem_u64(d);
            return (q, Nat::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Fast path: divide by a single limb.
    pub fn div_rem_u64(&self, divisor: u64) -> (Nat, u64) {
        assert!(divisor != 0, "Nat division by zero");
        if let Some(v) = self.as_small() {
            return (Nat::small(v / divisor), v % divisor);
        }
        let limbs = self.limbs();
        let mut quotient = vec![0u64; limbs.len()];
        let mut rem = 0u128;
        for i in (0..limbs.len()).rev() {
            let cur = (rem << 64) | limbs[i] as u128;
            quotient[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (Nat::from_limbs(quotient), rem as u64)
    }

    /// Knuth TAOCP vol. 2, 4.3.1 Algorithm D, with 64-bit limbs. Both
    /// operands have at least two limbs here (single-limb divisors take
    /// [`div_rem_u64`](Self::div_rem_u64)).
    fn div_rem_knuth(&self, divisor: &Nat) -> (Nat, Nat) {
        let n = divisor.len();
        let m = self.len() - n;

        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs()[n - 1].leading_zeros();
        let v = divisor.shl_bits(shift);
        let mut u = self.shl_bits(shift).limbs().to_vec();
        u.resize(self.len() + 1, 0); // extra high limb u[m+n]

        let v = v.limbs();
        let v_hi = v[n - 1];
        let v_lo = v[n - 2];
        let mut q = vec![0u64; m + 1];

        // D2..D7: main loop over quotient digits, most significant first.
        for j in (0..=m).rev() {
            // D3: estimate q_hat from the top two limbs of u and top of v.
            let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut q_hat = top / v_hi as u128;
            let mut r_hat = top % v_hi as u128;
            // Refine: at most two corrections bring q_hat within 1 of truth.
            while q_hat >> 64 != 0 || q_hat * v_lo as u128 > ((r_hat << 64) | u[j + n - 2] as u128)
            {
                q_hat -= 1;
                r_hat += v_hi as u128;
                if r_hat >> 64 != 0 {
                    break;
                }
            }
            let mut q_hat = q_hat as u64;

            // D4: multiply-and-subtract u[j..j+n] -= q_hat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = q_hat as u128 * v[i] as u128 + carry;
                carry = p >> 64;
                let t = u[i + j] as i128 - (p as u64) as i128 + borrow;
                u[i + j] = t as u64;
                borrow = t >> 64; // arithmetic shift: 0 or -1
            }
            let t = u[j + n] as i128 - carry as i128 + borrow;
            u[j + n] = t as u64;

            // D5/D6: if we subtracted too much (prob. ~2/2^64), add back.
            if t < 0 {
                q_hat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = u[i + j] as u128 + v[i] as u128 + carry;
                    u[i + j] = s as u64;
                    carry = s >> 64;
                }
                u[j + n] = (u[j + n] as u128).wrapping_add(carry) as u64;
            }
            q[j] = q_hat;
        }

        // D8: denormalize the remainder.
        let rem = Nat::from_limbs(u[..n].to_vec()).shr_bits(shift);
        (Nat::from_limbs(q), rem)
    }

    /// Left shift by `shift < 64` bits (enough for normalization).
    pub(crate) fn shl_bits(&self, shift: u32) -> Nat {
        debug_assert!(shift < 64);
        if shift == 0 || self.is_zero() {
            return self.clone();
        }
        let limbs = self.limbs();
        let mut out = Vec::with_capacity(limbs.len() + 1);
        let mut carry = 0u64;
        for &limb in limbs {
            out.push((limb << shift) | carry);
            carry = limb >> (64 - shift);
        }
        if carry != 0 {
            out.push(carry);
        }
        Nat::from_limbs(out)
    }

    /// Right shift by `shift < 64` bits.
    pub(crate) fn shr_bits(&self, shift: u32) -> Nat {
        debug_assert!(shift < 64);
        if shift == 0 || self.is_zero() {
            return self.clone();
        }
        let limbs = self.limbs();
        let mut out = vec![0u64; limbs.len()];
        let mut carry = 0u64;
        for i in (0..limbs.len()).rev() {
            out[i] = (limbs[i] >> shift) | carry;
            carry = limbs[i] << (64 - shift);
        }
        Nat::from_limbs(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::Nat;

    fn n(v: u128) -> Nat {
        Nat::from(v)
    }

    fn check(a: u128, b: u128) {
        let (q, r) = n(a).div_rem(&n(b));
        assert_eq!(q, n(a / b), "quotient of {a}/{b}");
        assert_eq!(r, n(a % b), "remainder of {a}/{b}");
    }

    #[test]
    fn small_divisions() {
        check(0, 1);
        check(7, 3);
        check(42, 42);
        check(41, 42);
        check(u64::MAX as u128, 2);
    }

    #[test]
    fn inline_division_allocates_nothing() {
        let (q, r) = n(41).div_rem(&n(7));
        assert_eq!(q.size_bytes(), std::mem::size_of::<Nat>());
        assert_eq!(r.size_bytes(), std::mem::size_of::<Nat>());
        assert_eq!((q, r), (n(5), n(6)));
    }

    #[test]
    fn u128_divisions_cross_limb() {
        check(u128::MAX, 3);
        check(u128::MAX, u64::MAX as u128);
        check(u128::MAX, (u64::MAX as u128) + 1);
        check(u128::MAX - 1, u128::MAX);
        check(1u128 << 127, (1u128 << 64) | 12345);
    }

    #[test]
    fn divisor_larger_than_dividend() {
        let (q, r) = n(5).div_rem(&n(1 << 80));
        assert!(q.is_zero());
        assert_eq!(r, n(5));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        n(5).div_rem(&Nat::zero());
    }

    #[test]
    fn single_limb_fast_path() {
        let (q, r) = n(u128::MAX).div_rem_u64(10);
        assert_eq!(q, n(u128::MAX / 10));
        assert_eq!(r, (u128::MAX % 10) as u64);
    }

    #[test]
    fn multi_limb_reconstruction() {
        // (q * d + r) == a for a 4-limb / 2-limb case exercising Algorithm D.
        let a = Nat::from_limbs(vec![
            0x0123456789abcdef,
            0xfedcba9876543210,
            0xdeadbeefcafebabe,
            0x1,
        ]);
        let d = Nat::from_limbs(vec![0xffffffff00000001, 0x8000000000000000]);
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(&q * &d + &r, a);
    }

    #[test]
    fn add_back_case_d6() {
        // A dividend/divisor pair crafted to force the rare D6 add-back
        // branch: top limbs equal so the initial q_hat over-estimates.
        let d = Nat::from_limbs(vec![0, 0xffffffffffffffff]);
        let a = Nat::from_limbs(vec![u64::MAX, u64::MAX - 1, 0xfffffffffffffffe]);
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(&q * &d + &r, a);
    }

    #[test]
    fn shifts_round_trip() {
        let a = Nat::from_limbs(vec![0xdeadbeef, 0xcafebabe, 0x1234]);
        for s in 0..64u32 {
            assert_eq!(a.shl_bits(s).shr_bits(s), a, "shift {s}");
        }
    }
}
