//! A minimal readiness reactor over `poll(2)`.
//!
//! The build environment has no crates.io, so instead of `mio`/`tokio`
//! this module declares the one libc entry point the event loop needs
//! (std already links libc on every Unix target) and wraps it in a
//! safe, allocation-reusing API. `poll` rather than `epoll` keeps the
//! wrapper portable across Unixes and branch-free to reason about; at
//! the few hundred connections the front-end targets, the O(n) fd scan
//! is far below the cost of the work behind each ready fd.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_ulong};
use std::time::Duration;

/// `struct pollfd` from `poll(2)`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// What a registered fd is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable (or the peer hung up).
    pub readable: bool,
    /// Wake when writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// Readiness reported for one fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered under this round.
    pub token: u64,
    /// Data (or EOF) can be read without blocking.
    pub readable: bool,
    /// The socket can accept writes without blocking.
    pub writable: bool,
    /// The fd is in an error/hangup state; close it.
    pub error: bool,
}

/// One round of readiness polling. The fd set is rebuilt every round
/// from the caller's connection table (`clear` + `register`), which
/// keeps registration trivially consistent with connection lifetimes —
/// no stale-fd bookkeeping, at the cost of an O(n) rebuild the fd scan
/// already pays.
#[derive(Debug, Default)]
pub struct Poller {
    fds: Vec<PollFd>,
    tokens: Vec<u64>,
}

impl Poller {
    /// An empty poller.
    pub fn new() -> Self {
        Poller::default()
    }

    /// Drops every registration (start of a round).
    pub fn clear(&mut self) {
        self.fds.clear();
        self.tokens.clear();
    }

    /// Registers `fd` under `token` for this round.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) {
        let mut events = 0;
        if interest.readable {
            events |= POLLIN;
        }
        if interest.writable {
            events |= POLLOUT;
        }
        self.fds.push(PollFd {
            fd,
            events,
            revents: 0,
        });
        self.tokens.push(token);
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = wait indefinitely), then returns the ready
    /// events. EINTR retries transparently.
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<Vec<Event>> {
        let timeout_ms: c_int = match timeout {
            // Round up so a sub-millisecond deadline does not spin at 0.
            Some(t) => t.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as c_int,
            None => -1,
        };
        loop {
            let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                break;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
        let events = self
            .fds
            .iter()
            .zip(&self.tokens)
            .filter(|(fd, _)| fd.revents != 0)
            .map(|(fd, &token)| Event {
                token,
                readable: fd.revents & (POLLIN | POLLHUP) != 0,
                writable: fd.revents & POLLOUT != 0,
                error: fd.revents & (POLLERR | POLLNVAL) != 0,
            })
            .collect();
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reports_readability_on_a_socketpair() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut poller = Poller::new();
        poller.register(b.as_raw_fd(), 7, Interest::READ);
        // Nothing written yet: times out with no events.
        let events = poller.wait(Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
        a.write_all(b"x").unwrap();
        let events = poller.wait(Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn reports_hangup_as_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(a);
        let mut poller = Poller::new();
        poller.register(b.as_raw_fd(), 1, Interest::READ);
        let events = poller.wait(Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable, "EOF must wake the reader");
    }
}
