//! System-R style cardinality estimation over the join graph.
//!
//! The estimate for a set `S` of relations is
//!
//! ```text
//!   card(S) = Π_{r ∈ S} (rows(r) · Π filters(r)) · Π_{e ⊆ S} sel(e)
//! ```
//!
//! i.e. filtered base cardinalities times the selectivity of every join
//! edge whose endpoints both lie in `S`. This is the estimate the cost
//! model prices every MEMO group with; because it depends only on the
//! *set* (not the join order), all plans for a group agree on their output
//! cardinality — which is also what makes the set a sound group key.

use crate::{ColRef, QuerySpec, RelId, RelSet};
use plansample_catalog::Catalog;

impl QuerySpec {
    /// Base cardinality of `rel` after applying its local filters.
    pub fn filtered_card(&self, catalog: &Catalog, rel: RelId) -> f64 {
        let table = catalog.table(self.relations[rel.idx()].table);
        let mut card = table.row_count as f64;
        for f in self.filters_on(rel) {
            card *= f.selectivity;
        }
        card.max(1.0)
    }

    /// Estimated cardinality of joining all relations of `set`.
    ///
    /// # Panics
    /// Panics on the empty set (no meaningful cardinality).
    pub fn set_card(&self, catalog: &Catalog, set: RelSet) -> f64 {
        assert!(!set.is_empty(), "cardinality of the empty relation set");
        let mut card: f64 = set.iter().map(|r| self.filtered_card(catalog, r)).product();
        for edge in self.edges_within(set) {
            card *= edge.selectivity;
        }
        card.max(1.0)
    }

    /// Distinct-value estimate for a column, capped by its relation's
    /// filtered cardinality (you cannot have more distinct values than
    /// rows).
    pub fn col_ndv(&self, catalog: &Catalog, col: ColRef) -> f64 {
        let table = catalog.table(self.relations[col.rel.idx()].table);
        let ndv = table.column(col.col_idx()).ndv.max(1) as f64;
        ndv.min(self.filtered_card(catalog, col.rel))
    }

    /// Output cardinality of grouping `set` by `group_by` columns: the
    /// product of group-key NDVs capped by the input cardinality.
    pub fn grouped_card(&self, catalog: &Catalog, set: RelSet, group_by: &[ColRef]) -> f64 {
        let input = self.set_card(catalog, set);
        if group_by.is_empty() {
            return 1.0; // scalar aggregate
        }
        let keys: f64 = group_by.iter().map(|&c| self.col_ndv(catalog, c)).product();
        keys.min(input).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use crate::{CmpOp, QueryBuilder, RelId, RelSet};
    use plansample_catalog::tpch;

    #[test]
    fn filtered_card_applies_selectivities() {
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("region", None).unwrap();
        qb.filter(("region", "r_name"), CmpOp::Eq, "ASIA").unwrap();
        let spec = qb.build().unwrap();
        // 5 rows * 1/5 selectivity
        assert!((spec.filtered_card(&cat, RelId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn key_fk_join_card_equals_fk_side() {
        // nation ⋈ region on regionkey: 25 * 5 * (1/5) = 25.
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("nation", None).unwrap();
        qb.rel("region", None).unwrap();
        qb.join(("nation", "n_regionkey"), ("region", "r_regionkey"))
            .unwrap();
        let spec = qb.build().unwrap();
        let card = spec.set_card(&cat, RelSet::all(2));
        assert!((card - 25.0).abs() < 1e-9, "got {card}");
    }

    #[test]
    fn cross_product_card_is_product() {
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("nation", Some("n1")).unwrap();
        qb.rel("nation", Some("n2")).unwrap();
        let spec = qb.build().unwrap();
        assert!((spec.set_card(&cat, RelSet::all(2)) - 625.0).abs() < 1e-9);
    }

    #[test]
    fn card_never_below_one() {
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("region", None).unwrap();
        qb.filter_sel(("region", "r_name"), CmpOp::Eq, "X", 1e-9)
            .unwrap();
        let spec = qb.build().unwrap();
        assert_eq!(spec.filtered_card(&cat, RelId(0)), 1.0);
    }

    #[test]
    fn ndv_capped_by_rows() {
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("region", None).unwrap();
        qb.filter_sel(("region", "r_regionkey"), CmpOp::Lt, 2i64, 0.4)
            .unwrap();
        let spec = qb.build().unwrap();
        let col = spec.resolve(&cat, "region", "r_regionkey").unwrap();
        // 5 ndv but only 2 filtered rows
        assert!((spec.col_ndv(&cat, col) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn grouped_card_caps_at_input() {
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("nation", None).unwrap();
        let spec = qb.build().unwrap();
        let name = spec.resolve(&cat, "nation", "n_name").unwrap();
        let g = spec.grouped_card(&cat, RelSet::all(1), &[name]);
        assert!((g - 25.0).abs() < 1e-9);
        // scalar aggregate -> 1 row
        assert_eq!(spec.grouped_card(&cat, RelSet::all(1), &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty relation set")]
    fn empty_set_card_panics() {
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("nation", None).unwrap();
        let spec = qb.build().unwrap();
        spec.set_card(&cat, RelSet::EMPTY);
    }
}
