//! The load generator behind `plansample-loadgen`.
//!
//! Drives a configurable number of concurrent connections against a
//! plan server with a deterministic mixed workload — TPC-H SQL and
//! synthetic join graphs, across every request opcode — and reports a
//! latency histogram (p50/p90/p99/p999), throughput, and an error
//! breakdown. The report serializes to `BENCH_serving.json`; its schema
//! is checked by [`validate_report`], which CI runs after the smoke
//! benchmark.
//!
//! Every connection runs a closed loop (next request issued when the
//! previous reply lands), so concurrency == connections. The request
//! stream is a pure function of `seed` and the connection index:
//! re-running with the same configuration replays the same workload.

use crate::client::{Client, ClientError};
use crate::json::{self, Json, ObjWriter};
use crate::wire::{ErrorCode, Request, Response, StatsReply, Workload};
use plansample_bignum::Nat;
use plansample_datagen::joingraph::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// TPC-H SQL half of the workload mix (all parse against the built-in
/// catalog; chosen to span 1–3 relations, filters, and aggregates).
pub const TPCH_SQL: &[&str] = &[
    "SELECT * FROM region WHERE region.r_regionkey < 3",
    "SELECT COUNT(*) FROM nation n1, nation n2 WHERE n1.n_regionkey = n2.n_regionkey",
    "SELECT n_name, COUNT(*) FROM supplier s, nation n, region r \
     WHERE s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
     GROUP BY n.n_name",
    "SELECT COUNT(*) FROM lineitem l, orders o, customer c \
     WHERE l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey",
    "SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem l WHERE l.l_quantity < 10",
    "SELECT n_name FROM nation, region WHERE n_regionkey = r_regionkey AND r_name = 'ASIA'",
];

/// Synthetic half of the workload mix: `(topology, relations, seed)`
/// triples kept small enough that first preparation stays cheap.
pub const SYNTH_SPECS: &[(Topology, u16, u64)] = &[
    (Topology::Chain, 6, 11),
    (Topology::Chain, 8, 12),
    (Topology::Star, 6, 21),
    (Topology::Cycle, 5, 31),
    (Topology::Cycle, 6, 32),
    (Topology::Clique, 5, 41),
];

/// Load-run configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent connections (one thread each).
    pub connections: usize,
    /// Requests each connection issues.
    pub requests_per_connection: usize,
    /// Workload seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Client receive timeout (a stall beyond this is a protocol error).
    pub recv_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            connections: 100,
            requests_per_connection: 50,
            seed: 42,
            recv_timeout: Duration::from_secs(60),
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Reactors the server ran, self-reported through the final stats
    /// probe (`0` when the probe failed and the count is unknown).
    pub reactors: usize,
    /// Connections that participated.
    pub connections: usize,
    /// Requests sent.
    pub sent: u64,
    /// Successful (non-error) replies.
    pub ok: u64,
    /// Typed `Overloaded` replies (admission control working, not a
    /// failure).
    pub overloaded: u64,
    /// Other typed error replies (workload bugs; expected 0).
    pub app_errors: u64,
    /// Client-side failures: socket errors, undecodable bytes, id
    /// mismatches, stalls. Expected 0 — any of these fails acceptance.
    pub protocol_errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-request latencies in microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// Server-side counters snapshot taken after the run, when the
    /// server answered the final `Stats` probe.
    pub server: Option<StatsReply>,
}

impl LoadReport {
    /// Replies received (any kind).
    pub fn replies(&self) -> u64 {
        self.ok + self.overloaded + self.app_errors
    }

    /// Replies per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.replies() as f64 / secs
        } else {
            0.0
        }
    }

    /// The `q`-quantile latency in microseconds (`q` in `[0, 1]`).
    pub fn latency_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = (q * (self.latencies_us.len() - 1) as f64).round() as usize;
        self.latencies_us[rank.min(self.latencies_us.len() - 1)]
    }

    /// Mean latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        self.latencies_us.iter().sum::<u64>() as f64 / self.latencies_us.len() as f64
    }
}

#[derive(Default)]
struct ThreadTally {
    sent: u64,
    ok: u64,
    overloaded: u64,
    app_errors: u64,
    protocol_errors: u64,
    latencies_us: Vec<u64>,
}

/// Runs the mixed workload against `addr` and aggregates the outcome.
pub fn run(addr: SocketAddr, config: &LoadgenConfig) -> LoadReport {
    let started = Instant::now();
    let tallies: Vec<ThreadTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|i| {
                let config = config.clone();
                scope.spawn(move || drive_connection(addr, &config, i as u64))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| ThreadTally {
                    protocol_errors: 1,
                    ..ThreadTally::default()
                })
            })
            .collect()
    });
    let elapsed = started.elapsed();

    let mut report = LoadReport {
        connections: config.connections,
        elapsed,
        ..LoadReport::default()
    };
    for t in tallies {
        report.sent += t.sent;
        report.ok += t.ok;
        report.overloaded += t.overloaded;
        report.app_errors += t.app_errors;
        report.protocol_errors += t.protocol_errors;
        report.latencies_us.extend(t.latencies_us);
    }
    report.latencies_us.sort_unstable();

    // Final server-side snapshot over a fresh connection; optional so a
    // run against a since-stopped server still yields client numbers.
    report.server = Client::connect(addr).ok().and_then(|mut c| {
        c.set_timeout(Some(config.recv_timeout)).ok()?;
        match c.call(&Request::Stats) {
            Ok(Response::Stats(stats)) => Some(stats),
            _ => None,
        }
    });
    report.reactors = report
        .server
        .as_ref()
        .map(|s| s.per_reactor.len())
        .unwrap_or(0);
    report
}

/// One connection's closed loop. The request stream depends only on
/// `(config.seed, index)`.
fn drive_connection(addr: SocketAddr, config: &LoadgenConfig, index: u64) -> ThreadTally {
    let mut tally = ThreadTally::default();
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            tally.protocol_errors += 1;
            return tally;
        }
    };
    if client.set_timeout(Some(config.recv_timeout)).is_err() {
        tally.protocol_errors += 1;
        return tally;
    }
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ index);
    // Plan-space totals learned from Count replies, keyed by workload
    // index, so Unrank can draw in-range ranks.
    let mut totals: HashMap<usize, Nat> = HashMap::new();

    for _ in 0..config.requests_per_connection {
        let (request, workload_idx) = next_request(&mut rng, &totals);
        tally.sent += 1;
        let sent_at = Instant::now();
        match client.call(&request) {
            Ok(response) => {
                tally
                    .latencies_us
                    .push(sent_at.elapsed().as_micros().min(u64::MAX as u128) as u64);
                match response {
                    Response::Error {
                        code: ErrorCode::Overloaded,
                        ..
                    } => tally.overloaded += 1,
                    Response::Error { .. } => tally.app_errors += 1,
                    Response::Count(total) => {
                        if let Some(idx) = workload_idx {
                            totals.insert(idx, total);
                        }
                        tally.ok += 1;
                    }
                    _ => tally.ok += 1,
                }
            }
            Err(ClientError::Closed)
            | Err(ClientError::Io(_))
            | Err(ClientError::Wire(_))
            | Err(ClientError::UnexpectedId(_)) => {
                tally.protocol_errors += 1;
                // The connection is unusable after any client error.
                return tally;
            }
        }
    }
    tally
}

/// Draws the next request in the mix. Returns the workload's index in
/// the combined table (SQL then synthetic) when the request has one.
fn next_request(rng: &mut StdRng, totals: &HashMap<usize, Nat>) -> (Request, Option<usize>) {
    let n_workloads = TPCH_SQL.len() + SYNTH_SPECS.len();
    let idx = rng.gen_range(0..n_workloads);
    let workload = if idx < TPCH_SQL.len() {
        Workload::Sql(TPCH_SQL[idx].to_string())
    } else {
        let (topology, relations, seed) = SYNTH_SPECS[idx - TPCH_SQL.len()];
        Workload::Synthetic {
            topology,
            relations,
            seed,
        }
    };
    let op = rng.gen_range(0..100u32);
    let request = match op {
        0..=24 => Request::Count(workload),
        25..=44 => Request::Prepare(workload),
        45..=64 => Request::Best(workload),
        65..=84 => {
            let k = rng.gen_range(1..=16u32);
            let seed = rng.gen_range(0..u64::MAX);
            Request::SampleBatch(workload, seed, k)
        }
        85..=94 => {
            // Unrank needs an in-range rank; until this connection has
            // learned the workload's total, count instead.
            match totals.get(&idx) {
                Some(total) => {
                    let rank = match total.to_u64() {
                        Some(t) if t > 0 => Nat::from(rng.gen_range(0..t)),
                        // > u64::MAX plans: any u64 is in range.
                        None => Nat::from(rng.gen_range(0..u64::MAX)),
                        _ => Nat::from(0u64),
                    };
                    Request::Unrank(workload, rank)
                }
                None => Request::Count(workload),
            }
        }
        _ => return (Request::Stats, None),
    };
    (request, Some(idx))
}

/// Serializes a report to the `BENCH_serving.json` schema.
pub fn report_json(report: &LoadReport) -> String {
    let mut w = ObjWriter::new();
    w.str("bench", "serving")
        .int("reactors", report.reactors as u64)
        .int("connections", report.connections as u64)
        .int("requests_sent", report.sent)
        .int("replies", report.replies())
        .int("ok", report.ok)
        .int("overloaded", report.overloaded)
        .int("app_errors", report.app_errors)
        .int("protocol_errors", report.protocol_errors)
        .float("elapsed_secs", report.elapsed.as_secs_f64())
        .float("throughput_rps", report.throughput());
    w.obj("latency_us")
        .int("p50", report.latency_us(0.50))
        .int("p90", report.latency_us(0.90))
        .int("p99", report.latency_us(0.99))
        .int("p999", report.latency_us(0.999))
        .int("max", report.latencies_us.last().copied().unwrap_or(0))
        .float("mean", report.mean_latency_us())
        .end();
    if let Some(s) = &report.server {
        w.obj("server")
            .int("requests", s.requests)
            .int("requests_admitted", s.requests_admitted)
            .int("shed_queue", s.shed_queue)
            .int("shed_prepare", s.shed_prepare)
            .int("wire_errors", s.wire_errors)
            .int("accept_errors", s.accept_errors)
            .int("connections_total", s.connections_total)
            .int("hits", s.hits)
            .int("misses", s.misses)
            .int("coalesced", s.coalesced)
            .int("evictions", s.evictions)
            .int("entries", s.entries)
            .int("resident_bytes", s.resident_bytes)
            .int("synth_services", s.synth_services)
            .int("synth_evictions", s.synth_evictions)
            .int("batch_peak_bytes", s.batch_peak_bytes);
        let secs = report.elapsed.as_secs_f64();
        w.arr("per_reactor");
        for (i, r) in s.per_reactor.iter().enumerate() {
            w.elem_obj()
                .int("index", i as u64)
                .int("requests", r.requests)
                .int("connections", r.connections)
                .float(
                    "reqs_per_sec",
                    if secs > 0.0 {
                        r.requests as f64 / secs
                    } else {
                        0.0
                    },
                )
                .end();
        }
        w.end().end();
    }
    w.finish()
}

/// Checks that `text` is a well-formed `BENCH_serving.json` artifact:
/// parses as JSON, carries every required field with a numeric value,
/// and records a clean run (zero protocol errors). CI runs this after
/// the loadgen smoke.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    if doc.get("bench") != Some(&Json::Str("serving".into())) {
        return Err("missing or wrong \"bench\" marker".into());
    }
    for key in [
        "reactors",
        "connections",
        "requests_sent",
        "replies",
        "ok",
        "overloaded",
        "app_errors",
        "protocol_errors",
        "elapsed_secs",
        "throughput_rps",
    ] {
        doc.get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric field {key:?}"))?;
    }
    let latency = doc
        .get("latency_us")
        .ok_or_else(|| "missing \"latency_us\" object".to_string())?;
    for key in ["p50", "p90", "p99", "p999", "max", "mean"] {
        latency
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric field latency_us.{key:?}"))?;
    }
    let protocol_errors = doc
        .get("protocol_errors")
        .and_then(Json::as_num)
        .unwrap_or(1.0);
    if protocol_errors != 0.0 {
        return Err(format!("run recorded {protocol_errors} protocol errors"));
    }
    let replies = doc.get("replies").and_then(Json::as_num).unwrap_or(0.0);
    let sent = doc
        .get("requests_sent")
        .and_then(Json::as_num)
        .unwrap_or(f64::NAN);
    if replies != sent {
        return Err(format!("{replies} replies for {sent} requests"));
    }
    if let Some(server) = doc.get("server") {
        let field = |key: &str| {
            server
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("missing numeric field server.{key:?}"))
        };
        // The counter contract the reactors maintain: every decoded
        // request is either admitted or queue-shed, never lost.
        let (requests, admitted, shed) = (
            field("requests")?,
            field("requests_admitted")?,
            field("shed_queue")?,
        );
        if requests != admitted + shed {
            return Err(format!(
                "counter invariant broken: {requests} requests != \
                 {admitted} admitted + {shed} queue-shed"
            ));
        }
        let per_reactor = match server.get("per_reactor") {
            Some(Json::Arr(items)) => items,
            _ => return Err("missing \"server.per_reactor\" array".into()),
        };
        let mut sum = 0.0;
        for (i, r) in per_reactor.iter().enumerate() {
            sum += r
                .get("requests")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("per_reactor[{i}] lacks numeric \"requests\""))?;
        }
        // Connections are pinned to one reactor for life, so the
        // per-reactor shares must reproduce the global count exactly.
        if sum != requests {
            return Err(format!(
                "per-reactor requests sum to {sum}, server counted {requests}"
            ));
        }
    }
    Ok(())
}

/// Compares a fresh `BENCH_serving.json` against the committed previous
/// run: the perf-trajectory check CI applies. Fails when the fresh
/// throughput regressed more than 30% at an equal reactor count;
/// reactor-count mismatches skip (different hardware shapes are not
/// comparable). Returns a human-readable verdict on success.
pub fn compare_reports(prev: &str, fresh: &str) -> Result<String, String> {
    let prev = json::parse(prev).map_err(|e| format!("previous artifact: {e}"))?;
    let fresh = json::parse(fresh).map_err(|e| format!("fresh artifact: {e}"))?;
    let num = |doc: &Json, key: &str, which: &str| {
        doc.get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{which} artifact lacks numeric {key:?}"))
    };
    // A previous artifact from before the schema carried reactor counts
    // is a migration, not a regression: skip rather than fail.
    let prev_reactors = match prev.get("reactors").and_then(Json::as_num) {
        Some(n) => n,
        None => return Ok("skipped: previous artifact predates reactor counts".into()),
    };
    let fresh_reactors = num(&fresh, "reactors", "fresh")?;
    if prev_reactors != fresh_reactors {
        return Ok(format!(
            "skipped: reactor counts differ (previous {prev_reactors}, fresh {fresh_reactors})"
        ));
    }
    let prev_rps = num(&prev, "throughput_rps", "previous")?;
    let fresh_rps = num(&fresh, "throughput_rps", "fresh")?;
    let floor = prev_rps * 0.7;
    if fresh_rps < floor {
        return Err(format!(
            "throughput regressed more than 30% at {fresh_reactors} reactors: \
             {fresh_rps:.0} req/s vs previous {prev_rps:.0} req/s (floor {floor:.0})"
        ));
    }
    Ok(format!(
        "throughput {fresh_rps:.0} req/s vs previous {prev_rps:.0} req/s \
         at {fresh_reactors} reactors: within trajectory"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_validation() {
        let report = LoadReport {
            connections: 4,
            sent: 10,
            ok: 9,
            overloaded: 1,
            elapsed: Duration::from_millis(125),
            latencies_us: vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 1000],
            ..LoadReport::default()
        };
        let text = report_json(&report);
        validate_report(&text).unwrap();
        assert_eq!(report.latency_us(0.0), 10);
        assert_eq!(report.latency_us(1.0), 1000);
        assert_eq!(report.latency_us(0.5), 60); // round(0.5 * 9) = 5
    }

    #[test]
    fn validation_rejects_dirty_runs_and_bad_schemas() {
        let dirty = LoadReport {
            connections: 1,
            sent: 1,
            protocol_errors: 1,
            elapsed: Duration::from_millis(1),
            latencies_us: vec![],
            ..LoadReport::default()
        };
        assert!(validate_report(&report_json(&dirty)).is_err());
        assert!(validate_report("{}").is_err());
        assert!(validate_report("not json").is_err());
    }

    #[test]
    fn validation_enforces_counter_invariants() {
        use crate::wire::ReactorStats;
        let mut report = LoadReport {
            reactors: 2,
            connections: 4,
            sent: 10,
            ok: 10,
            elapsed: Duration::from_millis(125),
            latencies_us: vec![10, 20, 30],
            server: Some(StatsReply {
                requests: 10,
                requests_admitted: 8,
                shed_queue: 2,
                per_reactor: vec![
                    ReactorStats {
                        requests: 6,
                        connections: 2,
                    },
                    ReactorStats {
                        requests: 4,
                        connections: 2,
                    },
                ],
                ..StatsReply::default()
            }),
            ..LoadReport::default()
        };
        validate_report(&report_json(&report)).unwrap();

        // Break requests == admitted + shed_queue (the satellite-2 bug:
        // queue-shed requests not counted).
        report.server.as_mut().unwrap().requests = 8;
        report.server.as_mut().unwrap().per_reactor[0].requests = 4;
        let err = validate_report(&report_json(&report)).unwrap_err();
        assert!(err.contains("counter invariant"), "got: {err}");

        // Break the per-reactor decomposition.
        report.server.as_mut().unwrap().requests = 10;
        let err = validate_report(&report_json(&report)).unwrap_err();
        assert!(err.contains("per-reactor"), "got: {err}");
    }

    #[test]
    fn trajectory_compare_flags_regressions_at_equal_reactor_count() {
        let artifact = |reactors: u64, rps: f64| {
            format!("{{\"bench\":\"serving\",\"reactors\":{reactors},\"throughput_rps\":{rps}}}")
        };
        // Within 30%: passes.
        compare_reports(&artifact(1, 1000.0), &artifact(1, 750.0)).unwrap();
        // Beyond 30%: fails.
        let err = compare_reports(&artifact(1, 1000.0), &artifact(1, 600.0)).unwrap_err();
        assert!(err.contains("regressed"), "got: {err}");
        // Different reactor counts: skipped, not failed.
        let verdict = compare_reports(&artifact(1, 1000.0), &artifact(4, 100.0)).unwrap();
        assert!(verdict.starts_with("skipped"), "got: {verdict}");
        // Pre-reactor-schema previous artifact: a migration, skipped.
        let old = "{\"bench\":\"serving\",\"throughput_rps\":1000}";
        let verdict = compare_reports(old, &artifact(1, 100.0)).unwrap();
        assert!(verdict.starts_with("skipped"), "got: {verdict}");
    }

    #[test]
    fn request_stream_is_deterministic() {
        let totals = HashMap::new();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            let (ra, _) = next_request(&mut a, &totals);
            let (rb, _) = next_request(&mut b, &totals);
            assert_eq!(ra.encode(1), rb.encode(1));
        }
    }
}
