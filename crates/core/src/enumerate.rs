//! Exhaustive generation of the plan space.
//!
//! Two independent mechanisms:
//!
//! - [`PlanSpace::enumerate`] — sequential unranking of `0, 1, …, N−1`.
//!   This is the production path (the paper's "exhaustive testing" mode
//!   for small spaces) and doubles as a stress test of unranking.
//! - [`PlanSpace::enumerate_recursive`] — a direct recursive cross
//!   product over the materialized links that never touches rank
//!   arithmetic. It exists as an *independent oracle*: both enumerators
//!   must produce the same plan multiset, and their count must equal
//!   `N` — a three-way consistency check exercised by the tests.

use crate::PlanSpace;
use plansample_bignum::Nat;
use plansample_memo::{PhysId, PlanNode};

impl PlanSpace<'_> {
    /// Streams every plan of the space in rank order.
    pub fn enumerate(&self) -> impl Iterator<Item = PlanNode> + '_ {
        let total = self.total().clone();
        let mut next = Nat::zero();
        std::iter::from_fn(move || {
            if next >= total {
                return None;
            }
            let plan = self.unrank(&next).expect("ranks below the total are valid");
            next.incr();
            Some(plan)
        })
    }

    /// Enumerates by direct recursion over the links, bypassing rank
    /// arithmetic. Plans come out in the same order as
    /// [`enumerate`](Self::enumerate)
    /// (slot digits vary fastest-first), but by an independent code path.
    ///
    /// `limit` caps the output as a safety valve against accidentally
    /// materializing astronomically large spaces.
    pub fn enumerate_recursive(&self, limit: usize) -> Vec<PlanNode> {
        let mut out = Vec::new();
        let root_alternatives: Vec<PhysId> = self
            .memo
            .group(self.memo.root())
            .phys_iter()
            .map(|(id, _)| id)
            .collect();
        for v in root_alternatives {
            if out.len() >= limit {
                break;
            }
            self.expand_all(v, limit, &mut out);
        }
        out
    }

    fn expand_all(&self, v: PhysId, limit: usize, out: &mut Vec<PlanNode>) {
        // Per-slot expansions; combine as a mixed-radix counter with the
        // first slot varying fastest, matching unranking's digit order.
        let slots = self.links.children(v);
        let mut slot_plans: Vec<Vec<PlanNode>> = Vec::with_capacity(slots.len());
        for alternatives in slots {
            let mut plans = Vec::new();
            for &w in alternatives {
                self.expand_all(w, usize::MAX, &mut plans);
            }
            if plans.is_empty() {
                return; // unsatisfiable slot: no plans rooted here
            }
            slot_plans.push(plans);
        }
        let mut idx = vec![0usize; slot_plans.len()];
        loop {
            if out.len() >= limit {
                return;
            }
            out.push(PlanNode {
                id: v,
                children: idx
                    .iter()
                    .zip(&slot_plans)
                    .map(|(&i, plans)| plans[i].clone())
                    .collect(),
            });
            // increment mixed-radix counter, first slot fastest
            let mut carry = true;
            for (i, plans) in slot_plans.iter().enumerate() {
                if !carry {
                    break;
                }
                idx[i] += 1;
                if idx[i] == plans.len() {
                    idx[i] = 0;
                } else {
                    carry = false;
                }
            }
            if carry {
                return; // wrapped: all combinations emitted
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::paper_example;
    use crate::PlanSpace;
    use plansample_memo::validate_plan;

    #[test]
    fn enumerate_produces_exactly_n_distinct_plans() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let plans: Vec<_> = space.enumerate().collect();
        assert_eq!(plans.len(), 32);
        let distinct: std::collections::HashSet<String> = plans
            .iter()
            .map(|p| format!("{:?}", p.preorder_ids()))
            .collect();
        assert_eq!(distinct.len(), 32);
        for p in &plans {
            assert!(validate_plan(&ex.memo, &ex.query, p).is_empty());
        }
    }

    #[test]
    fn recursive_oracle_agrees_with_unranking() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let by_rank: Vec<_> = space.enumerate().collect();
        let by_recursion = space.enumerate_recursive(usize::MAX);
        assert_eq!(by_rank.len(), by_recursion.len());
        // Same plans in the same order: the two code paths agree exactly.
        for (i, (a, b)) in by_rank.iter().zip(&by_recursion).enumerate() {
            assert_eq!(a, b, "plan {i} differs between enumerators");
        }
    }

    #[test]
    fn limit_caps_recursive_enumeration() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        assert_eq!(space.enumerate_recursive(5).len(), 5);
        assert_eq!(space.enumerate_recursive(0).len(), 0);
        assert_eq!(space.enumerate_recursive(1000).len(), 32);
    }
}
