//! The slow statistical validation sweeps, gated behind
//! `PLANSAMPLE_STATISTICAL=1` so tier-1 `cargo test` stays fast. The CI
//! `statistical-tests` job runs this file in release mode with a pinned
//! `PLANSAMPLE_STATS_SEED`; every test is deterministic in that seed.
//!
//! Coverage beyond the fast suites:
//! - uniformity accept/reject on 6-relation chain/star/cycle spaces
//!   (10⁸–10⁹ plans, bucketed rank spectra);
//! - a 9-relation clique whose exact count needs multiple `u64` limbs —
//!   sampling there exercises multi-limb `random_below`, unranking, and
//!   ranking end-to-end;
//! - sub-space uniformity inside a large space;
//! - Figure-4-style gamma/exponential fits on sampled cost
//!   distributions, with Lilliefors-corrected (seeded
//!   parametric-bootstrap) KS goodness-of-fit p-values;
//! - sampled-vs-enumerated cost KS on a 74k-plan space.

mod common;

use common::{
    bucket_spectrum, gate, sampled_scaled_costs, seeded_rng, stats_seed, Sampler, SynthSpace,
};
use plansample_bignum::Nat;
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_stats::{
    chi_square_uniform, fit_gamma, ks_exponential_fit, ks_gamma_fit, ks_test_two_sample, Summary,
};

const BUCKETS: usize = 128;
const DRAWS: usize = 25_600; // 200 expected per bucket

#[test]
fn six_relation_topologies_accept_unranking_and_reject_naive_walk() {
    if !gate("six_relation_topologies") {
        return;
    }
    for topology in [Topology::Chain, Topology::Star, Topology::Cycle] {
        let synth = SynthSpace::build(JoinGraphSpec::new(topology, 6, 42));
        let space = synth.space();
        let mut rng = seeded_rng(11);

        let freq = bucket_spectrum(space, Sampler::Unranking, BUCKETS, DRAWS, &mut rng);
        let accept = chi_square_uniform(&freq).unwrap();
        assert!(
            !accept.rejects_at(0.001),
            "{}: uniformity rejected: {accept}",
            synth.label
        );
        assert!(
            accept.effect_size() < 0.1,
            "{}: residual effect w = {}",
            synth.label,
            accept.effect_size()
        );

        let freq = bucket_spectrum(space, Sampler::NaiveWalk, BUCKETS, DRAWS, &mut rng);
        let reject = chi_square_uniform(&freq).unwrap();
        assert!(
            reject.rejects_at(1e-6),
            "{}: naive walk passed: {reject}",
            synth.label
        );
        assert!(
            reject.effect_size() > 0.3,
            "{}: naive-walk bias w = {} below medium effect",
            synth.label,
            reject.effect_size()
        );
        eprintln!(
            "{}: N = {}, accept w = {:.3}, naive w = {:.3}",
            synth.label,
            space.total(),
            accept.effect_size(),
            reject.effect_size()
        );
    }
}

#[test]
fn multi_limb_clique_space_is_sampled_uniformly() {
    if !gate("multi_limb_clique_space") {
        return;
    }
    let synth = SynthSpace::build(JoinGraphSpec::new(Topology::Clique, 9, 42));
    let space = synth.space();
    assert!(
        space.total().limbs().len() >= 2,
        "space {} fits one limb — not a multi-limb stress",
        space.total()
    );

    let mut rng = seeded_rng(12);
    let freq = bucket_spectrum(space, Sampler::Unranking, BUCKETS, DRAWS, &mut rng);
    let accept = chi_square_uniform(&freq).unwrap();
    assert!(
        !accept.rejects_at(0.001),
        "clique-9 ({} plans): uniformity rejected: {accept}",
        space.total()
    );

    let freq = bucket_spectrum(space, Sampler::NaiveWalk, BUCKETS, DRAWS, &mut rng);
    let reject = chi_square_uniform(&freq).unwrap();
    assert!(
        reject.rejects_at(1e-6),
        "clique-9: naive walk passed: {reject}"
    );
    assert!(
        reject.effect_size() > 0.3,
        "clique-9: naive-walk bias w = {}",
        reject.effect_size()
    );
    eprintln!(
        "clique-9: N = {} ({} limbs), naive w = {:.3}",
        space.total(),
        space.total().limbs().len(),
        reject.effect_size()
    );
}

#[test]
fn subspace_sampling_is_uniform_inside_a_large_space() {
    if !gate("subspace_in_large_space") {
        return;
    }
    let synth = SynthSpace::build(JoinGraphSpec::new(Topology::Star, 6, 42));
    let space = synth.space();

    // Two sub-space roots from the root group of a ~1.6e9-plan space:
    // bucket the *local* ranks of rooted samples. Rooted counts must
    // dwarf the bucket count, or integer bucket boundaries would skew
    // expectations and falsely reject a uniform sampler.
    let floor = Nat::from((BUCKETS * BUCKETS) as u64);
    let roots: Vec<_> = synth
        .memo()
        .group(synth.memo().root())
        .phys_iter()
        .map(|(id, _)| id)
        .filter(|&id| *space.count_rooted(id) >= floor)
        .take(2)
        .collect();
    assert_eq!(roots.len(), 2, "root group lacks two large sub-spaces");

    for v in roots {
        let count = space.count_rooted(v).clone();
        let b = Nat::from(BUCKETS);
        let mut freq = vec![0usize; BUCKETS];
        let mut rng = seeded_rng(13 + v.index as u64);
        for _ in 0..DRAWS {
            let plan = space.sample_rooted(&mut rng, v);
            assert_eq!(plan.id, v);
            let local = space.rank_rooted(&plan).unwrap();
            let (bucket, _) = (&local * &b).div_rem(&count);
            freq[bucket.to_u64().unwrap() as usize] += 1;
        }
        let test = chi_square_uniform(&freq).unwrap();
        assert!(
            !test.rejects_at(0.001),
            "sub-space at {v} ({count} plans) not uniform: {test}"
        );
    }
}

#[test]
fn sampled_costs_ks_match_enumeration_on_74k_plan_space() {
    if !gate("costs_vs_enumeration_74k") {
        return;
    }
    let synth = SynthSpace::build(JoinGraphSpec::new(Topology::Chain, 4, 42));
    let space = synth.space();
    let n = space.total().to_u64().unwrap();
    assert!(n > 50_000, "chain-4 space unexpectedly small: {n}");

    let exhaustive: Vec<f64> = space
        .enumerate()
        .map(|p| p.total_cost(synth.memo()) / synth.best_cost)
        .collect();
    let mut rng = seeded_rng(14);
    let sampled = sampled_scaled_costs(&synth, space, 10_000, &mut rng);
    let test = ks_test_two_sample(&sampled, &exhaustive).unwrap();
    assert!(
        !test.rejects_at(0.001),
        "sampled cost distribution diverges from exhaustive: {test}"
    );
    eprintln!(
        "chain-4: D = {:.4} over {} sampled vs {} enumerated costs",
        test.statistic,
        sampled.len(),
        exhaustive.len()
    );
}

/// §5 of the paper: sampled cost distributions of join-heavy queries
/// resemble "exponential distributions … Gamma-distributions with shape
/// parameter close to 1". Checked here on synthetic spaces (the TPC-H
/// versions are recorded in docs/EXPERIMENTS.md via the figure4 binary).
#[test]
fn cost_distributions_fit_gamma_with_small_shape() {
    if !gate("gamma_fits") {
        return;
    }
    for topology in [Topology::Chain, Topology::Star, Topology::Cycle] {
        let synth = SynthSpace::build(JoinGraphSpec::new(topology, 6, 42));
        let space = synth.space();
        let mut rng = seeded_rng(15);
        let costs = sampled_scaled_costs(&synth, space, 10_000, &mut rng);
        let s = Summary::of(&costs);
        assert!(s.min() >= 1.0 - 1e-9, "scaled costs start at the optimum");

        // Heavy-tailed cost spaces: fit the Figure-4 view (lower half),
        // as the paper plots, not the outlier-dominated full range.
        let cut = s.quantile(0.5);
        let lower: Vec<f64> = costs.iter().copied().filter(|&c| c <= cut).collect();
        let gamma = fit_gamma(&lower);
        // Synthetic spaces need not reproduce TPC-H's "shape ≈ 1" —
        // only a plausible, finite MLE (observed range here: ~1.9–6.2).
        assert!(
            gamma.shape > 0.05 && gamma.shape < 25.0,
            "{}: implausible gamma shape {}",
            synth.label,
            gamma.shape
        );
        // Lilliefors-corrected (parametric-bootstrap) goodness-of-fit:
        // the honest p-values replacing the optimistic Kolmogorov
        // bound the fixed-CDF KS test would report for these
        // estimated-parameter fits.
        let gamma_gof = ks_gamma_fit(&lower, 99, stats_seed()).unwrap();
        let expo_gof = ks_exponential_fit(&lower, 99, stats_seed()).unwrap();
        eprintln!(
            "{}: gamma shape = {:.3}, gamma D = {:.3} (bootstrap p = {:.3}), \
             expo D = {:.3} (bootstrap p = {:.3})",
            synth.label,
            gamma.shape,
            gamma_gof.statistic,
            gamma_gof.p_value,
            expo_gof.statistic,
            expo_gof.p_value
        );
        // The correction is a one-way ratchet: estimating parameters
        // from the sample can only make the test *harder* to pass, so
        // the bootstrap p can exceed the optimistic fixed-CDF bound by
        // at most Monte-Carlo noise.
        let optimistic = gamma.goodness_of_fit(&lower).unwrap();
        assert!(
            gamma_gof.p_value <= optimistic.p_value + 0.1,
            "{}: bootstrap p {} more lenient than the optimistic bound {}",
            synth.label,
            gamma_gof.p_value,
            optimistic.p_value
        );
        // Pinned seed ⇒ bit-identical p-values run-to-run (the property
        // the CI statistical job relies on).
        let rerun = ks_gamma_fit(&lower, 99, stats_seed()).unwrap();
        assert_eq!(
            rerun.p_value, gamma_gof.p_value,
            "{}: bootstrap must be deterministic in the seed",
            synth.label
        );
        // The MLE gamma can never fit worse than a fixed-shape-1 gamma
        // family member fitted by the same moments — sanity bound only,
        // exact distances are recorded in EXPERIMENTS.md.
        assert!(
            gamma_gof.statistic <= expo_gof.statistic + 0.05,
            "{}: gamma (D={}) much worse than its shape-1 special case (D={})",
            synth.label,
            gamma_gof.statistic,
            expo_gof.statistic
        );
    }
}
