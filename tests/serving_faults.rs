//! Fault injection against the network front end: hostile and broken
//! clients — truncated frames, oversized length prefixes, mid-frame
//! disconnects, slow-loris trickles, unknown opcodes, bad protocol
//! versions — must each produce a typed error reply or a clean close,
//! and must never panic the server, wedge its event loop, or corrupt
//! the replies of a well-behaved connection sharing it.
//!
//! Every scenario asserts the same invariant at the end: a fresh,
//! well-formed request against the *same* server still gets a correct
//! answer.

use plansample_serve::server::{self, ServerConfig};
use plansample_serve::wire::{self, ErrorCode, Request, Response, PROTOCOL_VERSION};
use plansample_serve::{Client, ServerHandle, Workload};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A short slow-loris window so the test completes quickly; everything
/// else at defaults.
fn start_server() -> ServerHandle {
    server::start(ServerConfig {
        workers: 2,
        frame_timeout: Duration::from_millis(250),
        ..ServerConfig::default()
    })
    .expect("server starts on an ephemeral port")
}

const SQL: &str = "SELECT * FROM region WHERE region.r_regionkey < 3";

/// The liveness probe every scenario ends with: the server still
/// answers a fresh well-formed request correctly.
fn assert_still_serving(handle: &ServerHandle) {
    let mut client = Client::connect(handle.addr()).expect("fresh connection accepted");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    match client.call(&Request::Count(Workload::Sql(SQL.into()))) {
        Ok(Response::Count(total)) => assert!(!total.is_zero(), "plan space is non-empty"),
        other => panic!("server no longer serving: {other:?}"),
    }
}

/// Reads one `(request_id, response)` frame off a raw stream.
fn read_reply(stream: &mut TcpStream) -> Option<(u64, Response)> {
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut buf = Vec::new();
    loop {
        if let Some((payload, consumed)) = wire::split_frame(&buf).expect("reply frames are valid")
        {
            let reply = Response::decode(payload).expect("reply decodes");
            buf.drain(..consumed);
            return Some(reply);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

/// Reads until EOF, asserting it arrives (clean close).
fn assert_closed(stream: &mut TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(_) => continue, // drain any buffered replies
            Err(e) => panic!("expected clean close, got {e}"),
        }
    }
}

#[test]
fn truncated_frame_then_disconnect_leaves_server_serving() {
    let handle = start_server();
    for cut in [1, 3, 4, 7] {
        let full = wire::frame(&Request::Count(Workload::Sql(SQL.into())).encode(9));
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(&full[..cut]).unwrap();
        drop(stream); // mid-frame disconnect
    }
    assert_still_serving(&handle);
    handle.stop();
}

#[test]
fn oversized_length_prefix_gets_typed_error_then_close() {
    let handle = start_server();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // Claim a payload far beyond the bound, then supply a few bytes.
    stream
        .write_all(&(wire::MAX_FRAME_LEN + 1).to_le_bytes())
        .unwrap();
    stream.write_all(&[0u8; 32]).unwrap();
    let (id, reply) = read_reply(&mut stream).expect("typed reply before close");
    assert_eq!(
        id,
        wire::CONNECTION_REQUEST_ID,
        "framing errors have no request id"
    );
    match reply {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Oversized),
        other => panic!("expected Oversized error, got {other:?}"),
    }
    assert_closed(&mut stream);
    assert_still_serving(&handle);
    handle.stop();
}

#[test]
fn bad_version_gets_typed_error_then_close() {
    let handle = start_server();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // Valid frame, unsupported version byte.
    let mut payload = Request::Stats.encode(5);
    payload[0] = PROTOCOL_VERSION + 41;
    stream.write_all(&wire::frame(&payload)).unwrap();
    let (id, reply) = read_reply(&mut stream).expect("typed reply before close");
    assert_eq!(id, wire::CONNECTION_REQUEST_ID);
    match reply {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadVersion),
        other => panic!("expected BadVersion error, got {other:?}"),
    }
    assert_closed(&mut stream);
    assert_still_serving(&handle);
    handle.stop();
}

#[test]
fn unknown_opcode_gets_typed_error_and_connection_survives() {
    let handle = start_server();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // Valid header shape, opcode the protocol does not define.
    let mut payload = Request::Stats.encode(77);
    payload[1] = 0x7E;
    stream.write_all(&wire::frame(&payload)).unwrap();
    let (id, reply) = read_reply(&mut stream).expect("typed reply");
    assert_eq!(id, 77, "frame-delimited errors echo the request id");
    match reply {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownOpcode),
        other => panic!("expected UnknownOpcode error, got {other:?}"),
    }
    // The SAME connection keeps serving: opcode errors are recoverable.
    stream
        .write_all(&wire::frame(&Request::Stats.encode(78)))
        .unwrap();
    let (id, reply) = read_reply(&mut stream).expect("connection still serving");
    assert_eq!(id, 78);
    assert!(matches!(reply, Response::Stats(_)), "got {reply:?}");
    assert_still_serving(&handle);
    handle.stop();
}

#[test]
fn malformed_body_gets_typed_error_and_connection_survives() {
    let handle = start_server();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // Valid header (version, Count opcode, id), body cut mid-workload.
    let good = Request::Count(Workload::Sql(SQL.into())).encode(13);
    stream.write_all(&wire::frame(&good[..12])).unwrap();
    let (id, reply) = read_reply(&mut stream).expect("typed reply");
    assert_eq!(id, 13);
    match reply {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest error, got {other:?}"),
    }
    stream.write_all(&wire::frame(&good)).unwrap();
    let (id, reply) = read_reply(&mut stream).expect("connection still serving");
    assert_eq!(id, 13);
    assert!(matches!(reply, Response::Count(_)), "got {reply:?}");
    handle.stop();
}

#[test]
fn slow_loris_connection_is_closed_but_server_survives() {
    let handle = start_server();
    let full = wire::frame(&Request::Count(Workload::Sql(SQL.into())).encode(1));
    // Trickle one byte at a time, never completing the frame within the
    // 250ms window. Each byte must NOT reset the deadline.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut closed = false;
    for byte in full.iter().take(full.len() - 1) {
        if stream.write_all(std::slice::from_ref(byte)).is_err() {
            closed = true; // server already hung up mid-trickle
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    if !closed {
        // The frame is still incomplete; the server must hang up rather
        // than hold the half-frame forever.
        let mut chunk = [0u8; 16];
        match stream.read(&mut chunk) {
            Ok(0) => {}
            Ok(n) => panic!("unexpected {n} reply bytes for an incomplete frame"),
            Err(e) => panic!("expected clean close, got {e}"),
        }
    }
    assert_still_serving(&handle);
    handle.stop();
}

#[test]
fn pipelined_burst_beyond_pipeline_bound_is_fully_answered() {
    // A burst larger than `max_pipeline` lands in the server's input
    // buffer at once. The excess frames generate no further POLLIN, so
    // they must be re-parsed as worker slots free up — and complete
    // frames merely waiting for a slot must not trip the slow-loris
    // deadline (250ms here, far shorter than the burst takes to drain
    // through a pipeline of 4).
    let handle = server::start(ServerConfig {
        workers: 2,
        max_pipeline: 4,
        frame_timeout: Duration::from_millis(250),
        ..ServerConfig::default()
    })
    .expect("server starts on an ephemeral port");
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut ids = std::collections::HashSet::new();
    for _ in 0..32 {
        let id = client
            .send(&Request::Count(Workload::Sql(SQL.into())))
            .expect("burst sends succeed");
        ids.insert(id);
    }
    for _ in 0..ids.len() {
        let (id, reply) = client.recv().expect("every pipelined request is answered");
        assert!(ids.remove(&id), "unknown or duplicate reply id {id}");
        assert!(matches!(reply, Response::Count(_)), "got {reply:?}");
    }
    assert!(ids.is_empty(), "unanswered requests: {ids:?}");
    assert_still_serving(&handle);
    handle.stop();
}

#[test]
fn pipelined_burst_then_half_close_still_answers_everything() {
    // Same burst, but the client half-closes right after sending: EOF
    // must not discard the buffered requests — every one is answered,
    // then the server closes cleanly.
    let handle = server::start(ServerConfig {
        workers: 2,
        max_pipeline: 4,
        frame_timeout: Duration::from_millis(250),
        ..ServerConfig::default()
    })
    .expect("server starts on an ephemeral port");
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut expected = std::collections::HashSet::new();
    for id in 1u64..=32 {
        stream
            .write_all(&wire::frame(&Request::Stats.encode(id)))
            .unwrap();
        expected.insert(id);
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    // Accumulate the whole reply stream until EOF, then parse: replies
    // to a pipelined burst arrive many-per-read.
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
    while let Some((payload, consumed)) = wire::split_frame(&buf).expect("reply frames are valid") {
        let (id, reply) = Response::decode(payload).expect("reply decodes");
        assert!(expected.remove(&id), "unknown or duplicate reply id {id}");
        assert!(matches!(reply, Response::Stats(_)), "got {reply:?}");
        buf.drain(..consumed);
    }
    assert!(buf.is_empty(), "{} trailing reply bytes", buf.len());
    assert!(
        expected.is_empty(),
        "requests dropped at half-close: {expected:?}"
    );
    assert_still_serving(&handle);
    handle.stop();
}

#[test]
fn huge_sql_error_reply_is_clamped_within_frame_bound() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    // A ~520KB single-line malformed query is legal under the request
    // frame bound, but the parse diagnostic quotes the offending line
    // (plus a caret line of equal width): unclamped, the reply would
    // exceed MAX_FRAME_LEN and this very client would fail the
    // connection on the server's own reply.
    let sql = format!("SELECT * FROM {}", "x".repeat(520 * 1024));
    match client.call(&Request::Count(Workload::Sql(sql))) {
        Ok(Response::Error { code, message }) => {
            assert_eq!(code, ErrorCode::Sql);
            assert!(
                message.len() <= wire::MAX_ERROR_MESSAGE_LEN,
                "diagnostic not clamped: {} bytes",
                message.len()
            );
        }
        other => panic!("expected a typed SQL error, got {other:?}"),
    }
    assert_still_serving(&handle);
    handle.stop();
}

#[test]
fn concurrent_good_client_is_undisturbed_by_abuse() {
    let handle = start_server();
    let addr = handle.addr();
    let abuse = std::thread::spawn(move || {
        for round in 0u8..12 {
            let Ok(mut stream) = TcpStream::connect(addr) else {
                continue;
            };
            match round % 4 {
                0 => {
                    // Oversized prefix.
                    let _ = stream.write_all(&(wire::MAX_FRAME_LEN + 7).to_le_bytes());
                }
                1 => {
                    // Unknown opcode.
                    let mut payload = Request::Stats.encode(round as u64);
                    payload[1] = 0xEE;
                    let _ = stream.write_all(&wire::frame(&payload));
                }
                2 => {
                    // Mid-frame disconnect.
                    let full = wire::frame(&Request::Stats.encode(round as u64));
                    let _ = stream.write_all(&full[..5]);
                }
                _ => {
                    // Random garbage.
                    let _ = stream.write_all(&[round; 64]);
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    });

    // Meanwhile the good client's replies must all be correct and
    // correlated: same query, same total, every id echoed.
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut reference = None;
    for _ in 0..30 {
        match client.call(&Request::Count(Workload::Sql(SQL.into()))) {
            Ok(Response::Count(total)) => {
                let total = total.clone();
                match &reference {
                    None => reference = Some(total),
                    Some(expected) => assert_eq!(&total, expected, "reply changed under abuse"),
                }
            }
            other => panic!("good client disturbed: {other:?}"),
        }
    }
    abuse.join().unwrap();
    assert_still_serving(&handle);
    handle.stop();
}
