//! Figure-2-style textual rendering of a MEMO.
//!
//! Prints every group with its physical expressions, child-group
//! references, delivered orders, and costs — the layout of the paper's
//! Figure 2/3 diagrams, as text. Used by the CLI's `memo` command and
//! handy when debugging rule changes.

use crate::{GroupKey, Memo, PhysicalOp, SortOrder};
use plansample_catalog::Catalog;
use plansample_query::QuerySpec;
use std::fmt::Write as _;

fn order_text(query: &QuerySpec, catalog: &Catalog, order: &SortOrder) -> String {
    if order.is_unsorted() {
        "-".to_string()
    } else {
        order
            .cols()
            .iter()
            .map(|&c| query.col_name(catalog, c))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Renders the memo structure as text.
pub fn render_memo(memo: &Memo, query: &QuerySpec, catalog: &Catalog) -> String {
    let mut out = String::new();
    for group in memo.groups() {
        let goal = match group.key {
            GroupKey::Rels(set) => {
                let names: Vec<&str> = set
                    .iter()
                    .map(|r| query.relations[r.idx()].alias.as_str())
                    .collect();
                format!("{{{}}}", names.join(", "))
            }
            GroupKey::Agg => "aggregate".to_string(),
        };
        let root_marker = if group.id == memo.root() {
            "  (root)"
        } else {
            ""
        };
        let _ = writeln!(out, "Group {} — {goal}{root_marker}", group.id.0);
        for (id, expr) in group.phys_iter() {
            let operands = match &expr.op {
                PhysicalOp::TableScan { rel } | PhysicalOp::SortedIdxScan { rel, .. } => {
                    query.relations[rel.idx()].alias.clone()
                }
                PhysicalOp::Sort { target } => {
                    format!("g{} by {}", group.id.0, order_text(query, catalog, target))
                }
                PhysicalOp::NestedLoopJoin { left, right }
                | PhysicalOp::HashJoin { left, right } => format!("g{}, g{}", left.0, right.0),
                PhysicalOp::MergeJoin {
                    left,
                    right,
                    left_key,
                    right_key,
                } => format!(
                    "g{}, g{} on {} = {}",
                    left.0,
                    right.0,
                    query.col_name(catalog, *left_key),
                    query.col_name(catalog, *right_key)
                ),
                PhysicalOp::HashAgg { input } | PhysicalOp::StreamAgg { input, .. } => {
                    format!("g{}", input.0)
                }
            };
            let _ = writeln!(
                out,
                "  {id}  {:<15} [{operands}]  delivers: {:<12} cost: {:.0}  rows: {:.0}",
                expr.op.name(),
                order_text(query, catalog, &expr.delivered()),
                expr.local_cost,
                expr.out_card
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhysicalExpr;
    use plansample_catalog::{table, ColType};
    use plansample_query::{ColRef, QueryBuilder, RelId, RelSet};

    #[test]
    fn renders_groups_operators_and_properties() {
        let mut catalog = Catalog::new();
        catalog
            .add_table(
                table("a", 10)
                    .col("k", ColType::Int, 10)
                    .index_on(0)
                    .build(),
            )
            .unwrap();
        let mut qb = QueryBuilder::new(&catalog);
        qb.rel("a", None).unwrap();
        let query = qb.build().unwrap();

        let mut memo = Memo::new();
        let g = memo.add_group(GroupKey::Rels(RelSet::singleton(RelId(0))));
        let k = ColRef {
            rel: RelId(0),
            col: 0,
        };
        memo.add_physical(
            g,
            PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(0) }, 10.0, 10.0),
        )
        .unwrap();
        memo.add_physical(
            g,
            PhysicalExpr::new(
                PhysicalOp::SortedIdxScan {
                    rel: RelId(0),
                    col: k,
                },
                12.0,
                10.0,
            ),
        )
        .unwrap();
        memo.set_root(g);

        let text = render_memo(&memo, &query, &catalog);
        assert!(text.contains("Group 0 — {a}  (root)"));
        assert!(text.contains("TableScan"));
        assert!(text.contains("SortedIdxScan"));
        assert!(text.contains("delivers: a.k"));
        assert!(text.contains("0.1"), "paper-style expression ids");
    }

    #[test]
    fn renders_joins_with_group_references() {
        let ex = build_two_group_memo();
        let text = render_memo(&ex.0, &ex.1, &ex.2);
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("[g0, g1]"), "{text}");
    }

    fn build_two_group_memo() -> (Memo, QuerySpec, Catalog) {
        let mut catalog = Catalog::new();
        catalog
            .add_table(table("a", 10).col("x", ColType::Int, 10).build())
            .unwrap();
        catalog
            .add_table(table("b", 10).col("y", ColType::Int, 10).build())
            .unwrap();
        let mut qb = QueryBuilder::new(&catalog);
        qb.rel("a", None).unwrap();
        qb.rel("b", None).unwrap();
        qb.join(("a", "x"), ("b", "y")).unwrap();
        let query = qb.build().unwrap();

        let mut memo = Memo::new();
        let ga = memo.add_group(GroupKey::Rels(RelSet::singleton(RelId(0))));
        let gb = memo.add_group(GroupKey::Rels(RelSet::singleton(RelId(1))));
        let gab = memo.add_group(GroupKey::Rels(RelSet::all(2)));
        for (g, rel) in [(ga, RelId(0)), (gb, RelId(1))] {
            memo.add_physical(
                g,
                PhysicalExpr::new(PhysicalOp::TableScan { rel }, 10.0, 10.0),
            )
            .unwrap();
        }
        memo.add_physical(
            gab,
            PhysicalExpr::new(
                PhysicalOp::HashJoin {
                    left: ga,
                    right: gb,
                },
                25.0,
                10.0,
            ),
        )
        .unwrap();
        memo.set_root(gab);
        (memo, query, catalog)
    }
}
