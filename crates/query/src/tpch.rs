//! The paper's workload: join graphs of TPC-H Q5, Q6, Q7, Q8, Q9.
//!
//! §5 studies the join-intensive queries Q5/Q7/Q8/Q9 ("which are the
//! join-intensive queries of the benchmark, and have a larger search
//! space") and mentions Q6 as a small-query control whose cost
//! distribution is "only random noise". We model each query's FROM/WHERE
//! join structure and its filter selectivities; scalar expressions inside
//! aggregates are simplified to single-column aggregates (the plan space —
//! what the paper studies — is untouched by this, since expressions do not
//! add join alternatives).
//!
//! Date literals are encoded as `days since 1992-01-01` integers; the
//! explicit range selectivities follow the TPC-H predicate definitions
//! (e.g. one year out of the 7-year order interval ≈ 1/7).

use crate::{AggFunc, CmpOp, QueryBuilder, QuerySpec};
use plansample_catalog::Catalog;

/// Day offset for a `(year, month)` start-of-month since 1992-01-01,
/// with 30.4-day months — precise enough for synthetic date predicates.
fn day(year: i64, month: i64) -> i64 {
    (year - 1992) * 365 + ((month - 1) as f64 * 30.4) as i64
}

/// TPC-H Q3: shipping priority — `customer ⋈ orders ⋈ lineitem`, the
/// smallest join-bearing query modelled (3 relations; useful for
/// exhaustive validation).
pub fn q3(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    qb.rel("customer", Some("c")).unwrap();
    qb.rel("orders", Some("o")).unwrap();
    qb.rel("lineitem", Some("l")).unwrap();

    qb.join(("c", "c_custkey"), ("o", "o_custkey")).unwrap();
    qb.join(("l", "l_orderkey"), ("o", "o_orderkey")).unwrap();

    qb.filter(("c", "c_mktsegment"), CmpOp::Eq, "BUILDING")
        .unwrap();
    // o_orderdate < 1995-03-15 ≈ first 3.2 of 7 years.
    qb.filter_sel(("o", "o_orderdate"), CmpOp::Lt, day(1995, 3), 0.46)
        .unwrap();
    // l_shipdate > 1995-03-15.
    qb.filter_sel(("l", "l_shipdate"), CmpOp::Gt, day(1995, 3), 0.54)
        .unwrap();

    qb.aggregate(
        &[("l", "l_orderkey")],
        &[(AggFunc::Sum, Some(("l", "l_extendedprice")))],
    )
    .unwrap();
    qb.build().unwrap()
}

/// TPC-H Q5: `customer ⋈ orders ⋈ lineitem ⋈ supplier ⋈ nation ⋈ region`
/// — 6 relations, a cycle through customer/supplier nationkeys.
pub fn q5(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    qb.rel("customer", Some("c")).unwrap();
    qb.rel("orders", Some("o")).unwrap();
    qb.rel("lineitem", Some("l")).unwrap();
    qb.rel("supplier", Some("s")).unwrap();
    qb.rel("nation", Some("n")).unwrap();
    qb.rel("region", Some("r")).unwrap();

    qb.join(("c", "c_custkey"), ("o", "o_custkey")).unwrap();
    qb.join(("l", "l_orderkey"), ("o", "o_orderkey")).unwrap();
    qb.join(("l", "l_suppkey"), ("s", "s_suppkey")).unwrap();
    qb.join(("c", "c_nationkey"), ("s", "s_nationkey")).unwrap();
    qb.join(("s", "s_nationkey"), ("n", "n_nationkey")).unwrap();
    qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();

    qb.filter(("r", "r_name"), CmpOp::Eq, "ASIA").unwrap();
    // o_orderdate in [1994-01-01, 1995-01-01): one of seven years.
    qb.filter_sel(("o", "o_orderdate"), CmpOp::Ge, day(1994, 1), 1.0 / 7.0)
        .unwrap();

    qb.aggregate(
        &[("n", "n_name")],
        &[(AggFunc::Sum, Some(("l", "l_extendedprice")))],
    )
    .unwrap();
    qb.build().unwrap()
}

/// TPC-H Q6: single-table scan of `lineitem` — the control query whose
/// plan space is tiny and whose cost distribution is pure noise (§5).
pub fn q6(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    qb.rel("lineitem", Some("l")).unwrap();
    qb.filter_sel(("l", "l_shipdate"), CmpOp::Ge, day(1994, 1), 1.0 / 7.0)
        .unwrap();
    // l_discount between 5% and 7%: 3 of the 11 discount values
    // (discounts are stored as integer percent).
    qb.filter_sel(("l", "l_discount"), CmpOp::Ge, 5i64, 3.0 / 11.0)
        .unwrap();
    // l_quantity < 24: slightly under half of the 1..=50 domain.
    qb.filter_sel(("l", "l_quantity"), CmpOp::Lt, 24i64, 23.0 / 50.0)
        .unwrap();
    qb.aggregate(&[], &[(AggFunc::Sum, Some(("l", "l_extendedprice")))])
        .unwrap();
    qb.build().unwrap()
}

/// TPC-H Q7: volume shipping — a self-join on `nation` (n1 supplier-side,
/// n2 customer-side), 6 relations.
pub fn q7(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    qb.rel("supplier", Some("s")).unwrap();
    qb.rel("lineitem", Some("l")).unwrap();
    qb.rel("orders", Some("o")).unwrap();
    qb.rel("customer", Some("c")).unwrap();
    qb.rel("nation", Some("n1")).unwrap();
    qb.rel("nation", Some("n2")).unwrap();

    qb.join(("s", "s_suppkey"), ("l", "l_suppkey")).unwrap();
    qb.join(("o", "o_orderkey"), ("l", "l_orderkey")).unwrap();
    qb.join(("c", "c_custkey"), ("o", "o_custkey")).unwrap();
    qb.join(("s", "s_nationkey"), ("n1", "n_nationkey"))
        .unwrap();
    qb.join(("c", "c_nationkey"), ("n2", "n_nationkey"))
        .unwrap();

    qb.filter(("n1", "n_name"), CmpOp::Eq, "FRANCE").unwrap();
    qb.filter(("n2", "n_name"), CmpOp::Eq, "GERMANY").unwrap();
    // l_shipdate in [1995-01-01, 1996-12-31]: two of seven years.
    qb.filter_sel(("l", "l_shipdate"), CmpOp::Ge, day(1995, 1), 2.0 / 7.0)
        .unwrap();

    qb.aggregate(
        &[("n1", "n_name"), ("n2", "n_name")],
        &[(AggFunc::Sum, Some(("l", "l_extendedprice")))],
    )
    .unwrap();
    qb.build().unwrap()
}

/// TPC-H Q8: national market share — the largest space studied in the
/// paper: 8 relations including two `nation` instances and `region`.
pub fn q8(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    qb.rel("part", Some("p")).unwrap();
    qb.rel("supplier", Some("s")).unwrap();
    qb.rel("lineitem", Some("l")).unwrap();
    qb.rel("orders", Some("o")).unwrap();
    qb.rel("customer", Some("c")).unwrap();
    qb.rel("nation", Some("n1")).unwrap();
    qb.rel("nation", Some("n2")).unwrap();
    qb.rel("region", Some("r")).unwrap();

    qb.join(("p", "p_partkey"), ("l", "l_partkey")).unwrap();
    qb.join(("s", "s_suppkey"), ("l", "l_suppkey")).unwrap();
    qb.join(("l", "l_orderkey"), ("o", "o_orderkey")).unwrap();
    qb.join(("o", "o_custkey"), ("c", "c_custkey")).unwrap();
    qb.join(("c", "c_nationkey"), ("n1", "n_nationkey"))
        .unwrap();
    qb.join(("n1", "n_regionkey"), ("r", "r_regionkey"))
        .unwrap();
    qb.join(("s", "s_nationkey"), ("n2", "n_nationkey"))
        .unwrap();

    qb.filter(("r", "r_name"), CmpOp::Eq, "AMERICA").unwrap();
    // o_orderdate in [1995-01-01, 1996-12-31].
    qb.filter_sel(("o", "o_orderdate"), CmpOp::Ge, day(1995, 1), 2.0 / 7.0)
        .unwrap();
    qb.filter(("p", "p_type"), CmpOp::Eq, "ECONOMY ANODIZED STEEL")
        .unwrap();

    qb.aggregate(
        &[("n2", "n_name")],
        &[(AggFunc::Sum, Some(("l", "l_extendedprice")))],
    )
    .unwrap();
    qb.build().unwrap()
}

/// TPC-H Q9: product type profit — 6 relations with a cyclic core
/// (`lineitem` joined to `part`, `supplier` and `partsupp` on shared
/// keys).
pub fn q9(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    qb.rel("part", Some("p")).unwrap();
    qb.rel("supplier", Some("s")).unwrap();
    qb.rel("lineitem", Some("l")).unwrap();
    qb.rel("partsupp", Some("ps")).unwrap();
    qb.rel("orders", Some("o")).unwrap();
    qb.rel("nation", Some("n")).unwrap();

    qb.join(("s", "s_suppkey"), ("l", "l_suppkey")).unwrap();
    qb.join(("ps", "ps_suppkey"), ("l", "l_suppkey")).unwrap();
    qb.join(("ps", "ps_partkey"), ("l", "l_partkey")).unwrap();
    qb.join(("p", "p_partkey"), ("l", "l_partkey")).unwrap();
    qb.join(("o", "o_orderkey"), ("l", "l_orderkey")).unwrap();
    qb.join(("s", "s_nationkey"), ("n", "n_nationkey")).unwrap();

    // p_name LIKE '%green%': roughly 1/18 of part names contain a given
    // colour word (55 colour candidates, ~3 words per name).
    qb.filter_sel(("p", "p_name"), CmpOp::Eq, "green", 0.055)
        .unwrap();

    qb.aggregate(
        &[("n", "n_name")],
        &[(AggFunc::Sum, Some(("l", "l_extendedprice")))],
    )
    .unwrap();
    qb.build().unwrap()
}

/// TPC-H Q10: returned-item reporting, simplified to its join core —
/// `customer ⋈ orders ⋈ lineitem ⋈ nation` grouped by nation (the
/// official query groups by customer; the join graph, which is what the
/// plan space depends on, is identical).
pub fn q10(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    qb.rel("customer", Some("c")).unwrap();
    qb.rel("orders", Some("o")).unwrap();
    qb.rel("lineitem", Some("l")).unwrap();
    qb.rel("nation", Some("n")).unwrap();

    qb.join(("c", "c_custkey"), ("o", "o_custkey")).unwrap();
    qb.join(("l", "l_orderkey"), ("o", "o_orderkey")).unwrap();
    qb.join(("c", "c_nationkey"), ("n", "n_nationkey")).unwrap();

    // One quarter of the 7-year order interval.
    qb.filter_sel(("o", "o_orderdate"), CmpOp::Ge, day(1993, 10), 1.0 / 28.0)
        .unwrap();

    qb.aggregate(
        &[("n", "n_name")],
        &[(AggFunc::Sum, Some(("l", "l_extendedprice")))],
    )
    .unwrap();
    qb.build().unwrap()
}

/// All modelled queries, labelled. Q5/Q7/Q8/Q9 are the paper's Table 1
/// rows; Q3/Q10 are smaller join queries for exhaustive-mode testing;
/// Q6 is the single-table control.
pub fn all(catalog: &Catalog) -> Vec<(&'static str, QuerySpec)> {
    vec![
        ("Q3", q3(catalog)),
        ("Q5", q5(catalog)),
        ("Q6", q6(catalog)),
        ("Q7", q7(catalog)),
        ("Q8", q8(catalog)),
        ("Q9", q9(catalog)),
        ("Q10", q10(catalog)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_catalog::tpch;

    #[test]
    fn relation_counts_match_tpch() {
        let (cat, _) = tpch::catalog();
        assert_eq!(q3(&cat).relations.len(), 3);
        assert_eq!(q5(&cat).relations.len(), 6);
        assert_eq!(q6(&cat).relations.len(), 1);
        assert_eq!(q7(&cat).relations.len(), 6);
        assert_eq!(q8(&cat).relations.len(), 8);
        assert_eq!(q9(&cat).relations.len(), 6);
        assert_eq!(q10(&cat).relations.len(), 4);
    }

    #[test]
    fn join_graphs_are_connected() {
        let (cat, _) = tpch::catalog();
        for (name, spec) in all(&cat) {
            assert!(
                spec.connected(spec.all_rels()),
                "{name} join graph must be connected"
            );
        }
    }

    #[test]
    fn q7_has_nation_self_join() {
        let (cat, _) = tpch::catalog();
        let spec = q7(&cat);
        let n1 = &spec.relations[4];
        let n2 = &spec.relations[5];
        assert_eq!(n1.table, n2.table);
        assert_ne!(n1.alias, n2.alias);
    }

    #[test]
    fn q9_core_is_cyclic() {
        // Removing any one edge of the ps/l/p triangle keeps it connected.
        let (cat, _) = tpch::catalog();
        let spec = q9(&cat);
        assert_eq!(spec.join_edges.len(), 6);
        assert!(spec.connected(spec.all_rels()));
    }

    #[test]
    fn all_have_aggregates() {
        let (cat, _) = tpch::catalog();
        for (name, spec) in all(&cat) {
            assert!(spec.aggregate.is_some(), "{name} should aggregate");
        }
    }

    #[test]
    fn estimated_cards_are_plausible() {
        let (cat, _) = tpch::catalog();
        let q5 = q5(&cat);
        let card = q5.set_card(&cat, q5.all_rels());
        // One region, one year, FK chains: order of 10^4..10^6 rows.
        assert!(card > 1e3 && card < 1e7, "Q5 estimate {card}");
    }

    #[test]
    fn day_encoding_is_monotone() {
        assert!(day(1994, 1) < day(1995, 1));
        assert!(day(1995, 1) < day(1995, 6));
        assert_eq!(day(1992, 1), 0);
    }
}
