//! Physical properties: sort orders and property satisfaction.
//!
//! The paper (§2) stresses that "operators of the same group … may differ
//! in physical properties. … In case the parent operator requires a sort
//! order on a certain attribute, not all operators may be chosen as
//! potential children." This module defines the delivered/required order
//! model used everywhere: by the optimizer when costing, and by the
//! counting/unranking machinery when materializing parent→child links
//! (§3.1).
//!
//! Satisfaction is *equivalence-aware*: within a sub-plan covering
//! relation set `S`, every join edge internal to `S` has been applied, so
//! columns equated by those edges hold identical values on every row and
//! are interchangeable as sort keys. This mirrors how industrial
//! optimizers track column equivalence classes.

use plansample_query::{ColRef, QuerySpec, RelSet};

/// A (possibly empty) lexicographic sort order over columns.
///
/// The empty order means "no order" — as a *delivered* property it says
/// the operator guarantees nothing; as a *requirement* it is satisfied by
/// anything.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SortOrder {
    cols: Vec<ColRef>,
}

impl SortOrder {
    /// No ordering guarantee / no requirement.
    pub fn unsorted() -> Self {
        SortOrder { cols: Vec::new() }
    }

    /// Order on the given columns, major first.
    pub fn on(cols: Vec<ColRef>) -> Self {
        SortOrder { cols }
    }

    /// Order on a single column.
    pub fn on_col(col: ColRef) -> Self {
        SortOrder { cols: vec![col] }
    }

    /// The key columns, major first.
    pub fn cols(&self) -> &[ColRef] {
        &self.cols
    }

    /// `true` iff this is the empty (no-op) order.
    pub fn is_unsorted(&self) -> bool {
        self.cols.is_empty()
    }

    /// Heap bytes behind the key vector (capacity-accurate).
    pub fn heap_bytes(&self) -> usize {
        self.cols.capacity() * std::mem::size_of::<ColRef>()
    }
}

/// Column equivalence classes induced by the join edges internal to one
/// relation set (union-find over edge endpoints).
#[derive(Debug)]
pub struct ColEquivalences {
    parent: std::collections::HashMap<ColRef, ColRef>,
}

impl ColEquivalences {
    /// Builds the classes for sub-plans covering `scope`.
    pub fn within(query: &QuerySpec, scope: RelSet) -> Self {
        let mut eq = ColEquivalences {
            parent: std::collections::HashMap::new(),
        };
        for edge in query.edges_within(scope) {
            eq.union(edge.left, edge.right);
        }
        eq
    }

    fn find(&self, col: ColRef) -> ColRef {
        let mut cur = col;
        while let Some(&p) = self.parent.get(&cur) {
            if p == cur {
                break;
            }
            cur = p;
        }
        cur
    }

    fn union(&mut self, a: ColRef, b: ColRef) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
        // Ensure both appear in the map so `find` terminates uniformly.
        self.parent.entry(a).or_insert(rb);
        self.parent.entry(b).or_insert(rb);
    }

    /// `true` iff `a` and `b` are equated by predicates inside the scope
    /// (or are the same column).
    pub fn equivalent(&self, a: ColRef, b: ColRef) -> bool {
        a == b || self.find(a) == self.find(b)
    }
}

/// Does `delivered` satisfy `required` for a sub-plan covering `scope`?
///
/// `required` must be an (equivalence-aware) prefix of `delivered`: a
/// stream that is sorted on `(a, b)` is also sorted on `(a)`, and sorted
/// on `(a)` satisfies sorted on `(a')` when `a = a'` was applied inside
/// the sub-plan.
///
/// One-shot convenience over [`OrderSatisfier`]; callers that test many
/// candidates against the same scope (link materialization checks every
/// expression of a group) should hold an `OrderSatisfier` instead so the
/// equivalence classes are built at most once.
pub fn satisfies(
    query: &QuerySpec,
    scope: RelSet,
    delivered: &SortOrder,
    required: &SortOrder,
) -> bool {
    OrderSatisfier::new(query, scope).satisfies(delivered, required)
}

/// [`satisfies`] over a borrowed delivered key-column slice — the form
/// property checks use with
/// [`PhysicalExpr::delivered_cols`](crate::PhysicalExpr::delivered_cols),
/// which borrows from the operator instead of materializing a
/// [`SortOrder`].
pub fn satisfies_cols(
    query: &QuerySpec,
    scope: RelSet,
    delivered: &[ColRef],
    required: &SortOrder,
) -> bool {
    OrderSatisfier::new(query, scope).satisfies_cols(delivered, required)
}

/// A reusable order-satisfaction checker for one relation-set scope.
///
/// The syntactic prefix check needs no preparation; the equivalence-
/// aware fallback needs the scope's column equivalence classes, which
/// cost a union-find build over the internal join edges. This type
/// builds them lazily and at most once, however many candidates are
/// tested — the difference between O(edges) per *slot* and O(edges) per
/// *candidate* on the link-materialization hot path.
pub struct OrderSatisfier<'q> {
    query: &'q QuerySpec,
    scope: RelSet,
    eq: Option<ColEquivalences>,
}

impl<'q> OrderSatisfier<'q> {
    /// A checker for sub-plans covering `scope`.
    pub fn new(query: &'q QuerySpec, scope: RelSet) -> Self {
        OrderSatisfier {
            query,
            scope,
            eq: None,
        }
    }

    /// Does `delivered` satisfy `required` within this scope?
    pub fn satisfies(&mut self, delivered: &SortOrder, required: &SortOrder) -> bool {
        self.satisfies_cols(delivered.cols(), required)
    }

    /// [`satisfies`](Self::satisfies) over a borrowed delivered
    /// key-column slice (see [`satisfies_cols`]).
    pub fn satisfies_cols(&mut self, delivered: &[ColRef], required: &SortOrder) -> bool {
        if required.is_unsorted() {
            return true;
        }
        if delivered.len() < required.cols().len() {
            return false;
        }
        // Cheap syntactic check first; equivalence classes only when
        // needed, and then only built once per scope.
        if delivered.iter().zip(required.cols()).all(|(d, r)| d == r) {
            return true;
        }
        let eq = self
            .eq
            .get_or_insert_with(|| ColEquivalences::within(self.query, self.scope));
        delivered
            .iter()
            .zip(required.cols())
            .all(|(&d, &r)| eq.equivalent(d, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_catalog::{table, Catalog, ColType};
    use plansample_query::{QueryBuilder, RelId};

    fn chain_query() -> (Catalog, QuerySpec) {
        // a(x) -- b(y,z) -- c(w): edges a.x=b.y, b.z=c.w
        let mut cat = Catalog::new();
        cat.add_table(table("a", 10).col("x", ColType::Int, 10).build())
            .unwrap();
        cat.add_table(
            table("b", 10)
                .col("y", ColType::Int, 10)
                .col("z", ColType::Int, 10)
                .build(),
        )
        .unwrap();
        cat.add_table(table("c", 10).col("w", ColType::Int, 10).build())
            .unwrap();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("a", None).unwrap();
        qb.rel("b", None).unwrap();
        qb.rel("c", None).unwrap();
        qb.join(("a", "x"), ("b", "y")).unwrap();
        qb.join(("b", "z"), ("c", "w")).unwrap();
        let q = qb.build().unwrap();
        (cat, q)
    }

    fn col(rel: u32, c: u32) -> ColRef {
        ColRef {
            rel: RelId(rel),
            col: c,
        }
    }

    fn rs(ids: &[u32]) -> RelSet {
        RelSet::from_iter(ids.iter().map(|&i| RelId(i)))
    }

    #[test]
    fn empty_requirement_always_satisfied() {
        let (_cat, q) = chain_query();
        assert!(satisfies(
            &q,
            rs(&[0]),
            &SortOrder::unsorted(),
            &SortOrder::unsorted()
        ));
        assert!(satisfies(
            &q,
            rs(&[0]),
            &SortOrder::on_col(col(0, 0)),
            &SortOrder::unsorted()
        ));
    }

    #[test]
    fn unsorted_never_satisfies_an_order() {
        let (_cat, q) = chain_query();
        assert!(!satisfies(
            &q,
            rs(&[0]),
            &SortOrder::unsorted(),
            &SortOrder::on_col(col(0, 0))
        ));
    }

    #[test]
    fn prefix_rule() {
        let (_cat, q) = chain_query();
        let ab = SortOrder::on(vec![col(0, 0), col(1, 1)]);
        let a = SortOrder::on_col(col(0, 0));
        assert!(satisfies(&q, rs(&[0, 1]), &ab, &a));
        assert!(!satisfies(&q, rs(&[0, 1]), &a, &ab));
        // order on a different column does not satisfy
        assert!(!satisfies(
            &q,
            rs(&[0, 1]),
            &SortOrder::on_col(col(1, 1)),
            &a
        ));
    }

    #[test]
    fn equivalence_applies_only_within_scope() {
        let (_cat, q) = chain_query();
        let ax = SortOrder::on_col(col(0, 0)); // a.x
        let by = SortOrder::on_col(col(1, 0)); // b.y (equated to a.x)

        // In scope {a,b} the edge a.x=b.y is applied: orders interchange.
        assert!(satisfies(&q, rs(&[0, 1]), &ax, &by));
        assert!(satisfies(&q, rs(&[0, 1]), &by, &ax));
        // In scope {a} alone the predicate has not been applied.
        assert!(!satisfies(&q, rs(&[0]), &ax, &by));
    }

    #[test]
    fn transitive_equivalence_through_chain() {
        // With only edges a.x=b.y and b.z=c.w, a.x is NOT equivalent to
        // b.z (different classes) even in full scope.
        let (_cat, q) = chain_query();
        let ax = SortOrder::on_col(col(0, 0));
        let bz = SortOrder::on_col(col(1, 1));
        assert!(!satisfies(&q, rs(&[0, 1, 2]), &ax, &bz));
        // but b.z ~ c.w is.
        let cw = SortOrder::on_col(col(2, 0));
        assert!(satisfies(&q, rs(&[0, 1, 2]), &bz, &cw));
    }

    #[test]
    fn equivalence_classes_direct() {
        let (_cat, q) = chain_query();
        let eq = ColEquivalences::within(&q, rs(&[0, 1, 2]));
        assert!(eq.equivalent(col(0, 0), col(1, 0)));
        assert!(eq.equivalent(col(1, 1), col(2, 0)));
        assert!(!eq.equivalent(col(0, 0), col(2, 0)));
        assert!(eq.equivalent(col(0, 0), col(0, 0)));
    }

    #[test]
    fn sort_order_basics() {
        assert!(SortOrder::unsorted().is_unsorted());
        assert!(!SortOrder::on_col(col(0, 0)).is_unsorted());
        assert_eq!(SortOrder::on_col(col(0, 0)).cols().len(), 1);
        assert_eq!(SortOrder::default(), SortOrder::unsorted());
    }
}
