//! Experiment E11 — sampling at memory speed, measured.
//!
//! The paper's sampler is only useful if drawing 10 000 plans is cheap
//! next to preparing the space. This bench pins the serving-path
//! throughput (`sample_batch_flat`: the fixed-width unranking tiers of
//! DESIGN.md §11) in plans-per-second on the ladder's regimes:
//!
//! * **Q8 + cross products** — the paper's largest memo, whose total
//!   (~1.76 × 10¹⁸) fits a single limb: the `u64` tier;
//! * **clique-10** — a ~700k-expression synthetic space with a two-limb
//!   total (~5.6 × 10²³): the `u128` tier, measured both natively and
//!   *forced* onto the exact-`Nat` rung (`PlanSpace::force_tier`) so the
//!   artifact keeps a live fallback baseline.
//!
//! Each regime is measured at 1 and 4 pool threads and batch sizes
//! 1 / 64 / 4096, and the numbers are written to `BENCH_sampling.json`
//! (the same hand-rolled schema family as `BENCH_serving.json`; each
//! workload row carries its `tier`). Three acceptance checks are
//! **asserted** so a sampling regression fails CI:
//!
//! 1. the batched single-limb fast path is ≥ 3× faster than the
//!    tree-building `Nat` path on Q8+CP, single-threaded;
//! 2. the `u128` tier samples clique-10 ≥ 20× faster than the
//!    exact-`Nat` fallback on the same space, single-threaded;
//! 3. on machines with ≥ 4 cores, the 4-thread batched fast path is
//!    ≥ 2× faster than 1-thread (skipped with a notice where the
//!    hardware cannot exhibit a speedup).
//!
//! When `--prev BENCH_sampling.json` names the committed artifact, each
//! fresh samples/sec figure is compared against the stored one at the
//! same (workload, tier, threads, batch) coordinate, and a > 30% drop
//! fails the run — the sampling-perf trajectory only ratchets forward.
//! Stored workloads from before the `tier` field are skipped, the same
//! one-round migration earlier artifact schema changes used.
//! `--validate <path>` parses an artifact and checks its schema instead
//! of measuring (used by CI after the measuring run rewrites the file).
//!
//! Like `build_scaling`, the `PLANSAMPLE_THREADS=1` CI job runs only
//! the sequential measurements and assertion 1; the `=4` job measures
//! both thread counts (via `with_threads`, which overrides the env
//! var), asserts the scaling bar, and owns the JSON artifact.

use plansample::{CountTier, PlanBatch, PlanSpace};
use plansample_bench::{prepare, EXPERIMENT_SEED};
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_serve::json::{self, Json, ObjWriter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured coordinate: samples/sec at (threads, batch).
struct Sample {
    threads: usize,
    batch: usize,
    per_sec: f64,
}

/// One workload's measurements plus its space metadata. The same
/// workload name may appear once per unranking tier (clique-10 is
/// measured natively on `u128` and forced onto `nat`), so (name, tier)
/// is the row key.
struct WorkloadReport {
    name: &'static str,
    exprs: usize,
    limbs: usize,
    fast_path: bool,
    tier: &'static str,
    results: Vec<Sample>,
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Samples/sec of the flat batched sampler: repeated fixed-seed
/// `sample_batch_flat` calls into one reused `PlanBatch` for ~150 ms,
/// median of 3 runs.
fn measure_flat(space: &PlanSpace, threads: usize, batch: usize) -> f64 {
    threadpool::with_threads(threads, || {
        median(
            (0..3)
                .map(|_| {
                    let mut out = PlanBatch::new();
                    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
                    space.sample_batch_flat(&mut rng, batch, &mut out); // warm caches + capacity
                    let mut plans = 0usize;
                    let t = Instant::now();
                    while t.elapsed() < Duration::from_millis(150) {
                        space.sample_batch_flat(&mut rng, batch, &mut out);
                        plans += out.len();
                        std::hint::black_box(out.total_nodes());
                    }
                    plans as f64 / t.elapsed().as_secs_f64()
                })
                .collect(),
        )
    })
}

/// Samples/sec of the original tree-building path (`sample_batch`): the
/// seed baseline assertion 1 compares against.
fn measure_tree(space: &PlanSpace, threads: usize, batch: usize) -> f64 {
    threadpool::with_threads(threads, || {
        median(
            (0..3)
                .map(|_| {
                    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
                    let mut plans = 0usize;
                    let t = Instant::now();
                    while t.elapsed() < Duration::from_millis(150) {
                        let batch_plans = space.sample_batch(&mut rng, batch);
                        plans += batch_plans.len();
                        std::hint::black_box(batch_plans.len());
                    }
                    plans as f64 / t.elapsed().as_secs_f64()
                })
                .collect(),
        )
    })
}

fn measure_workload(
    name: &'static str,
    space: &PlanSpace,
    thread_counts: &[usize],
) -> WorkloadReport {
    let mut results = Vec::new();
    for &threads in thread_counts {
        for batch in [1usize, 64, 4096] {
            let per_sec = measure_flat(space, threads, batch);
            println!(
                "sampling_throughput/{name}: threads={threads} batch={batch}: \
                 {per_sec:.0} samples/sec"
            );
            results.push(Sample {
                threads,
                batch,
                per_sec,
            });
        }
    }
    WorkloadReport {
        name,
        exprs: space.memo().num_physical(),
        limbs: space.total().limbs().len(),
        fast_path: space.counts().has_fast_path(),
        tier: space.counts().tier().as_str(),
        results,
    }
}

/// Renders the artifact (schema family of `BENCH_serving.json`).
fn render(reports: &[WorkloadReport], tree_per_sec: f64, flat_speedup: f64) -> String {
    let mut w = ObjWriter::new();
    w.str("bench", "sampling").int("seed", EXPERIMENT_SEED);
    w.arr("workloads");
    for r in reports {
        w.elem_obj()
            .str("name", r.name)
            .int("exprs", r.exprs as u64)
            .int("limbs", r.limbs as u64)
            .int("fast_path", u64::from(r.fast_path))
            .str("tier", r.tier)
            .arr("results");
        for s in &r.results {
            w.elem_obj()
                .int("threads", s.threads as u64)
                .int("batch", s.batch as u64)
                .float("samples_per_sec", s.per_sec)
                .end();
        }
        w.end().end();
    }
    w.end();
    w.obj("tree_baseline")
        .str("name", "Q8_CP")
        .int("threads", 1)
        .int("batch", 4096)
        .float("samples_per_sec", tree_per_sec)
        .end();
    w.float("flat_speedup", flat_speedup);
    w.finish()
}

/// Schema check for one artifact (`--validate`); returns an error
/// message naming the missing piece.
fn validate(doc: &Json) -> Result<(), String> {
    if doc.get("bench") != Some(&Json::Str("sampling".into())) {
        return Err("`bench` is not \"sampling\"".into());
    }
    let workloads = match doc.get("workloads") {
        Some(Json::Arr(items)) if !items.is_empty() => items,
        _ => return Err("`workloads` missing or empty".into()),
    };
    for wl in workloads {
        let name = match wl.get("name") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("workload without a `name`".into()),
        };
        for key in ["exprs", "limbs", "fast_path"] {
            if wl.get(key).and_then(Json::as_num).is_none() {
                return Err(format!("workload {name}: `{key}` missing"));
            }
        }
        match wl.get("tier") {
            Some(Json::Str(t)) if ["u64", "u128", "nat"].contains(&t.as_str()) => {}
            _ => {
                return Err(format!(
                    "workload {name}: `tier` missing or not one of u64/u128/nat"
                ))
            }
        }
        let results = match wl.get("results") {
            Some(Json::Arr(items)) if !items.is_empty() => items,
            _ => return Err(format!("workload {name}: `results` missing or empty")),
        };
        for s in results {
            for key in ["threads", "batch", "samples_per_sec"] {
                if s.get(key).and_then(Json::as_num).is_none() {
                    return Err(format!("workload {name}: result `{key}` missing"));
                }
            }
            let per_sec = s.get("samples_per_sec").and_then(Json::as_num).unwrap();
            if !per_sec.is_finite() || per_sec <= 0.0 {
                return Err(format!("workload {name}: non-positive samples/sec"));
            }
        }
    }
    for key in ["tree_baseline", "flat_speedup"] {
        if doc.get(key).is_none() {
            return Err(format!("`{key}` missing"));
        }
    }
    Ok(())
}

/// Trajectory compare: every (workload, tier, threads, batch)
/// coordinate present in both runs must stay within 30% of the stored
/// samples/sec. Rows are matched by tier as well as name because the
/// same workload legitimately appears once per tier — comparing a
/// `u128` row against a stored `nat` row would make a 300× improvement
/// look like a schema-level identity and a future `nat` regression
/// invisible. Stored workloads without a `tier` (pre-tier artifacts)
/// are skipped for one migration round.
fn compare_prev(prev: &Json, reports: &[WorkloadReport]) -> Result<(), String> {
    let Some(Json::Arr(prev_workloads)) = prev.get("workloads") else {
        return Err("previous artifact has no `workloads`".into());
    };
    for r in reports {
        let Some(prev_wl) = prev_workloads.iter().find(|wl| {
            wl.get("name") == Some(&Json::Str(r.name.into()))
                && wl.get("tier") == Some(&Json::Str(r.tier.into()))
        }) else {
            continue; // new workload/tier or pre-tier artifact: no trajectory yet
        };
        let Some(Json::Arr(prev_results)) = prev_wl.get("results") else {
            continue;
        };
        for s in &r.results {
            let stored = prev_results.iter().find_map(|p| {
                let threads = p.get("threads").and_then(Json::as_num)?;
                let batch = p.get("batch").and_then(Json::as_num)?;
                if threads == s.threads as f64 && batch == s.batch as f64 {
                    p.get("samples_per_sec").and_then(Json::as_num)
                } else {
                    None
                }
            });
            if let Some(stored) = stored {
                let floor = stored * 0.7;
                println!(
                    "sampling_throughput/{}: threads={} batch={}: {:.0} vs stored {:.0}",
                    r.name, s.threads, s.batch, s.per_sec, stored
                );
                if s.per_sec < floor {
                    return Err(format!(
                        "{} at threads={} batch={} regressed >30%: \
                         {:.0} samples/sec vs stored {:.0}",
                        r.name, s.threads, s.batch, s.per_sec, stored
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Resolves an artifact path against the workspace root (`cargo bench`
/// sets the cwd to the *package* dir, but `BENCH_sampling.json` lives
/// next to `BENCH_serving.json` at the repo root).
fn resolve(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        return p.into();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the workspace root")
        .join(p)
}

fn main() {
    // `cargo bench` forwards `--bench`; only our own flags take values.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    if let Some(path) = flag_value("--validate") {
        let file = resolve(&path);
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("{path} is not JSON: {e}"));
        if let Err(e) = validate(&doc) {
            panic!("{path} fails schema validation: {e}");
        }
        println!("{path}: schema OK");
        return;
    }

    // --- Prepare both regimes once. -------------------------------------
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let q8 = prepare(
        &catalog,
        "Q8_CP",
        plansample_query::tpch::q8(&catalog),
        true,
    );
    let q8_space = q8.space();
    assert!(
        q8_space.counts().has_fast_path(),
        "Q8+CP total {} must stay single-limb for the fast-path regime",
        q8_space.total()
    );
    assert_eq!(q8_space.counts().tier(), CountTier::U64);

    let sequential_only = std::env::var("PLANSAMPLE_THREADS").as_deref() == Ok("1");
    let thread_counts: &[usize] = if sequential_only { &[1] } else { &[1, 4] };

    // --- Acceptance assertion 1: flat >= 3x the tree path, 1 thread. ----
    let tree_per_sec = measure_tree(q8_space, 1, 4096);
    let flat_per_sec = measure_flat(q8_space, 1, 4096);
    let flat_speedup = flat_per_sec / tree_per_sec.max(1e-12);
    println!(
        "sampling_throughput/Q8_CP: flat {flat_per_sec:.0} vs tree {tree_per_sec:.0} \
         samples/sec single-threaded ({flat_speedup:.1}x)"
    );
    assert!(
        flat_speedup >= 3.0,
        "the batched u64 fast path must sample >= 3x faster than the tree-building \
         Nat path on Q8+CP; measured {flat_speedup:.1}x"
    );

    let mut reports = vec![measure_workload("Q8_CP", q8_space, thread_counts)];

    // --- clique-10: the two-limb u128-tier regime. ----------------------
    let spec = JoinGraphSpec::new(Topology::Clique, 10, 20000);
    let (_, query, memo) = spec.build_memo();
    let mut clique10 =
        PlanSpace::build_shared(Arc::new(memo), Arc::new(query)).expect("clique-10 builds");
    assert!(
        !clique10.counts().has_fast_path(),
        "clique-10 must overflow the u64 tier"
    );
    assert_eq!(
        clique10.counts().tier(),
        CountTier::U128,
        "clique-10 total {} must land on the u128 tier",
        clique10.total()
    );
    reports.push(measure_workload("clique-10", &clique10, thread_counts));
    // Peak single-thread throughput: both tiers unrank identically per
    // draw, but clique-10's ~4096-plan batches are large enough that the
    // biggest batch size measures cache pressure on the output CSR, not
    // the unranker. Comparing each tier's best single-thread coordinate
    // keeps the assertion about the arithmetic.
    let u128_per_sec = reports
        .last()
        .unwrap()
        .results
        .iter()
        .filter(|s| s.threads == 1)
        .map(|s| s.per_sec)
        .fold(0.0f64, f64::max);

    // --- Acceptance assertion 2: u128 tier >= 20x the exact fallback. ---
    // The same space forced onto the Nat rung: the pre-tier regime, kept
    // as a measured artifact row and as this assertion's live baseline.
    clique10.force_tier(CountTier::Nat);
    assert_eq!(clique10.counts().tier(), CountTier::Nat);
    let nat_samples: Vec<Sample> = [64usize, 4096]
        .iter()
        .map(|&batch| {
            let per_sec = measure_flat(&clique10, 1, batch);
            println!(
                "sampling_throughput/clique-10: forced-nat threads=1 batch={batch}: \
                 {per_sec:.0} samples/sec"
            );
            Sample {
                threads: 1,
                batch,
                per_sec,
            }
        })
        .collect();
    let nat_per_sec = nat_samples.iter().map(|s| s.per_sec).fold(0.0f64, f64::max);
    reports.push(WorkloadReport {
        name: "clique-10",
        exprs: clique10.memo().num_physical(),
        limbs: clique10.total().limbs().len(),
        fast_path: false,
        tier: clique10.counts().tier().as_str(),
        results: nat_samples,
    });
    let tier_speedup = u128_per_sec / nat_per_sec.max(1e-12);
    println!(
        "sampling_throughput/clique-10: u128 tier {u128_per_sec:.0} vs exact-Nat \
         {nat_per_sec:.0} samples/sec, peak single-thread ({tier_speedup:.1}x)"
    );
    assert!(
        tier_speedup >= 20.0,
        "the u128 tier must sample clique-10 >= 20x faster than the exact-Nat \
         fallback; measured {tier_speedup:.1}x"
    );

    // --- Acceptance assertion 3: parallel scaling (>= 4 cores only). ----
    if sequential_only {
        println!(
            "sampling_throughput: PLANSAMPLE_THREADS=1 — sequential-pool job; \
             the multi-thread measurements and the JSON artifact belong to the \
             multi-thread job"
        );
    } else {
        let one = reports[0]
            .results
            .iter()
            .find(|s| s.threads == 1 && s.batch == 4096)
            .expect("1-thread coordinate measured")
            .per_sec;
        let four = reports[0]
            .results
            .iter()
            .find(|s| s.threads == 4 && s.batch == 4096)
            .expect("4-thread coordinate measured")
            .per_sec;
        let scaling = four / one.max(1e-12);
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        println!(
            "sampling_throughput/Q8_CP: 4-thread scaling {scaling:.2}x at batch 4096 \
             ({cores} core(s) available)"
        );
        if cores >= 4 {
            assert!(
                scaling >= 2.0,
                "4-thread batched sampling must be >= 2x the 1-thread rate on Q8+CP; \
                 measured {scaling:.2}x on {cores} cores"
            );
        } else {
            println!(
                "sampling_throughput/Q8_CP: SKIPPING the >= 2x scaling assertion — only \
                 {cores} core(s); a parallel speedup is not physically observable here"
            );
        }
    }

    // --- Trajectory compare + artifact. ---------------------------------
    if let Some(path) = flag_value("--prev") {
        let file = resolve(&path);
        match std::fs::read_to_string(&file) {
            Ok(text) => {
                let prev = json::parse(&text).unwrap_or_else(|e| panic!("{path} is not JSON: {e}"));
                if let Err(e) = compare_prev(&prev, &reports) {
                    panic!("sampling-perf trajectory check failed: {e}");
                }
            }
            Err(e) => println!(
                "sampling_throughput: no previous artifact at {} ({e})",
                file.display()
            ),
        }
    }
    if let Some(path) = flag_value("--out") {
        let file = resolve(&path);
        let text = render(&reports, tree_per_sec, flat_speedup);
        validate(&json::parse(&text).expect("rendered artifact parses"))
            .expect("rendered artifact passes its own schema check");
        std::fs::write(&file, text + "\n")
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", file.display()));
        println!("sampling_throughput: wrote {}", file.display());
    }
}
