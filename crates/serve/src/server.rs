//! The serving front-end: an acceptor plus N thread-per-core reactors.
//!
//! One acceptor thread owns the listener and nothing else: it accepts
//! connections and deals them round-robin to the reactors through
//! per-reactor mailboxes, waking the target reactor through its
//! socketpair. Each reactor (see [`crate::reactor`]) owns its own
//! `poll(2)` set, connection map, completion queue, and worker pool;
//! a connection is pinned to its reactor for life, so no socket is
//! ever shared between event loops. What *is* shared —
//! [`ServerState`] — is shared through atomics and the singleflighted
//! `PlanService`, which is exactly why the determinism contract (reply
//! bytes are a pure function of request bytes) holds verbatim at every
//! reactor count.
//!
//! Connections are addressed by per-reactor monotonically increasing
//! tokens that are never reused, so a completion for a connection that
//! died while its request was in flight is dropped on the floor
//! instead of corrupting a newer connection.
//!
//! Fault handling follows the wire module's recoverability split:
//! frames whose boundary is still trustworthy (unknown opcode,
//! malformed body) get a typed error reply and the connection keeps
//! serving; violations that poison the framing (oversized length
//! prefix, wrong protocol version) get a final typed reply with
//! request id 0 and the connection drains and closes. A partial frame
//! that sits incomplete longer than [`ServerConfig::frame_timeout`]
//! (however slowly it trickles) closes the connection — the
//! slow-loris defense.
//!
//! Persistent `accept(2)` failure (EMFILE/ENFILE during fd exhaustion)
//! gets the same treatment as persistent `poll(2)` failure: the
//! acceptor backs off instead of spinning on the level-triggered
//! readable listener, counts the failure in `accept_errors`, and shuts
//! the server down after `MAX_ACCEPT_ERRORS` consecutive failures.

use crate::reactor::{
    Completion, Interest, Job, Poller, Reactor, WakeSet, MAX_POLL_ERRORS, POLL_ERROR_BACKOFF,
    TOKEN_WAKER,
};
use crate::state::{AdmissionConfig, ServerState};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Reactor (event-loop) threads; `0` means one per available core.
    pub reactors: usize,
    /// Worker threads executing requests, *per reactor*.
    pub workers: usize,
    /// TPC-H service entry capacity.
    pub cache_entries: usize,
    /// TPC-H service byte budget (participates in admission control).
    pub byte_budget: Option<usize>,
    /// Queue/preparation shedding thresholds.
    pub admission: AdmissionConfig,
    /// Decoded-but-unanswered requests allowed per connection before
    /// the owning reactor stops reading from it (pipelining bound).
    pub max_pipeline: usize,
    /// How long a partial frame may sit incomplete before the
    /// connection is closed (slow-loris defense).
    pub frame_timeout: Duration,
    /// Allow Cartesian products in served plan spaces.
    pub cross_products: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            reactors: 0,
            workers: 4,
            cache_entries: 64,
            byte_budget: None,
            admission: AdmissionConfig::default(),
            max_pipeline: 128,
            frame_timeout: Duration::from_secs(10),
            cross_products: false,
        }
    }
}

/// Resolves a `reactors` setting: `0` means one per available core.
pub fn resolve_reactors(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    wake_set: Arc<WakeSet>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving state (counters, services).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Signals shutdown and joins every thread.
    pub fn stop(mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until the server exits (external shutdown only).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_set.wake_all();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Sleep after a failed `accept(2)` call (the listener stays readable
/// under level-triggered polling, so returning without this backoff
/// spins the acceptor at 100% CPU for as long as the failure — fd
/// exhaustion, typically — persists).
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(10);

/// Consecutive `accept(2)` failures tolerated before the acceptor
/// declares server-wide shutdown (mirrors [`MAX_POLL_ERRORS`]).
const MAX_ACCEPT_ERRORS: u32 = 100;

/// What to do after an `accept(2)` failure.
#[derive(Debug, PartialEq, Eq)]
enum AcceptVerdict {
    /// Transient (so far): sleep [`ACCEPT_ERROR_BACKOFF`], then poll
    /// again.
    Backoff,
    /// Persistent: shut the server down rather than hang half-alive.
    GiveUp,
}

/// The consecutive-failure policy for `accept(2)`, separated from the
/// acceptor so the verdict sequence is unit-testable without forcing
/// real fd exhaustion.
#[derive(Debug, Default)]
struct AcceptBackoff {
    consecutive: u32,
}

impl AcceptBackoff {
    fn on_success(&mut self) {
        self.consecutive = 0;
    }

    fn on_error(&mut self) -> AcceptVerdict {
        self.consecutive += 1;
        if self.consecutive >= MAX_ACCEPT_ERRORS {
            AcceptVerdict::GiveUp
        } else {
            AcceptVerdict::Backoff
        }
    }
}

/// One reactor's intake, as the acceptor sees it: push the stream,
/// poke the waker.
struct ReactorMailbox {
    streams: Arc<Mutex<Vec<TcpStream>>>,
    waker: Mutex<UnixStream>,
}

/// Token the acceptor's listener is registered under (its waker reuses
/// the reactor-side [`TOKEN_WAKER`]).
const TOKEN_LISTENER: u64 = 0;

/// The listener-owning thread: accepts and deals connections
/// round-robin to the reactors.
struct Acceptor {
    listener: TcpListener,
    wake_rx: UnixStream,
    mailboxes: Vec<ReactorMailbox>,
    /// Round-robin cursor over `mailboxes`.
    next: usize,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    wake_set: Arc<WakeSet>,
    backoff: AcceptBackoff,
}

impl Acceptor {
    fn run(mut self) {
        let mut poller = Poller::new();
        let mut poll_errors: u32 = 0;
        while !self.shutdown.load(Ordering::SeqCst) {
            poller.clear();
            poller.register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ);
            poller.register(self.wake_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ);
            let events = match poller.wait(None) {
                Ok(events) => {
                    poll_errors = 0;
                    events
                }
                Err(e) => {
                    poll_errors += 1;
                    if poll_errors >= MAX_POLL_ERRORS {
                        eprintln!(
                            "plansample-serve: acceptor poll(2) failed {poll_errors} times \
                             in a row ({e}); shutting down"
                        );
                        self.give_up();
                        return;
                    }
                    std::thread::sleep(POLL_ERROR_BACKOFF);
                    continue;
                }
            };
            for event in events {
                match event.token {
                    TOKEN_LISTENER => {
                        if !self.accept_burst() {
                            return;
                        }
                    }
                    _ => self.drain_waker(),
                }
            }
        }
    }

    /// Accepts until `WouldBlock`. Returns `false` when persistent
    /// accept failure forced server-wide shutdown.
    fn accept_burst(&mut self) -> bool {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.backoff.on_success();
                    self.dispatch(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // EMFILE/ENFILE and friends: the listener stays
                    // readable, so without a backoff this would spin.
                    self.state.accept_errors.fetch_add(1, Ordering::Relaxed);
                    match self.backoff.on_error() {
                        AcceptVerdict::Backoff => {
                            std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                            return true;
                        }
                        AcceptVerdict::GiveUp => {
                            eprintln!(
                                "plansample-serve: accept(2) failed {} times in a row \
                                 ({e}); shutting down",
                                self.backoff.consecutive
                            );
                            self.give_up();
                            return false;
                        }
                    }
                }
            }
        }
    }

    /// Hands a fresh connection to the next reactor in rotation.
    fn dispatch(&mut self, stream: TcpStream) {
        let mailbox = &self.mailboxes[self.next % self.mailboxes.len()];
        self.next = self.next.wrapping_add(1);
        mailbox
            .streams
            .lock()
            .expect("mailbox poisoned")
            .push(stream);
        if let Ok(mut w) = mailbox.waker.lock() {
            // WouldBlock is ignored: a full pipe already guarantees
            // the reactor will wake.
            let _ = w.write(&[1]);
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
    }

    fn give_up(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_set.wake_all();
    }
}

/// Binds the listener and spawns the acceptor, the reactors, and each
/// reactor's worker pool.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let optimizer = if config.cross_products {
        plansample_optimizer::OptimizerConfig::with_cross_products()
    } else {
        plansample_optimizer::OptimizerConfig::default()
    };
    let reactors = resolve_reactors(config.reactors);
    let state = Arc::new(ServerState::new(
        optimizer,
        config.cache_entries,
        config.byte_budget,
        config.admission,
        reactors,
    ));
    let shutdown = Arc::new(AtomicBool::new(false));

    // One socketpair per event-loop thread (acceptor first). Both ends
    // nonblocking: the read side so draining never stalls the loop,
    // the write side so a full wake buffer never blocks a sender
    // (O_NONBLOCK lives on the shared open file description, so
    // per-sender clones inherit it).
    let wake_pair = || -> io::Result<(UnixStream, UnixStream)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((tx, rx))
    };
    let (acceptor_wake_tx, acceptor_wake_rx) = wake_pair()?;
    let mut reactor_wake = Vec::with_capacity(reactors);
    for _ in 0..reactors {
        reactor_wake.push(wake_pair()?);
    }

    // The acceptor needs each reactor's waker (for dispatch) and so do
    // that reactor's workers (for completions) — clone before the
    // originals move into the WakeSet.
    let mut mailboxes = Vec::with_capacity(reactors);
    let mut worker_wakers = Vec::with_capacity(reactors);
    let mut mailbox_handles = Vec::with_capacity(reactors);
    for (tx, _) in &reactor_wake {
        let streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        mailbox_handles.push(Arc::clone(&streams));
        mailboxes.push(ReactorMailbox {
            streams,
            waker: Mutex::new(tx.try_clone()?),
        });
        worker_wakers.push(tx.try_clone()?);
    }
    let mut wakers = vec![Mutex::new(acceptor_wake_tx)];
    let mut wake_rxs = Vec::with_capacity(reactors);
    for (tx, rx) in reactor_wake {
        wakers.push(Mutex::new(tx));
        wake_rxs.push(rx);
    }
    let wake_set = Arc::new(WakeSet(wakers));

    let mut threads = Vec::new();
    threads.push(
        std::thread::Builder::new()
            .name("plansample-serve-acceptor".into())
            .spawn({
                let state = Arc::clone(&state);
                let shutdown = Arc::clone(&shutdown);
                let wake_set = Arc::clone(&wake_set);
                move || {
                    Acceptor {
                        listener,
                        wake_rx: acceptor_wake_rx,
                        mailboxes,
                        next: 0,
                        state,
                        shutdown,
                        wake_set,
                        backoff: AcceptBackoff::default(),
                    }
                    .run();
                }
            })?,
    );

    let frame_timeout = config.frame_timeout;
    let max_pipeline = config.max_pipeline.max(1);
    for (index, wake_rx) in wake_rxs.into_iter().enumerate() {
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

        for w in 0..config.workers.max(1) {
            let jobs_rx = Arc::clone(&jobs_rx);
            let completions = Arc::clone(&completions);
            let state = Arc::clone(&state);
            let mut waker = worker_wakers[index].try_clone()?;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("plansample-serve-worker-{index}-{w}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing.
                        let job = match jobs_rx.lock().expect("job queue poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => return, // reactor exited, channel closed
                        };
                        let response = state.handle(&job.request);
                        let payload = response.encode(job.request_id);
                        completions
                            .lock()
                            .expect("completion queue poisoned")
                            .push(Completion {
                                token: job.token,
                                payload,
                            });
                        let _ = waker.write(&[1]);
                    })?,
            );
        }

        let mailbox = Arc::clone(&mailbox_handles[index]);
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        let wake_set = Arc::clone(&wake_set);
        threads.push(
            std::thread::Builder::new()
                .name(format!("plansample-serve-reactor-{index}"))
                .spawn(move || {
                    Reactor {
                        index,
                        wake_rx,
                        mailbox,
                        conns: HashMap::new(),
                        next_token: crate::reactor::FIRST_CONN_TOKEN,
                        poller: Poller::new(),
                        state,
                        jobs_tx,
                        completions,
                        shutdown,
                        wake_set,
                        frame_timeout,
                        max_pipeline,
                        clock: Instant::now,
                    }
                    .run();
                })?,
        );
    }

    Ok(ServerHandle {
        addr,
        state,
        shutdown,
        wake_set,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_gives_up_only_after_the_bound() {
        let mut backoff = AcceptBackoff::default();
        for i in 1..MAX_ACCEPT_ERRORS {
            assert_eq!(
                backoff.on_error(),
                AcceptVerdict::Backoff,
                "failure #{i} must back off, not give up"
            );
        }
        assert_eq!(
            backoff.on_error(),
            AcceptVerdict::GiveUp,
            "failure #{MAX_ACCEPT_ERRORS} exhausts the tolerance"
        );
    }

    #[test]
    fn accept_backoff_resets_on_success() {
        let mut backoff = AcceptBackoff::default();
        for _ in 0..MAX_ACCEPT_ERRORS - 1 {
            backoff.on_error();
        }
        backoff.on_success();
        assert_eq!(
            backoff.on_error(),
            AcceptVerdict::Backoff,
            "one success forgives the whole streak"
        );
    }

    #[test]
    fn resolve_reactors_zero_means_per_core() {
        assert_eq!(resolve_reactors(3), 3);
        assert!(resolve_reactors(0) >= 1);
    }
}
