//! Property tests over the wire protocol (satellite of the serving
//! front end): encoding round-trips through decoding for every request
//! and response shape, encoding is deterministic, framing inverts, and
//! — the hostile half — the decoder is *total*: arbitrary byte strings
//! never panic it, they decode or return a typed [`WireError`]. The
//! response round trip compares re-encodings rather than values so NaN
//! cost bits are covered too (`f64` travels as IEEE-754 bits).

use plansample_bignum::Nat;
use plansample_datagen::joingraph::Topology;
use plansample_serve::wire::{self, Request, Response, StatsReply, WirePlan};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strings including invalid-UTF-8 fallout (the lossy conversion's
/// replacement characters exercise multi-byte encoding).
fn arb_string() -> impl Strategy<Value = String> {
    vec(any::<u8>(), 0..48).prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

fn arb_nat() -> impl Strategy<Value = Nat> {
    vec(any::<u64>(), 0..4).prop_map(Nat::from_limbs)
}

fn arb_workload() -> impl Strategy<Value = wire::Workload> {
    (0u8..2, arb_string(), 0usize..4, 2u16..12, any::<u64>()).prop_map(
        |(tag, sql, t, relations, seed)| {
            if tag == 0 {
                wire::Workload::Sql(sql)
            } else {
                wire::Workload::Synthetic {
                    topology: Topology::ALL[t],
                    relations,
                    seed,
                }
            }
        },
    )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u8..6,
        arb_workload(),
        arb_nat(),
        any::<u64>(),
        any::<u32>(),
    )
        .prop_map(|(op, wl, nat, seed, k)| match op {
            0 => Request::Prepare(wl),
            1 => Request::Count(wl),
            2 => Request::Best(wl),
            3 => Request::Unrank(wl, nat),
            4 => Request::SampleBatch(wl, seed, k),
            _ => Request::Stats,
        })
}

fn arb_plan() -> impl Strategy<Value = WirePlan> {
    vec((any::<u32>(), any::<u32>()), 0..12)
}

/// Any bit pattern, NaNs and infinities included.
fn arb_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn arb_reactor_stats() -> impl Strategy<Value = wire::ReactorStats> {
    (any::<u64>(), any::<u64>()).prop_map(|(requests, connections)| wire::ReactorStats {
        requests,
        connections,
    })
}

fn arb_stats() -> impl Strategy<Value = StatsReply> {
    (vec(any::<u64>(), 20), vec(arb_reactor_stats(), 0..6)).prop_map(|(v, per_reactor)| {
        StatsReply {
            requests: v[0],
            requests_admitted: v[1],
            shed_queue: v[2],
            shed_prepare: v[3],
            wire_errors: v[4],
            accept_errors: v[5],
            connections_open: v[6],
            connections_total: v[7],
            hits: v[8],
            misses: v[9],
            coalesced: v[10],
            evictions: v[11],
            entries: v[12],
            resident_bytes: v[13],
            byte_budget: v[14],
            inflight_prepares: v[15],
            synth_services: v[16],
            synth_resident_bytes: v[17],
            synth_evictions: v[18],
            batch_peak_bytes: v[19],
            per_reactor,
        }
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..7,
        (arb_nat(), arb_plan(), arb_f64()),
        vec((arb_plan(), arb_f64()), 0..6),
        arb_stats(),
        (any::<u32>(), any::<u64>(), any::<bool>()),
        (0u8..8, arb_string()),
    )
        .prop_map(
            |(tag, (nat, plan, cost), samples, stats, (n32, n64, flag), (code, message))| match tag
            {
                0 => Response::Prepared {
                    total: nat,
                    groups: n32,
                    exprs: n32.wrapping_add(1),
                    size_bytes: n64,
                    cached: flag,
                },
                1 => Response::Count(nat),
                2 => Response::Best(plan, cost),
                3 => Response::Plan(plan, cost),
                4 => Response::Samples(samples),
                5 => Response::Stats(stats),
                _ => Response::Error {
                    code: wire::ErrorCode::ALL[code as usize],
                    message,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn request_encoding_round_trips(request in arb_request(), id in any::<u64>()) {
        let payload = request.encode(id);
        prop_assert_eq!(&payload, &request.encode(id), "encoding must be deterministic");
        let (got_id, decoded) = Request::decode(&payload).expect("own encoding decodes");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(&decoded, &request);
        // Header probe agrees with the full decode.
        let (_, header_id) = wire::decode_header(&payload).expect("header decodes");
        prop_assert_eq!(header_id, id);
    }

    #[test]
    fn response_encoding_round_trips(response in arb_response(), id in any::<u64>()) {
        // Compare re-encodings, not values: NaN != NaN would fail a
        // value comparison even though the bytes round-trip exactly.
        let payload = response.encode(id);
        let (got_id, decoded) = Response::decode(&payload).expect("own encoding decodes");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(decoded.encode(id), payload);
    }

    #[test]
    fn framing_inverts_and_truncation_is_detected(request in arb_request(), id in any::<u64>()) {
        let payload = request.encode(id);
        let framed = wire::frame(&payload);
        let (inner, consumed) = wire::split_frame(&framed)
            .expect("well-formed frame")
            .expect("complete frame");
        prop_assert_eq!(inner, &payload[..]);
        prop_assert_eq!(consumed, framed.len());
        // Every strict prefix is an incomplete frame, never an error:
        // partial reads must park, not poison.
        for cut in [0, 1, 3, framed.len() / 2, framed.len() - 1] {
            prop_assert_eq!(wire::split_frame(&framed[..cut]).expect("prefix is not fatal"), None);
        }
    }

    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(bytes in vec(any::<u8>(), 0..256)) {
        // Totality: any of these may return Err, none may panic. The
        // results are deliberately ignored.
        let _ = wire::split_frame(&bytes);
        let _ = wire::decode_header(&bytes);
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn decoders_never_panic_on_corrupted_valid_frames(
        request in arb_request(),
        id in any::<u64>(),
        flips in vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        // Mutations of real encodings probe deeper than raw noise: the
        // header is valid often enough to reach every body decoder.
        let mut payload = request.encode(id);
        for (pos, mask) in flips {
            let len = payload.len();
            payload[pos as usize % len] ^= mask;
        }
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }
}

/// The decoder rejects any frame whose declared length exceeds the
/// protocol bound as unrecoverable — that is the framing-poisoned case
/// the server answers and then drains.
#[test]
fn oversized_length_prefix_is_fatal() {
    let mut buf = (wire::MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
    buf.extend_from_slice(&[0u8; 16]);
    match wire::split_frame(&buf) {
        Err(e) => assert!(!e.is_recoverable(), "oversized must poison framing: {e}"),
        Ok(got) => panic!("oversized prefix accepted: {got:?}"),
    }
}
