//! Child eligibility: which expressions of a group may fill a given child
//! slot.
//!
//! This is the single source of truth for parent→child compatibility,
//! consumed both by the optimizer's best-plan extraction and by the
//! counting/unranking machinery when it materializes links (§3.1 of the
//! paper: "Due to the differences in physical properties some operators
//! of a group may qualify as potential children while others do not").
//!
//! Rules:
//! - an [`Requirement::Order`] slot accepts every expression whose
//!   delivered order satisfies the required one (the empty requirement
//!   accepts *everything*, including enforcers — Figure 3's hash join
//!   "can have any operator from group 1 and 2", and group 1 contains the
//!   Sort 1.4);
//! - a [`Requirement::SortInput`] slot (a Sort enforcer's own input)
//!   accepts the group's non-enforcer expressions that do **not** already
//!   satisfy the sort target. Excluding enforcers rules out Sort-over-Sort
//!   chains, which keeps the plan graph finite and acyclic; excluding
//!   already-satisfying children rules out redundant sorts.

use crate::{ChildSlot, Memo, OrderSatisfier, PhysId, Requirement};
use plansample_query::QuerySpec;

/// All expressions of `slot.group` eligible to fill `slot`, in group
/// order (the order that defines plan ranks).
pub fn eligible_children(memo: &Memo, query: &QuerySpec, slot: &ChildSlot) -> Vec<PhysId> {
    let group = memo.group(slot.group);
    // One satisfier for the whole scan: the scope's equivalence classes
    // are built at most once, not per candidate expression.
    let mut sat = OrderSatisfier::new(query, group.scope(query));
    group
        .phys_iter()
        .filter(|(_, e)| match &slot.requirement {
            Requirement::Order(req) => sat.satisfies_cols(e.delivered_cols(), req),
            Requirement::SortInput { target } => {
                !e.op.is_enforcer() && !sat.satisfies_cols(e.delivered_cols(), target)
            }
        })
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GroupKey, PhysicalExpr, PhysicalOp, SortOrder};
    use plansample_catalog::{table, Catalog, ColType};
    use plansample_query::{ColRef, QueryBuilder, RelId, RelSet};

    /// One relation with an index on column 0; group holds TableScan,
    /// SortedIdxScan, and a Sort enforcer targeting column 0 — the exact
    /// shape of the paper's group 1 in Figures 2/3.
    fn setup() -> (Catalog, QuerySpec, Memo, crate::GroupId) {
        let mut cat = Catalog::new();
        cat.add_table(
            table("a", 100)
                .col("x", ColType::Int, 100)
                .col("y", ColType::Int, 10)
                .index_on(0)
                .build(),
        )
        .unwrap();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("a", None).unwrap();
        let q = qb.build().unwrap();

        let key = ColRef {
            rel: RelId(0),
            col: 0,
        };
        let mut memo = Memo::new();
        let g = memo.add_group(GroupKey::Rels(RelSet::singleton(RelId(0))));
        memo.add_physical(
            g,
            PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(0) }, 100.0, 100.0),
        )
        .unwrap();
        memo.add_physical(
            g,
            PhysicalExpr::new(
                PhysicalOp::SortedIdxScan {
                    rel: RelId(0),
                    col: key,
                },
                120.0,
                100.0,
            ),
        )
        .unwrap();
        memo.add_physical(
            g,
            PhysicalExpr::new(
                PhysicalOp::Sort {
                    target: SortOrder::on_col(key),
                },
                50.0,
                100.0,
            ),
        )
        .unwrap();
        memo.set_root(g);
        (cat, q, memo, g)
    }

    #[test]
    fn empty_requirement_accepts_everything_including_sorts() {
        let (_cat, q, memo, g) = setup();
        let slot = ChildSlot {
            group: g,
            requirement: Requirement::Order(SortOrder::unsorted()),
        };
        let kids = eligible_children(&memo, &q, &slot);
        assert_eq!(kids.len(), 3, "TableScan, SortedIdxScan, Sort all qualify");
    }

    #[test]
    fn order_requirement_selects_sorted_providers() {
        let (_cat, q, memo, g) = setup();
        let key = ColRef {
            rel: RelId(0),
            col: 0,
        };
        let slot = ChildSlot {
            group: g,
            requirement: Requirement::Order(SortOrder::on_col(key)),
        };
        let kids = eligible_children(&memo, &q, &slot);
        // SortedIdxScan (index 1) and Sort (index 2) deliver the order.
        assert_eq!(kids.len(), 2);
        assert!(kids.iter().all(|id| id.index != 0));
    }

    #[test]
    fn unsatisfiable_order_yields_empty() {
        let (_cat, q, memo, g) = setup();
        let other = ColRef {
            rel: RelId(0),
            col: 1,
        };
        let slot = ChildSlot {
            group: g,
            requirement: Requirement::Order(SortOrder::on_col(other)),
        };
        assert!(eligible_children(&memo, &q, &slot).is_empty());
    }

    #[test]
    fn sort_input_excludes_enforcers_and_already_sorted() {
        let (_cat, q, memo, g) = setup();
        let key = ColRef {
            rel: RelId(0),
            col: 0,
        };
        let slot = ChildSlot {
            group: g,
            requirement: Requirement::SortInput {
                target: SortOrder::on_col(key),
            },
        };
        let kids = eligible_children(&memo, &q, &slot);
        // Only the TableScan: the idx scan already satisfies, the Sort is
        // an enforcer.
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].index, 0);
    }

    #[test]
    fn sort_input_for_other_target_takes_differently_sorted() {
        let (_cat, q, memo, g) = setup();
        let other = ColRef {
            rel: RelId(0),
            col: 1,
        };
        let slot = ChildSlot {
            group: g,
            requirement: Requirement::SortInput {
                target: SortOrder::on_col(other),
            },
        };
        let kids = eligible_children(&memo, &q, &slot);
        // TableScan and the x-sorted idx scan both fail to satisfy a sort
        // on y, so both are sortable inputs.
        assert_eq!(kids.len(), 2);
    }
}
