//! Little-endian byte codec used inside artifact sections.
//!
//! The writer appends fixed-width primitives and length-prefixed
//! buffers; the reader is the mirror image with every read bounds-
//! checked — a truncated or hostile byte stream surfaces as a typed
//! [`ArtifactError`], never a panic or an out-of-bounds access.
//!
//! Bulk `u32`/`u64` arrays (the CSR link tables, the count limbs) are
//! written as a length prefix, zero padding up to 8-byte alignment,
//! then the raw little-endian bytes. Because every section starts on
//! an 8-byte file offset (see [`crate::format`]), in-section alignment
//! is file alignment, and the loader reconstructs each array with one
//! allocation and a straight chunked copy — the "near-zero-copy" load
//! path.

use crate::ArtifactError;

/// Appends primitives to a growing section buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Zero-pads to the next multiple of 8 bytes.
    pub fn align8(&mut self) {
        while self.buf.len() % 8 != 0 {
            self.buf.push(0);
        }
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` by bit pattern (exact round-trip, NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed, 8-aligned raw `u32` array.
    pub fn u32_slice(&mut self, vals: &[u32]) {
        self.u64(vals.len() as u64);
        self.align8();
        for &v in vals {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Length-prefixed, 8-aligned raw `u64` array.
    pub fn u64_slice(&mut self, vals: &[u64]) {
        self.u64(vals.len() as u64);
        self.align8();
        for &v in vals {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Bounds-checked mirror of [`Writer`] over one section's bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reads from the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.remaining() < n {
            return Err(ArtifactError::Truncated {
                detail: format!("needed {n} bytes, {} left in section", self.remaining()),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Skips the zero padding [`Writer::align8`] wrote.
    pub fn align8(&mut self) -> Result<(), ArtifactError> {
        let pad = (8 - self.pos % 8) % 8;
        self.take(pad).map(|_| ())
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, ArtifactError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ArtifactError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ArtifactError::Malformed {
            reason: "string is not valid UTF-8".to_string(),
        })
    }

    /// Length-prefixed, 8-aligned raw `u32` array, reconstructed with
    /// one allocation and a chunked copy. The length prefix is checked
    /// against the remaining bytes *before* allocating, so a corrupt
    /// length cannot trigger an absurd allocation.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, ArtifactError> {
        let len = self.u64()? as usize;
        self.align8()?;
        let bytes = self.take(len.checked_mul(4).ok_or_else(length_overflow)?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Length-prefixed, 8-aligned raw `u64` array.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, ArtifactError> {
        let len = self.u64()? as usize;
        self.align8()?;
        let bytes = self.take(len.checked_mul(8).ok_or_else(length_overflow)?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Asserts the section was consumed exactly (trailing garbage in a
    /// checksummed section means the encoder and decoder disagree).
    pub fn finish(self) -> Result<(), ArtifactError> {
        if self.remaining() != 0 {
            return Err(ArtifactError::Malformed {
                reason: format!("{} unread bytes at end of section", self.remaining()),
            });
        }
        Ok(())
    }
}

fn length_overflow() -> ArtifactError {
    ArtifactError::Truncated {
        detail: "array length prefix overflows".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.f64(-0.0);
        w.str("naïve");
        w.u32_slice(&[1, 2, 3]);
        w.u64_slice(&[u64::MAX]);
        let bytes = w.into_inner();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "naïve");
        assert_eq!(r.u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u64_vec().unwrap(), vec![u64::MAX]);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_not_panics() {
        let mut w = Writer::new();
        w.u32_slice(&[1, 2, 3, 4]);
        let bytes = w.into_inner();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            match r.u32_vec() {
                Ok(v) => panic!("cut at {cut} produced {v:?}"),
                Err(ArtifactError::Truncated { .. }) => {}
                Err(e) => panic!("cut at {cut}: wrong error {e}"),
            }
        }
    }

    #[test]
    fn absurd_length_prefix_does_not_allocate() {
        // A length prefix of u64::MAX must fail the bounds check, not
        // attempt a 2^64-byte allocation.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        w.align8();
        let bytes = w.into_inner();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.u64_vec(), Err(ArtifactError::Truncated { .. })));
    }

    #[test]
    fn leftover_bytes_fail_finish() {
        let mut w = Writer::new();
        w.u32(1);
        w.u32(2);
        let bytes = w.into_inner();
        let mut r = Reader::new(&bytes);
        r.u32().unwrap();
        assert!(matches!(r.finish(), Err(ArtifactError::Malformed { .. })));
    }

    #[test]
    fn aligned_arrays_start_on_multiples_of_eight() {
        let mut w = Writer::new();
        w.u8(1); // knock alignment off
        w.u32_slice(&[9, 9]);
        let bytes = w.into_inner();
        // 1 byte tag + 8 byte len = 9, padded to 16 before payload.
        assert_eq!(&bytes[16..20], &9u32.to_le_bytes());
    }
}
