//! Thread-count determinism of the parallel plan-space build.
//!
//! `Links::build` fans its property scans out per distinct slot,
//! `Counts::compute` fills topo-order *levels* in parallel, and
//! `sample_batch` unranks draws concurrently — all with a deterministic
//! merge. These tests pin the contract those optimizations promise: a
//! 1-thread build and an N-thread build of the same memo produce
//! **bit-identical** `Counts`, list layouts, ranks, and sample batches,
//! on random join-graph topologies (optimizer-built memos) and on a
//! directly synthesized multi-limb space.
//!
//! Thread counts are pinned with `threadpool::with_threads`, which is a
//! thread-local override — concurrently running tests cannot perturb
//! each other.

mod common;

use plansample::PlanSpace;
use plansample_bignum::Nat;
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_memo::Memo;
use plansample_optimizer::{optimize, OptimizerConfig};
use plansample_query::QuerySpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Builds the space under an explicit thread count.
fn build_with(threads: usize, memo: &Arc<Memo>, query: &Arc<QuerySpec>) -> PlanSpace {
    threadpool::with_threads(threads, || {
        PlanSpace::build_shared(Arc::clone(memo), Arc::clone(query)).expect("acyclic memo")
    })
}

/// Asserts every observable of the two spaces is identical: totals,
/// per-expression counts, interned list layout, and boundary ranks.
fn assert_identical(a: &PlanSpace, b: &PlanSpace) {
    assert_eq!(a.total(), b.total(), "space totals diverge");
    assert_eq!(
        a.links().num_lists(),
        b.links().num_lists(),
        "interned list count diverges"
    );
    assert_eq!(
        a.links().num_pooled_links(),
        b.links().num_pooled_links(),
        "pool layout diverges"
    );
    for id in a.links().all_ids() {
        assert_eq!(a.count_rooted(id), b.count_rooted(id), "count of {id}");
        assert_eq!(
            a.links().children_of(id),
            b.links().children_of(id),
            "alternative lists of {id}"
        );
    }
    if !a.total().is_zero() {
        let mut last = a.total().clone();
        last.decr();
        for rank in [Nat::zero(), last] {
            let plan = a.unrank(&rank).expect("rank in range");
            assert_eq!(plan, b.unrank(&rank).expect("rank in range"));
            assert_eq!(b.rank(&plan).expect("member plan"), rank);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random topology × size × seed: single-threaded and 4-thread
    /// builds of the optimizer's memo must be indistinguishable.
    #[test]
    fn one_and_four_thread_builds_agree(
        topo_sel in 0usize..4,
        rels in 3usize..6,
        seed in 0u64..1000,
    ) {
        let spec = JoinGraphSpec::new(Topology::ALL[topo_sel], rels, seed);
        let (catalog, query) = spec.build();
        let optimized = optimize(&catalog, &query, &OptimizerConfig::default())
            .expect("synthetic queries optimize");
        let memo = Arc::new(optimized.memo);
        let query = Arc::new(query);

        let sequential = build_with(1, &memo, &query);
        let parallel = build_with(4, &memo, &query);
        assert_identical(&sequential, &parallel);

        // Batched sampling consumes the RNG identically at every thread
        // count (ranks are drawn up front, unranking is pure).
        let draw = |space: &PlanSpace, threads: usize| {
            threadpool::with_threads(threads, || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D);
                space.sample_batch(&mut rng, 300)
            })
        };
        let trees = draw(&sequential, 1);
        prop_assert_eq!(&trees, &draw(&parallel, 4));

        // The flat u64 fast path consumes the RNG identically to the
        // Nat path (`random_below` on a single-limb bound is one
        // `gen_range`), so its batches are bit-identical to the tree
        // sampler's at every thread count too.
        let draw_flat = |space: &PlanSpace, threads: usize| {
            threadpool::with_threads(threads, || {
                let mut out = plansample::PlanBatch::new();
                let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D);
                space.sample_batch_flat(&mut rng, 300, &mut out);
                out
            })
        };
        for threads in [1usize, 4] {
            let flat = draw_flat(&sequential, threads);
            prop_assert_eq!(flat.len(), trees.len());
            for (ids, tree) in flat.iter().zip(&trees) {
                let expected = tree.preorder_ids();
                prop_assert_eq!(ids, expected.as_slice(),
                    "flat batch diverged at {} threads", threads);
            }
        }
    }
}

/// A directly synthesized clique space large enough that the parallel
/// strata genuinely fan out (multi-level DAG, hundreds of lists), with
/// an oversubscribed thread count to shake out chunking edge cases.
#[test]
fn synthesized_clique_agrees_across_thread_counts() {
    let (_, query, memo) = JoinGraphSpec::new(Topology::Clique, 7, 20000).build_memo();
    let (memo, query) = (Arc::new(memo), Arc::new(query));
    let reference = build_with(1, &memo, &query);
    for threads in [2, 3, 8] {
        let parallel = build_with(threads, &memo, &query);
        assert_identical(&reference, &parallel);
    }
}
