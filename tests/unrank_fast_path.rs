//! Differential tests of the `u64` fast-path unranker (DESIGN.md §11).
//!
//! `sample_batch_flat` specializes the mixed-radix decomposition to one
//! machine word when every count in the space fits `u64`, and falls
//! back to the exact `Nat` path otherwise. Correctness here is entirely
//! differential: on the *same seed*, the flat batch must reproduce the
//! tree sampler's plans bit for bit —
//!
//! * on random optimizer-built join-graph topologies (all single-limb
//!   at these sizes, so the fast path is what's exercised);
//! * on directly synthesized spaces chosen to straddle the single-limb
//!   boundary: chain/cycle graphs large enough that their totals need
//!   two limbs (forcing the `Nat` fallback) and clique-9, the smallest
//!   clique past the boundary;
//! * and the criterion itself is pinned: `has_fast_path()` must be
//!   false exactly when some count exceeds `u64`.
//!
//! clique-10 (the bench's fallback regime) is covered when
//! `PLANSAMPLE_STATISTICAL=1` — its debug-mode memo synthesis is too
//! slow for the fast test tier.

use plansample::{PlanBatch, PlanSpace};
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_optimizer::{optimize, OptimizerConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Draws `k` plans through both samplers on the same seed and asserts
/// the flat batch equals the tree batch's preorder listings.
fn assert_flat_matches_tree(space: &PlanSpace, seed: u64, k: usize) {
    let trees = {
        let mut rng = StdRng::seed_from_u64(seed);
        space.sample_batch(&mut rng, k)
    };
    let mut flat = PlanBatch::new();
    let mut rng = StdRng::seed_from_u64(seed);
    space.sample_batch_flat(&mut rng, k, &mut flat);
    assert_eq!(flat.len(), trees.len());
    for (i, (ids, tree)) in flat.iter().zip(&trees).enumerate() {
        assert_eq!(
            ids,
            tree.preorder_ids().as_slice(),
            "draw {i} diverged (fast_path={})",
            space.counts().has_fast_path()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random topology × size × seed over optimizer-built memos: the
    /// flat sampler is indistinguishable from the tree sampler.
    #[test]
    fn fast_path_matches_nat_path_on_random_topologies(
        topo_sel in 0usize..4,
        rels in 3usize..6,
        seed in 0u64..1000,
    ) {
        let spec = JoinGraphSpec::new(Topology::ALL[topo_sel], rels, seed);
        let (catalog, query) = spec.build();
        let optimized = optimize(&catalog, &query, &OptimizerConfig::default())
            .expect("synthetic queries optimize");
        let space = PlanSpace::build_shared(Arc::new(optimized.memo), Arc::new(query))
            .expect("acyclic memo");
        prop_assert!(
            space.counts().has_fast_path(),
            "spaces this small must stay single-limb"
        );
        assert_flat_matches_tree(&space, seed ^ 0xFA57, 128);
    }

    /// Directly synthesized chains and cycles across the single-limb
    /// boundary: small ones take the fast path, large ones fall back,
    /// and both produce identical batches.
    #[test]
    fn fallback_boundary_is_exact_and_differential(
        cycle in any::<bool>(),
        rels in 5usize..15,
        seed in 0u64..100,
    ) {
        let topo = if cycle { Topology::Cycle } else { Topology::Chain };
        let (_, query, memo) = JoinGraphSpec::new(topo, rels, 20000 + seed).build_memo();
        let space = PlanSpace::build_shared(Arc::new(memo), Arc::new(query))
            .expect("synthetic memo is acyclic");
        // The criterion is the space's own counts, nothing heuristic:
        // the sidecar exists iff every count fits u64.
        let all_fit = space.links().all_ids().all(|id|
            space.count_rooted(id).to_u64().is_some())
            && space.total().to_u64().is_some();
        prop_assert_eq!(space.counts().has_fast_path(), all_fit);
        assert_flat_matches_tree(&space, seed ^ 0xB0B, 64);
    }
}

/// clique-9: the smallest clique whose total overflows one limb — the
/// forced multi-limb fallback named by the bench — must still match
/// the tree sampler draw for draw.
#[test]
fn clique9_forces_the_nat_fallback_and_matches() {
    let (_, query, memo) = JoinGraphSpec::new(Topology::Clique, 9, 20000).build_memo();
    let space = PlanSpace::build_shared(Arc::new(memo), Arc::new(query)).expect("clique-9 builds");
    assert!(
        !space.counts().has_fast_path(),
        "clique-9 total {} must not fit one limb",
        space.total()
    );
    assert!(space.total().limbs().len() >= 2);
    assert_flat_matches_tree(&space, 0x911, 48);
}

/// clique-10 (the sampling bench's fallback regime), in the slow tier
/// only.
#[test]
fn clique10_fallback_matches_in_the_statistical_tier() {
    if std::env::var("PLANSAMPLE_STATISTICAL").is_err() {
        eprintln!("skipping clique-10 fallback check (set PLANSAMPLE_STATISTICAL=1)");
        return;
    }
    let (_, query, memo) = JoinGraphSpec::new(Topology::Clique, 10, 20000).build_memo();
    let space = PlanSpace::build_shared(Arc::new(memo), Arc::new(query)).expect("clique-10 builds");
    assert!(!space.counts().has_fast_path());
    assert_flat_matches_tree(&space, 0x1010, 32);
}
