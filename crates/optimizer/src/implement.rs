//! Implementation rules and enforcers: turning logical alternatives into
//! costed physical operators.
//!
//! Mirrors the paper's rule classes (§2): "a physical operator in the
//! same group, e.g. join → hash join", plus property enforcers (the
//! `Sort` in group 1 of Figure 2 whose child is its own group). Every
//! physical expression is costed at creation; local costs depend only on
//! group-level cardinality estimates, so they are identical across child
//! choices — the invariant that makes a plan's cost the sum of its
//! operators' local costs.

use crate::CostModel;
use plansample_catalog::Catalog;
use plansample_memo::{
    satisfies_cols, GroupId, GroupKey, LogicalOp, Memo, PhysicalExpr, PhysicalOp, SortOrder,
};
use plansample_query::{ColRef, QuerySpec, RelSet};

/// Applies implementation rules to every logical expression of every
/// group. Exploration must be complete beforehand.
pub fn implement_all(
    query: &QuerySpec,
    catalog: &Catalog,
    cost: &CostModel,
    enable_merge_joins: bool,
    enable_index_scans: bool,
    memo: &mut Memo,
) {
    for gid in (0..memo.num_groups() as u32).map(GroupId) {
        let key = memo.group(gid).key;
        let logical = memo.group(gid).logical.clone();
        for op in logical {
            match op {
                LogicalOp::Scan { rel } => {
                    implement_scan(query, catalog, cost, enable_index_scans, memo, gid, rel)
                }
                LogicalOp::Join { left, right } => implement_join(
                    query,
                    catalog,
                    cost,
                    enable_merge_joins,
                    memo,
                    gid,
                    key,
                    left,
                    right,
                ),
                LogicalOp::Agg { input } => implement_agg(query, catalog, cost, memo, gid, input),
            }
        }
    }
}

fn rels_of(memo: &Memo, g: GroupId) -> RelSet {
    memo.group(g)
        .key
        .rels()
        .expect("join/scan inputs are relation-set groups")
}

fn implement_scan(
    query: &QuerySpec,
    catalog: &Catalog,
    cost: &CostModel,
    enable_index_scans: bool,
    memo: &mut Memo,
    gid: GroupId,
    rel: plansample_query::RelId,
) {
    let table = catalog.table(query.relations[rel.idx()].table);
    let stored_rows = table.row_count as f64;
    let out_card = query.filtered_card(catalog, rel);

    memo.add_physical(
        gid,
        PhysicalExpr::new(
            PhysicalOp::TableScan { rel },
            cost.table_scan(stored_rows),
            out_card,
        ),
    );
    if enable_index_scans {
        for ix in &table.indexes {
            let col = ColRef {
                rel,
                col: ix.column as u32,
            };
            memo.add_physical(
                gid,
                PhysicalExpr::new(
                    PhysicalOp::SortedIdxScan { rel, col },
                    cost.idx_scan(stored_rows),
                    out_card,
                ),
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn implement_join(
    query: &QuerySpec,
    catalog: &Catalog,
    cost: &CostModel,
    enable_merge_joins: bool,
    memo: &mut Memo,
    gid: GroupId,
    key: GroupKey,
    left: GroupId,
    right: GroupId,
) {
    let (lset, rset) = (rels_of(memo, left), rels_of(memo, right));
    let set = key.rels().expect("join group has a relation set");
    debug_assert_eq!(lset.union(rset), set);
    let (lcard, rcard) = (query.set_card(catalog, lset), query.set_card(catalog, rset));
    let out_card = query.set_card(catalog, set);
    let crossing = query.edges_crossing(lset, rset);

    // Nested loops handle any predicate set, including pure cross products.
    memo.add_physical(
        gid,
        PhysicalExpr::new(
            PhysicalOp::NestedLoopJoin { left, right },
            cost.nested_loop_join(lcard, rcard),
            out_card,
        ),
    );

    if !crossing.is_empty() {
        memo.add_physical(
            gid,
            PhysicalExpr::new(
                PhysicalOp::HashJoin { left, right },
                cost.hash_join(lcard, rcard),
                out_card,
            ),
        );
        if enable_merge_joins {
            // One merge-join alternative per crossing predicate: merge on
            // that key, remaining crossing predicates become residuals.
            for edge in crossing {
                let (lk, rk) = if lset.contains(edge.left.rel) {
                    (edge.left, edge.right)
                } else {
                    (edge.right, edge.left)
                };
                memo.add_physical(
                    gid,
                    PhysicalExpr::new(
                        PhysicalOp::MergeJoin {
                            left,
                            right,
                            left_key: lk,
                            right_key: rk,
                        },
                        cost.merge_join(lcard, rcard),
                        out_card,
                    ),
                );
            }
        }
    }
}

fn implement_agg(
    query: &QuerySpec,
    catalog: &Catalog,
    cost: &CostModel,
    memo: &mut Memo,
    gid: GroupId,
    input: GroupId,
) {
    let agg = query
        .aggregate
        .as_ref()
        .expect("Agg logical expression implies an aggregate in the query");
    let in_card = query.set_card(catalog, rels_of(memo, input));
    let out_card = query.grouped_card(catalog, rels_of(memo, input), &agg.group_by);
    let group_order = SortOrder::on(agg.group_by.clone());

    memo.add_physical(
        gid,
        PhysicalExpr::new(
            PhysicalOp::HashAgg { input },
            cost.hash_agg(in_card),
            out_card,
        ),
    );
    memo.add_physical(
        gid,
        PhysicalExpr::new(
            PhysicalOp::StreamAgg {
                input,
                group_order: group_order.clone(),
            },
            cost.stream_agg(in_card),
            out_card,
        ),
    );
}

/// Adds `Sort` enforcers for every *interesting order* of every
/// relation-set group: orders a parent might require, i.e. the local
/// endpoint of each join edge leaving the group's relation set, plus the
/// group-by order for the full set. Enforcers whose eligible child set
/// would be empty (everything already sorted) are skipped.
pub fn add_enforcers(query: &QuerySpec, catalog: &Catalog, cost: &CostModel, memo: &mut Memo) {
    let all = query.all_rels();
    for gid in (0..memo.num_groups() as u32).map(GroupId) {
        let GroupKey::Rels(set) = memo.group(gid).key else {
            continue; // nothing above the aggregate requires an order
        };

        let mut orders: Vec<SortOrder> = Vec::new();
        for edge in &query.join_edges {
            for col in [edge.left, edge.right] {
                let other = if col == edge.left {
                    edge.right
                } else {
                    edge.left
                };
                if set.contains(col.rel) && !set.contains(other.rel) {
                    let ord = SortOrder::on_col(col);
                    if !orders.contains(&ord) {
                        orders.push(ord);
                    }
                }
            }
        }
        if set == all {
            if let Some(agg) = &query.aggregate {
                if !agg.group_by.is_empty() {
                    let ord = SortOrder::on(agg.group_by.clone());
                    if !orders.contains(&ord) {
                        orders.push(ord);
                    }
                }
            }
        }

        let card = query.set_card(catalog, set);
        for target in orders {
            let has_sortable_input = memo.group(gid).physical.iter().any(|e| {
                !e.op.is_enforcer() && !satisfies_cols(query, set, e.delivered_cols(), &target)
            });
            if has_sortable_input {
                memo.add_physical(
                    gid,
                    PhysicalExpr::new(
                        PhysicalOp::Sort {
                            target: target.clone(),
                        },
                        cost.sort(card),
                        card,
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_bottom_up;
    use plansample_catalog::{table, ColType};
    use plansample_query::QueryBuilder;

    /// a(k indexed, v) ⋈ b(k indexed) on a.k = b.k.
    fn setup() -> (Catalog, QuerySpec, Memo) {
        let mut cat = Catalog::new();
        cat.add_table(
            table("a", 1000)
                .col("k", ColType::Int, 1000)
                .col("v", ColType::Int, 10)
                .index_on(0)
                .build(),
        )
        .unwrap();
        cat.add_table(
            table("b", 500)
                .col("k", ColType::Int, 500)
                .index_on(0)
                .build(),
        )
        .unwrap();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("a", None).unwrap();
        qb.rel("b", None).unwrap();
        qb.join(("a", "k"), ("b", "k")).unwrap();
        let q = qb.build().unwrap();

        let mut memo = Memo::new();
        explore_bottom_up(&q, false, &mut memo).unwrap();
        let cost = CostModel::default();
        implement_all(&q, &cat, &cost, true, true, &mut memo);
        add_enforcers(&q, &cat, &cost, &mut memo);
        (cat, q, memo)
    }

    fn ops_of(memo: &Memo, gid: u32) -> Vec<&'static str> {
        memo.group(GroupId(gid))
            .physical
            .iter()
            .map(|e| e.op.name())
            .collect()
    }

    #[test]
    fn scan_group_contents_match_figure2_shape() {
        let (_cat, _q, memo) = setup();
        // Group {a}: TableScan, SortedIdxScan(k), Sort(k targeting the
        // join order) — exactly the paper's group-1 shape.
        let names = ops_of(&memo, 0);
        assert_eq!(names, vec!["TableScan", "SortedIdxScan", "Sort"]);
    }

    #[test]
    fn join_group_has_all_implementations_in_both_orders() {
        let (_cat, _q, memo) = setup();
        let names = ops_of(&memo, 2);
        // Two logical orders × (NLJ, HashJoin, MergeJoin) = 6.
        assert_eq!(names.len(), 6);
        assert_eq!(names.iter().filter(|n| **n == "NestedLoopJoin").count(), 2);
        assert_eq!(names.iter().filter(|n| **n == "HashJoin").count(), 2);
        assert_eq!(names.iter().filter(|n| **n == "MergeJoin").count(), 2);
    }

    #[test]
    fn costs_are_finite_and_positive() {
        let (_cat, _q, memo) = setup();
        for g in memo.groups() {
            for e in &g.physical {
                assert!(e.local_cost.is_finite() && e.local_cost > 0.0);
                assert!(e.out_card >= 1.0);
            }
        }
    }

    #[test]
    fn no_enforcer_above_join_without_outward_edges() {
        let (_cat, _q, memo) = setup();
        // Group {a,b} covers all relations and the query has no
        // aggregate: no interesting orders, hence no Sort.
        assert!(ops_of(&memo, 2).iter().all(|n| *n != "Sort"));
    }

    #[test]
    fn cross_product_only_gets_nested_loops() {
        let mut cat = Catalog::new();
        cat.add_table(table("a", 10).col("x", ColType::Int, 10).build())
            .unwrap();
        cat.add_table(table("b", 10).col("y", ColType::Int, 10).build())
            .unwrap();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("a", None).unwrap();
        qb.rel("b", None).unwrap();
        let q = qb.build().unwrap(); // no join edge
        let mut memo = Memo::new();
        explore_bottom_up(&q, true, &mut memo).unwrap();
        let cost = CostModel::default();
        implement_all(&q, &cat, &cost, true, true, &mut memo);
        let names = ops_of(&memo, 2);
        assert!(names.iter().all(|n| *n == "NestedLoopJoin"), "{names:?}");
    }

    #[test]
    fn aggregate_group_gets_both_implementations() {
        let (cat, _) = plansample_catalog::tpch::catalog();
        let q = plansample_query::tpch::q5(&cat);
        let mut memo = Memo::new();
        explore_bottom_up(&q, false, &mut memo).unwrap();
        let cost = CostModel::default();
        implement_all(&q, &cat, &cost, true, true, &mut memo);
        let agg_group = memo.group(memo.root());
        let names: Vec<_> = agg_group.physical.iter().map(|e| e.op.name()).collect();
        assert_eq!(names, vec!["HashAgg", "StreamAgg"]);
    }

    #[test]
    fn merge_join_per_crossing_edge() {
        // Two predicates between a and b -> two merge-join alternatives
        // per logical order.
        let mut cat = Catalog::new();
        cat.add_table(
            table("a", 100)
                .col("x", ColType::Int, 100)
                .col("y", ColType::Int, 100)
                .build(),
        )
        .unwrap();
        cat.add_table(
            table("b", 100)
                .col("x", ColType::Int, 100)
                .col("y", ColType::Int, 100)
                .build(),
        )
        .unwrap();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("a", None).unwrap();
        qb.rel("b", None).unwrap();
        qb.join(("a", "x"), ("b", "x")).unwrap();
        qb.join(("a", "y"), ("b", "y")).unwrap();
        let q = qb.build().unwrap();
        let mut memo = Memo::new();
        explore_bottom_up(&q, false, &mut memo).unwrap();
        let cost = CostModel::default();
        implement_all(&q, &cat, &cost, true, true, &mut memo);
        let names = ops_of(&memo, 2);
        assert_eq!(names.iter().filter(|n| **n == "MergeJoin").count(), 4);
    }

    #[test]
    fn index_scans_can_be_disabled() {
        let (cat, q, _) = setup();
        let mut memo = Memo::new();
        explore_bottom_up(&q, false, &mut memo).unwrap();
        let cost = CostModel::default();
        implement_all(&q, &cat, &cost, true, false, &mut memo);
        assert!(memo
            .groups()
            .flat_map(|g| g.physical.iter())
            .all(|e| !matches!(e.op, PhysicalOp::SortedIdxScan { .. })));
    }
}
