//! Collection strategies: [`vec()`].

use crate::strategy::{uniform_u128_inclusive, Strategy};
use crate::test_runner::TestRunner;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    /// An exact length.
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range is empty");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec size range is empty");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let len =
            uniform_u128_inclusive(runner, self.size.lo as u128, self.size.hi as u128) as usize;
        (0..len).map(|_| self.element.generate(runner)).collect()
    }
}
