//! Logical exploration: populating the MEMO with every logical join
//! alternative.
//!
//! Two interchangeable strategies, mirroring the paper's §2 remark that
//! the counting technique "could be transferred easily to the Starburst
//! enumerator" because bottom-up enumeration "implicitly uses a similar
//! data structure":
//!
//! - [`explore_bottom_up`]: Starburst-style enumeration over relation
//!   subsets (size-ascending). Guaranteed complete: every connected
//!   subset (or every subset when cross products are allowed) becomes a
//!   group holding every commutative split.
//! - [`explore_transform`]: Volcano/Cascades-style — copy the initial
//!   left-deep plan into the memo (Figure 1) and apply join commutativity
//!   and associativity transformation rules to a fixpoint (Figure 2).
//!
//! For acyclic queries both strategies provably produce the same closure;
//! the integration tests assert memo equality on such queries.

use crate::OptError;
use plansample_memo::{GroupId, GroupKey, LogicalOp, Memo};
use plansample_query::{QuerySpec, RelId, RelSet};

/// Creates singleton groups (with `Scan` logical expressions) for every
/// relation; returns their group ids indexed by relation.
fn add_scan_groups(query: &QuerySpec, memo: &mut Memo) -> Vec<GroupId> {
    (0..query.relations.len())
        .map(|i| {
            let rel = RelId(i as u32);
            let g = memo.add_group(GroupKey::Rels(RelSet::singleton(rel)));
            memo.add_logical(g, LogicalOp::Scan { rel });
            g
        })
        .collect()
}

/// Installs the aggregate group (if the query has one) above `join_root`
/// and marks the memo root.
fn finish_root(query: &QuerySpec, memo: &mut Memo, join_root: GroupId) {
    if query.aggregate.is_some() {
        let agg = memo.add_group(GroupKey::Agg);
        memo.add_logical(agg, LogicalOp::Agg { input: join_root });
        memo.set_root(agg);
    } else {
        memo.set_root(join_root);
    }
}

/// Is a join of `left` and `right` admissible under the cross-product
/// policy? Without cross products both halves must be connected and at
/// least one predicate must cross the cut (guaranteed by connectivity of
/// the union).
fn split_admissible(query: &QuerySpec, allow_cp: bool, left: RelSet, right: RelSet) -> bool {
    if allow_cp {
        true
    } else {
        query.connected(left)
            && query.connected(right)
            && !query.edges_crossing(left, right).is_empty()
    }
}

/// Bottom-up (Starburst-style) exhaustive exploration.
pub fn explore_bottom_up(
    query: &QuerySpec,
    allow_cp: bool,
    memo: &mut Memo,
) -> Result<(), OptError> {
    let n = query.relations.len();
    let scans = add_scan_groups(query, memo);
    if n == 1 {
        finish_root(query, memo, scans[0]);
        return Ok(());
    }

    // Enumerate subsets in size order so every admissible half already
    // has a group when its parent set is processed.
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut subsets: Vec<u64> = (1..=full).filter(|m| m.count_ones() >= 2).collect();
    subsets.sort_by_key(|m| m.count_ones());

    for mask in subsets {
        let set = RelSet::from_iter(
            (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| RelId(i as u32)),
        );
        if !allow_cp && !query.connected(set) {
            continue;
        }
        for (l, r) in set.splits() {
            if !split_admissible(query, allow_cp, l, r) {
                continue;
            }
            let gl = memo
                .find_group(GroupKey::Rels(l))
                .expect("size-ordered enumeration creates halves first");
            let gr = memo
                .find_group(GroupKey::Rels(r))
                .expect("size-ordered enumeration creates halves first");
            let g = memo.add_group(GroupKey::Rels(set));
            // Both commutative orders, as in the paper's Figure 2 where
            // join(1,2) and join(2,1) are distinct expressions 3.1/3.2.
            memo.add_logical(
                g,
                LogicalOp::Join {
                    left: gl,
                    right: gr,
                },
            );
            memo.add_logical(
                g,
                LogicalOp::Join {
                    left: gr,
                    right: gl,
                },
            );
        }
    }

    let root = memo
        .find_group(GroupKey::Rels(RelSet::all(n)))
        .expect("connected query produces a full-set group");
    finish_root(query, memo, root);
    Ok(())
}

/// Builds the initial left-deep logical plan greedily along join edges
/// (so that, without cross products, every prefix is connected) and
/// copies it into the memo — the paper's Figure 1 step. Returns the group
/// of the full relation set.
fn copy_in_initial_plan(query: &QuerySpec, memo: &mut Memo) -> GroupId {
    let n = query.relations.len();
    let scans = add_scan_groups(query, memo);
    // Greedy connected order (falls back to index order for disconnected
    // remainders, which only happens when cross products are allowed).
    let mut order: Vec<RelId> = vec![RelId(0)];
    let mut covered = RelSet::singleton(RelId(0));
    while order.len() < n {
        let next = (0..n)
            .map(|i| RelId(i as u32))
            .find(|&r| {
                !covered.contains(r)
                    && !query
                        .edges_crossing(covered, RelSet::singleton(r))
                        .is_empty()
            })
            .or_else(|| {
                (0..n)
                    .map(|i| RelId(i as u32))
                    .find(|&r| !covered.contains(r))
            })
            .expect("n relations to place");
        order.push(next);
        covered.insert(next);
    }

    let mut cur_set = RelSet::singleton(order[0]);
    let mut cur_group = scans[order[0].idx()];
    for &rel in &order[1..] {
        let next_set = cur_set.union(RelSet::singleton(rel));
        let g = memo.add_group(GroupKey::Rels(next_set));
        memo.add_logical(
            g,
            LogicalOp::Join {
                left: cur_group,
                right: scans[rel.idx()],
            },
        );
        cur_set = next_set;
        cur_group = g;
    }
    cur_group
}

/// Transformation-based (Volcano/Cascades-style) exploration: initial
/// plan copy-in followed by rule application to a fixpoint.
///
/// Rules:
/// - **Commutativity** `join(A,B) → join(B,A)` (same group);
/// - **Right associativity** `join(join(A,B),C) → join(A, join(B,C))`,
///   creating the inner group as needed;
/// - **Left associativity** `join(A, join(B,C)) → join(join(A,B), C)`.
pub fn explore_transform(
    query: &QuerySpec,
    allow_cp: bool,
    memo: &mut Memo,
) -> Result<(), OptError> {
    let n = query.relations.len();
    let join_root = copy_in_initial_plan(query, memo);
    if n > 1 {
        apply_rules_to_fixpoint(query, allow_cp, memo);
    }
    finish_root(query, memo, join_root);
    Ok(())
}

fn rels_of(memo: &Memo, g: GroupId) -> RelSet {
    match memo.group(g).key {
        GroupKey::Rels(s) => s,
        GroupKey::Agg => unreachable!("joins never reference the aggregate group"),
    }
}

fn apply_rules_to_fixpoint(query: &QuerySpec, allow_cp: bool, memo: &mut Memo) {
    loop {
        let mut new_exprs: Vec<(GroupId, LogicalOp)> = Vec::new();
        let snapshot: Vec<(GroupId, LogicalOp)> = memo
            .groups()
            .flat_map(|g| g.logical.iter().cloned().map(move |op| (g.id, op)))
            .collect();

        for (gid, op) in &snapshot {
            let LogicalOp::Join { left, right } = op else {
                continue;
            };
            // Commutativity.
            new_exprs.push((
                *gid,
                LogicalOp::Join {
                    left: *right,
                    right: *left,
                },
            ));
            // Right associativity: join(join(A,B), C) → join(A, join(B,C)).
            for inner in memo.group(*left).logical.clone() {
                let LogicalOp::Join { left: a, right: b } = inner else {
                    continue;
                };
                let (b_set, c_set) = (rels_of(memo, b), rels_of(memo, *right));
                if split_admissible(query, allow_cp, b_set, c_set) {
                    let bc = memo.add_group(GroupKey::Rels(b_set.union(c_set)));
                    memo.add_logical(
                        bc,
                        LogicalOp::Join {
                            left: b,
                            right: *right,
                        },
                    );
                    new_exprs.push((*gid, LogicalOp::Join { left: a, right: bc }));
                }
            }
            // Left associativity: join(A, join(B,C)) → join(join(A,B), C).
            for inner in memo.group(*right).logical.clone() {
                let LogicalOp::Join { left: b, right: c } = inner else {
                    continue;
                };
                let (a_set, b_set) = (rels_of(memo, *left), rels_of(memo, b));
                if split_admissible(query, allow_cp, a_set, b_set) {
                    let ab = memo.add_group(GroupKey::Rels(a_set.union(b_set)));
                    memo.add_logical(
                        ab,
                        LogicalOp::Join {
                            left: *left,
                            right: b,
                        },
                    );
                    new_exprs.push((*gid, LogicalOp::Join { left: ab, right: c }));
                }
            }
        }

        let mut changed = false;
        for (gid, op) in new_exprs {
            changed |= memo.add_logical(gid, op);
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_catalog::{table, Catalog, ColType};
    use plansample_query::QueryBuilder;

    /// Chain query a—b—c—… with `n` relations.
    fn chain(n: usize) -> (Catalog, QuerySpec) {
        let mut cat = Catalog::new();
        for i in 0..n {
            cat.add_table(
                table(&format!("t{i}"), 100 * (i as u64 + 1))
                    .col("k", ColType::Int, 100)
                    .col("fk", ColType::Int, 100)
                    .build(),
            )
            .unwrap();
        }
        let mut qb = QueryBuilder::new(&cat);
        for i in 0..n {
            qb.rel(&format!("t{i}"), None).unwrap();
        }
        for i in 0..n - 1 {
            qb.join((&format!("t{i}"), "fk"), (&format!("t{}", i + 1), "k"))
                .unwrap();
        }
        let q = qb.build().unwrap();
        (cat, q)
    }

    fn logical_join_count(memo: &Memo) -> usize {
        memo.groups()
            .flat_map(|g| g.logical.iter())
            .filter(|op| matches!(op, LogicalOp::Join { .. }))
            .count()
    }

    #[test]
    fn chain3_bottom_up_groups() {
        let (_cat, q) = chain(3);
        let mut memo = Memo::new();
        explore_bottom_up(&q, false, &mut memo).unwrap();
        // Connected subsets of a 3-chain: {0},{1},{2},{01},{12},{012}: 6.
        assert_eq!(memo.num_groups(), 6);
        // {01}: 2 joins, {12}: 2, {012}: splits {0|12},{01|2} ×2 orders = 4.
        assert_eq!(logical_join_count(&memo), 8);
    }

    #[test]
    fn chain3_with_cross_products_has_more_groups() {
        let (_cat, q) = chain(3);
        let mut no_cp = Memo::new();
        explore_bottom_up(&q, false, &mut no_cp).unwrap();
        let mut cp = Memo::new();
        explore_bottom_up(&q, true, &mut cp).unwrap();
        // All 7 non-empty subsets get groups with CP.
        assert_eq!(cp.num_groups(), 7);
        assert!(logical_join_count(&cp) > logical_join_count(&no_cp));
        // {012} with CP: all 3 splits × 2 orders = 6 joins in that group.
    }

    #[test]
    fn transform_matches_bottom_up_on_chains() {
        for n in 2..=5 {
            let (_cat, q) = chain(n);
            let mut bu = Memo::new();
            explore_bottom_up(&q, false, &mut bu).unwrap();
            let mut tr = Memo::new();
            explore_transform(&q, false, &mut tr).unwrap();
            assert_eq!(
                bu.num_groups(),
                tr.num_groups(),
                "group count for chain({n})"
            );
            assert_eq!(
                logical_join_count(&bu),
                logical_join_count(&tr),
                "join expression count for chain({n})"
            );
        }
    }

    #[test]
    fn transform_matches_bottom_up_on_star() {
        // star: t0 joined to t1, t2, t3.
        let mut cat = Catalog::new();
        for i in 0..4 {
            cat.add_table(
                table(&format!("t{i}"), 100)
                    .col("k", ColType::Int, 100)
                    .build(),
            )
            .unwrap();
        }
        let mut qb = QueryBuilder::new(&cat);
        for i in 0..4 {
            qb.rel(&format!("t{i}"), None).unwrap();
        }
        for i in 1..4 {
            qb.join(("t0", "k"), (&format!("t{i}"), "k")).unwrap();
        }
        let q = qb.build().unwrap();

        let mut bu = Memo::new();
        explore_bottom_up(&q, false, &mut bu).unwrap();
        let mut tr = Memo::new();
        explore_transform(&q, false, &mut tr).unwrap();
        assert_eq!(bu.num_groups(), tr.num_groups());
        assert_eq!(logical_join_count(&bu), logical_join_count(&tr));
    }

    #[test]
    fn single_relation_query() {
        let (_cat, q) = chain(1);
        let mut memo = Memo::new();
        explore_bottom_up(&q, false, &mut memo).unwrap();
        assert_eq!(memo.num_groups(), 1);
        assert_eq!(memo.root(), GroupId(0));
    }

    #[test]
    fn initial_plan_is_connected_prefix() {
        let (_cat, q) = chain(4);
        let mut memo = Memo::new();
        let root = copy_in_initial_plan(&q, &mut memo);
        assert_eq!(rels_of(&memo, root), RelSet::all(4));
        // Initial plan: 4 scans + 3 join groups = 7 groups, 3 joins.
        assert_eq!(memo.num_groups(), 7);
        assert_eq!(logical_join_count(&memo), 3);
    }

    #[test]
    fn agg_group_becomes_root() {
        let (cat, _) = plansample_catalog::tpch::catalog();
        let q = plansample_query::tpch::q5(&cat);
        let mut memo = Memo::new();
        explore_bottom_up(&q, false, &mut memo).unwrap();
        assert_eq!(memo.group(memo.root()).key, GroupKey::Agg);
    }
}
