//! Workspace-internal stand-in for the subset of the crates.io `rand` API
//! this repository uses.
//!
//! The build environment for this repository has no crates.io access, so the
//! workspace vendors the tiny slice of `rand` it actually calls: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, integer [`Rng::gen_range`],
//! [`Rng::gen`], and a deterministic seedable [`rngs::StdRng`].
//!
//! Two deliberate differences from crates.io `rand`:
//!
//! * [`rngs::StdRng`] is xoshiro256\*\* seeded through SplitMix64, **not**
//!   the ChaCha12 generator of `rand 0.8` — identical seeds produce
//!   different streams than upstream. All consumers in this workspace only
//!   rely on determinism-per-seed and statistical quality, never on the
//!   exact upstream stream.
//! * Only the types and methods the workspace exercises exist. Swapping
//!   back to crates.io `rand` is a one-line change in the root
//!   `Cargo.toml`'s `[workspace.dependencies]` table.
//!
//! Range sampling uses rejection below the largest span multiple, so draws
//! are exactly uniform (no modulo bias) — the sampling-uniformity
//! chi-square tests in the umbrella crate depend on this.

#![warn(missing_docs)]

pub mod rngs;

/// A source of raw random 64-bit words. Object-safe core of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Returns a uniformly random value in `range` (exactly uniform via
    /// rejection sampling).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "uniform over the whole domain" distribution,
/// used by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from the *inclusive* interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from the half-open interval `[lo, hi)`; `lo < hi` holds.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Exactly uniform draw from `[lo, hi]` (inclusive) via rejection sampling.
fn uniform_u64_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    if lo == 0 && hi == u64::MAX {
        return rng.next_u64();
    }
    let span = hi - lo + 1;
    // 2^64 mod span; draws at or above 2^64 - excess are rejected so every
    // residue class is equally likely.
    let excess = (u64::MAX % span + 1) % span;
    loop {
        let r = rng.next_u64();
        if excess == 0 || r < u64::MAX - excess + 1 {
            return lo + r % span;
        }
    }
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                uniform_u64_inclusive(rng, lo as u64, hi as u64) as $t
            }

            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                uniform_u64_inclusive(rng, lo as u64, hi as u64 - 1) as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Flip the sign bit: an order-preserving bijection into $u.
                const FLIP: $u = 1 << (<$u>::BITS - 1);
                let lo = (lo as $u) ^ FLIP;
                let hi = (hi as $u) ^ FLIP;
                ((uniform_u64_inclusive(rng, lo as u64, hi as u64) as $u) ^ FLIP) as $t
            }

            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                const FLIP: $u = 1 << (<$u>::BITS - 1);
                let lo = (lo as $u) ^ FLIP;
                let hi = ((hi as $u) ^ FLIP) - 1;
                ((uniform_u64_inclusive(rng, lo as u64, hi as u64) as $u) ^ FLIP) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
