//! Strategies for `Option`: [`of`].

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Strategy yielding `Some` of the inner strategy's value half the time
/// and `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        if runner.next_u64() & 1 == 1 {
            Some(self.inner.generate(runner))
        } else {
            None
        }
    }
}
