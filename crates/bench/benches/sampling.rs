//! Uniform sampling throughput (rank draw + unranking), the §5
//! experiment workhorse: each Table 1 row and Figure 4 panel draws
//! 10 000 plans. Also measures the naive-walk baseline — the biased
//! alternative is *faster*, which is exactly why its bias matters: speed
//! is not the reason to prefer it.

use criterion::{criterion_group, criterion_main, Criterion};
use plansample_bench::prepare;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sampling(c: &mut Criterion) {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let cases = [
        ("Q5_noCP", plansample_query::tpch::q5(&catalog), false),
        ("Q8_CP", plansample_query::tpch::q8(&catalog), true),
    ];

    let mut group = c.benchmark_group("sample_plan");
    for (name, query, cp) in cases {
        let prepared = prepare(&catalog, "bench", query, cp);
        let space = prepared.space();
        group.bench_function(format!("uniform/{name}"), |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| std::hint::black_box(space.sample(&mut rng)))
        });
        group.bench_function(format!("naive_walk/{name}"), |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| std::hint::black_box(space.sample_naive_walk(&mut rng)))
        });
    }
    group.finish();

    // The full §5 unit of work: 10k samples with cost evaluation.
    let q5 = plansample_query::tpch::q5(&catalog);
    let prepared = prepare(&catalog, "Q5", q5, false);
    let mut group = c.benchmark_group("sample_10k_costs");
    group.sample_size(10);
    group.bench_function("Q5_noCP", |b| {
        b.iter(|| std::hint::black_box(plansample_bench::sample_scaled_costs(&prepared, 10_000, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
