//! Reusable flat plan batches — the allocation-free sampling surface.
//!
//! A [`PlanBatch`] holds `k` sampled plans as one contiguous buffer of
//! preorder [`PhysId`]s plus a bounds table, CSR-style, mirroring the
//! flat layout philosophy of [`crate::Links`]: after the first batch
//! warms its capacity, refilling it allocates nothing. The serving
//! layer's `SampleBatch` path and the throughput benchmark both sample
//! through this type; callers that want trees keep using
//! [`crate::PlanSpace::sample_batch`], which returns [`PlanNode`]s.
//!
//! A preorder id sequence determines the plan tree uniquely (each
//! operator's arity is known from the memo), so the flat form loses no
//! information — [`PlanNode::preorder_ids`] is the inverse direction,
//! and the differential tests compare the two representations directly.

use crate::links::ListId;
use plansample_memo::{PhysId, PlanNode};

/// A resizable, reusable batch of flat plans.
///
/// Obtain one with [`PlanBatch::new`], pass it to
/// [`crate::PlanSpace::sample_batch_flat`] (or the
/// [`crate::PreparedQuery`] delegation) as many times as needed; each
/// fill clears the previous content but keeps the capacity.
#[derive(Debug, Default, Clone)]
pub struct PlanBatch {
    /// Preorder operator ids of every plan, concatenated.
    ids: Vec<PhysId>,
    /// Plan `p` = `ids[bounds[p] as usize .. bounds[p+1] as usize]`;
    /// always starts with 0.
    bounds: Vec<u32>,
    /// Unrank scratch: the explicit recursion stack of the `u64` fast
    /// path, kept here so its capacity survives across draws.
    pub(crate) stack: Vec<(ListId, u64)>,
    /// Unrank scratch for the `u128` tier (same role as `stack`).
    pub(crate) stack_wide: Vec<(ListId, u128)>,
    /// Pre-drawn ranks of a parallel `u64`-tier fill, kept so the
    /// parallel path's per-fill draw buffer survives across fills.
    pub(crate) ranks: Vec<u64>,
    /// Pre-drawn ranks of a parallel `u128`-tier fill.
    pub(crate) ranks_wide: Vec<u128>,
    /// Per-shard sub-batches of the parallel fill — one per fixed-size
    /// rank chunk, merged in chunk order after the workers finish. Kept
    /// so shard capacities, too, survive across fills.
    pub(crate) shards: Vec<PlanBatch>,
}

impl PlanBatch {
    /// An empty batch; buffers grow on first use and are kept thereafter.
    pub fn new() -> PlanBatch {
        PlanBatch::default()
    }

    /// Number of plans currently held.
    pub fn len(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Whether the batch holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `p`-th plan as its preorder id sequence.
    ///
    /// # Panics
    /// Panics when `p >= len()`.
    #[inline]
    pub fn plan(&self, p: usize) -> &[PhysId] {
        &self.ids[self.bounds[p] as usize..self.bounds[p + 1] as usize]
    }

    /// Iterates the plans in draw order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[PhysId]> + '_ {
        (0..self.len()).map(|p| self.plan(p))
    }

    /// Drops the plans, keeping every buffer's capacity.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.bounds.clear();
    }

    /// Total preorder ids across all plans (the buffer payload size).
    pub fn total_nodes(&self) -> usize {
        self.ids.len()
    }

    /// Begins a fill: ensures the leading 0 bound is in place.
    pub(crate) fn start_fill(&mut self) {
        self.clear();
        self.bounds.push(0);
    }

    /// Direct access to the id buffer for the unrank fast path; the
    /// caller appends one plan's preorder ids then calls
    /// [`finish_plan`](Self::finish_plan).
    pub(crate) fn ids_mut(&mut self) -> &mut Vec<PhysId> {
        &mut self.ids
    }

    /// Seals the ids appended since the previous seal as one plan.
    pub(crate) fn finish_plan(&mut self) {
        debug_assert!(!self.bounds.is_empty(), "start_fill must come first");
        self.bounds.push(self.ids.len() as u32);
    }

    /// Appends a tree-form plan (the multi-limb fallback path).
    pub(crate) fn push_tree(&mut self, plan: &PlanNode) {
        fn rec(node: &PlanNode, ids: &mut Vec<PhysId>) {
            ids.push(node.id);
            for child in &node.children {
                rec(child, ids);
            }
        }
        rec(plan, &mut self.ids);
        self.finish_plan();
    }

    /// Appends every plan of `other` (the parallel-fill merge step).
    pub(crate) fn append_flat(&mut self, other: &PlanBatch) {
        let offset = self.ids.len() as u32;
        self.ids.extend_from_slice(&other.ids);
        self.bounds
            .extend(other.bounds[1..].iter().map(|&b| b + offset));
    }

    /// Bytes of memory held by the buffers, capacity-accurate,
    /// including every parallel-fill shard.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.ids.capacity() * std::mem::size_of::<PhysId>()
            + self.bounds.capacity() * std::mem::size_of::<u32>()
            + self.stack.capacity() * std::mem::size_of::<(ListId, u64)>()
            + self.stack_wide.capacity() * std::mem::size_of::<(ListId, u128)>()
            + self.ranks.capacity() * std::mem::size_of::<u64>()
            + self.ranks_wide.capacity() * std::mem::size_of::<u128>()
            + self.shards.iter().map(PlanBatch::size_bytes).sum::<usize>()
            + (self.shards.capacity() - self.shards.len()) * std::mem::size_of::<PlanBatch>()
    }
}

impl<'a> IntoIterator for &'a PlanBatch {
    type Item = &'a [PhysId];
    type IntoIter = Box<dyn ExactSizeIterator<Item = &'a [PhysId]> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::PlanSpace;
    use plansample_bignum::Nat;

    #[test]
    fn push_tree_matches_preorder_ids() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let mut batch = PlanBatch::new();
        batch.start_fill();
        for r in [0u64, 13, 31] {
            batch.push_tree(&space.unrank(&Nat::from(r)).unwrap());
        }
        assert_eq!(batch.len(), 3);
        for (p, r) in [0u64, 13, 31].iter().enumerate() {
            let tree = space.unrank(&Nat::from(*r)).unwrap();
            assert_eq!(batch.plan(p), tree.preorder_ids().as_slice());
        }
        assert_eq!(
            batch.total_nodes(),
            batch.iter().map(<[PhysId]>::len).sum::<usize>()
        );
    }

    #[test]
    fn append_flat_offsets_bounds() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let mut a = PlanBatch::new();
        a.start_fill();
        a.push_tree(&space.unrank(&Nat::from(1u64)).unwrap());
        let mut b = PlanBatch::new();
        b.start_fill();
        b.push_tree(&space.unrank(&Nat::from(2u64)).unwrap());
        b.push_tree(&space.unrank(&Nat::from(3u64)).unwrap());
        a.append_flat(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(
            a.plan(2),
            space
                .unrank(&Nat::from(3u64))
                .unwrap()
                .preorder_ids()
                .as_slice()
        );
    }

    #[test]
    fn clear_keeps_capacity() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let mut batch = PlanBatch::new();
        batch.start_fill();
        batch.push_tree(&space.unrank(&Nat::zero()).unwrap());
        let cap = batch.ids.capacity();
        assert!(cap > 0);
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.ids.capacity(), cap);
    }
}
