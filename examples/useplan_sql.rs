//! The paper's §4 workflow end-to-end: SQL with `OPTION (USEPLAN n)`.
//!
//! Parses SQL statements against the TPC-H catalog, executes them on a
//! synthetic micro database — once with the optimizer's plan, then with
//! explicitly numbered plans — and verifies all results agree. This is
//! the scripting loop the paper describes: "any given query can be
//! extended easily with the OPTION clause and a loop construct that
//! iterates over a deterministically or randomly selected set of
//! possible plans".
//!
//! ```text
//! cargo run --example useplan_sql
//! ```

use plansample::session::Session;
use plansample_bignum::Nat;
use plansample_datagen::MicroScale;
use plansample_exec::render_table;

fn main() {
    let (catalog, tables) = plansample_catalog::tpch::catalog();
    let db = plansample_datagen::generate(&catalog, &tables, &MicroScale::default(), 7);
    let session = Session::new(catalog, db);

    let sql = "SELECT n_name, SUM(l_extendedprice) \
               FROM lineitem l, supplier s, nation n, region r \
               WHERE l.l_suppkey = s.s_suppkey \
                 AND s.s_nationkey = n.n_nationkey \
                 AND n.n_regionkey = r.r_regionkey \
                 AND r.r_name = 'ASIA' \
               GROUP BY n.n_name";

    // Prepare once: the optimizer runs a single time and the memo is
    // reused by every USEPLAN execution in the loop below.
    let parsed = plansample_sql::parse(session.catalog(), sql).expect("valid SQL");
    let prepared = session.prepare(&parsed.spec).expect("query prepares");
    let reference = session
        .execute_prepared(&prepared, None)
        .expect("query runs");
    println!("query:\n  {sql}\n");
    println!(
        "optimizer's plan (cost {:.0}, space of {} plans):",
        reference.plan_cost, reference.space_size
    );
    println!("{}", reference.plan_text);
    println!("result:\n{}", render_table(&reference.table, 10));

    // Now the USEPLAN loop: pick plan numbers across the space and
    // check every one produces the same result.
    let total = reference.space_size.clone();
    let step = {
        let (q, _) = total.div_rem(&Nat::from(5u64));
        if q.is_zero() {
            Nat::one()
        } else {
            q
        }
    };
    let mut n = Nat::zero();
    while n < total {
        let useplan_sql = format!("{sql} OPTION (USEPLAN {n})");
        let parsed = plansample_sql::parse(session.catalog(), &useplan_sql).expect("valid SQL");
        let rank = parsed.useplan.expect("USEPLAN parsed");
        let outcome = session
            .execute_prepared(&prepared, Some(&rank))
            .expect("plan runs");
        let agrees = outcome.table.multiset_eq(&reference.table);
        println!(
            "USEPLAN {n:>14}: scaled cost {:>10.2}  rows {:>3}  {}",
            outcome.scaled_cost,
            outcome.table.len(),
            if agrees {
                "agrees with optimizer's plan"
            } else {
                "MISMATCH!"
            }
        );
        assert!(agrees, "differential testing failure");
        n += &step;
    }

    println!("\nall checked plans produced identical results — §4's oracle holds.");
}
