//! Implementation of the `plansample` command-line tool.
//!
//! The CLI wraps the full pipeline — SQL parsing, optimization, plan
//! counting, USEPLAN execution, uniform sampling, and differential
//! validation — over the built-in TPC-H catalog (SF-1 statistics) and a
//! seeded synthetic micro database. It is the paper's §4 "scripting
//! primitives" experience as a standalone binary:
//!
//! ```text
//! plansample-cli count    "SELECT ... FROM ... WHERE ..."
//! plansample-cli run      "SELECT ... OPTION (USEPLAN 8)"
//! plansample-cli sample   1000 "SELECT ..."
//! plansample-cli validate 200  "SELECT ..."
//! plansample-cli enumerate 20  "SELECT ..."
//! plansample-cli memo     "SELECT ..."
//! ```
//!
//! Global flags: `--cross-products`, `--seed N`, `--orders N` (micro
//! database size).

#![warn(missing_docs)]

use plansample::session::Session;
use plansample::PlanSpace;
use plansample_bignum::Nat;
use plansample_datagen::MicroScale;
use plansample_exec::render_table;
use plansample_optimizer::{optimize, OptimizerConfig};
use plansample_stats::{Histogram, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The action to perform.
    pub command: Command,
    /// Allow Cartesian products in the plan space.
    pub cross_products: bool,
    /// Seed for data generation and sampling.
    pub seed: u64,
    /// Orders in the micro database (other tables scale along).
    pub orders: usize,
}

/// CLI actions.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Count the plans of a query.
    Count(String),
    /// Execute the optimizer's plan (or `OPTION (USEPLAN n)` if present).
    Run(String),
    /// Sample `k` plans and report the scaled-cost distribution.
    Sample(usize, String),
    /// Differentially validate `k` sampled plans.
    Validate(usize, String),
    /// List the first `k` plans with costs.
    Enumerate(usize, String),
    /// Dump the memo structure (Figure-2 style).
    Memo(String),
    /// Print usage.
    Help,
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n\n{}", self.0, USAGE)
    }
}

impl std::error::Error for UsageError {}

/// Usage text.
pub const USAGE: &str = "\
plansample-cli — count, enumerate, sample, and validate execution plans
            (Waas & Galindo-Legaria, SIGMOD 2000)

USAGE:
  plansample-cli [FLAGS] count           \"SQL\"
  plansample-cli [FLAGS] run             \"SQL [OPTION (USEPLAN n)]\"
  plansample-cli [FLAGS] sample    K     \"SQL\"
  plansample-cli [FLAGS] validate  K     \"SQL\"
  plansample-cli [FLAGS] enumerate K     \"SQL\"
  plansample-cli [FLAGS] memo            \"SQL\"

FLAGS:
  --cross-products   include Cartesian products in the space
  --seed N           RNG seed (default 42)
  --orders N         orders in the micro database (default 120)

Queries run against the TPC-H schema (region, nation, supplier,
customer, part, partsupp, orders, lineitem) with SF-1 statistics and a
seeded synthetic micro database.";

/// Parses command-line arguments (without the program name).
pub fn parse_args<I, S>(args: I) -> Result<Cli, UsageError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut cross_products = false;
    let mut seed = 42u64;
    let mut orders = 120usize;
    let mut positional: Vec<String> = Vec::new();

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let arg = arg.as_ref();
        match arg {
            "--cross-products" => cross_products = true,
            "--seed" => {
                let v = iter
                    .next()
                    .ok_or_else(|| UsageError("--seed needs a value".into()))?;
                seed = v
                    .as_ref()
                    .parse()
                    .map_err(|_| UsageError(format!("bad --seed value `{}`", v.as_ref())))?;
            }
            "--orders" => {
                let v = iter
                    .next()
                    .ok_or_else(|| UsageError("--orders needs a value".into()))?;
                orders = v
                    .as_ref()
                    .parse()
                    .map_err(|_| UsageError(format!("bad --orders value `{}`", v.as_ref())))?;
            }
            "--help" | "-h" => {
                return Ok(Cli {
                    command: Command::Help,
                    cross_products,
                    seed,
                    orders,
                })
            }
            flag if flag.starts_with("--") => {
                return Err(UsageError(format!("unknown flag `{flag}`")))
            }
            other => positional.push(other.to_string()),
        }
    }

    let command = match positional.first().map(String::as_str) {
        None => Command::Help,
        Some("count") => Command::Count(one_sql(&positional)?),
        Some("run") => Command::Run(one_sql(&positional)?),
        Some("memo") => Command::Memo(one_sql(&positional)?),
        Some("sample") => {
            let (k, sql) = k_and_sql(&positional)?;
            Command::Sample(k, sql)
        }
        Some("validate") => {
            let (k, sql) = k_and_sql(&positional)?;
            Command::Validate(k, sql)
        }
        Some("enumerate") => {
            let (k, sql) = k_and_sql(&positional)?;
            Command::Enumerate(k, sql)
        }
        Some(other) => return Err(UsageError(format!("unknown command `{other}`"))),
    };
    Ok(Cli {
        command,
        cross_products,
        seed,
        orders,
    })
}

fn one_sql(positional: &[String]) -> Result<String, UsageError> {
    match positional {
        [_, sql] => Ok(sql.clone()),
        _ => Err(UsageError(format!(
            "`{}` takes exactly one SQL argument",
            positional[0]
        ))),
    }
}

fn k_and_sql(positional: &[String]) -> Result<(usize, String), UsageError> {
    match positional {
        [cmd, k, sql] => {
            let k = k
                .parse()
                .map_err(|_| UsageError(format!("`{cmd}` needs a numeric count, got `{k}`")))?;
            Ok((k, sql.clone()))
        }
        _ => Err(UsageError(format!(
            "`{}` takes a count and one SQL argument",
            positional[0]
        ))),
    }
}

/// Executes a parsed command, returning the text to print.
pub fn run(cli: &Cli) -> Result<String, Box<dyn std::error::Error>> {
    if cli.command == Command::Help {
        return Ok(USAGE.to_string());
    }
    let (catalog, tables) = plansample_catalog::tpch::catalog();
    let scale = MicroScale {
        orders: cli.orders,
        ..Default::default()
    };
    let db = plansample_datagen::generate(&catalog, &tables, &scale, cli.seed);
    let config = if cli.cross_products {
        OptimizerConfig::with_cross_products()
    } else {
        OptimizerConfig::default()
    };

    let sql = match &cli.command {
        Command::Count(s)
        | Command::Run(s)
        | Command::Sample(_, s)
        | Command::Validate(_, s)
        | Command::Enumerate(_, s)
        | Command::Memo(s) => s.clone(),
        Command::Help => unreachable!("handled above"),
    };
    let parsed = plansample_sql::parse(&catalog, &sql).map_err(|e| e.render(&sql))?;
    let query = parsed.spec;
    let mut out = String::new();

    match &cli.command {
        Command::Help => unreachable!("handled above"),
        Command::Count(_) => {
            let optimized = optimize(&catalog, &query, &config)?;
            let space = PlanSpace::build(&optimized.memo, &query)?;
            let _ = writeln!(
                out,
                "{} groups, {} physical expressions",
                optimized.memo.num_groups(),
                optimized.memo.num_physical()
            );
            let _ = writeln!(out, "{} complete execution plans", space.total());
        }
        Command::Run(_) => {
            let session = Session::with_config(catalog, db, config);
            let outcome = match &parsed.useplan {
                Some(rank) => session.execute_plan(&query, rank)?,
                None => session.execute(&query)?,
            };
            match &outcome.rank {
                Some(rank) => {
                    let _ = writeln!(
                        out,
                        "plan {rank} of {} (scaled cost {:.2}):",
                        outcome.space_size, outcome.scaled_cost
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "optimizer's plan (cost {:.0}, space of {} plans):",
                        outcome.plan_cost, outcome.space_size
                    );
                }
            }
            let _ = writeln!(out, "{}", outcome.plan_text);
            let _ = write!(out, "{}", render_table(&outcome.table, 20));
        }
        Command::Sample(k, _) => {
            let optimized = optimize(&catalog, &query, &config)?;
            let space = PlanSpace::build(&optimized.memo, &query)?;
            let mut rng = StdRng::seed_from_u64(cli.seed);
            let costs: Vec<f64> = (0..*k)
                .map(|_| space.sample(&mut rng).total_cost(&optimized.memo) / optimized.best_cost)
                .collect();
            let s = Summary::of(&costs);
            let _ = writeln!(out, "{k} uniform samples from {} plans", space.total());
            let _ = writeln!(
                out,
                "scaled costs: min {:.2}  mean {:.1}  max {:.1}",
                s.min(),
                s.mean(),
                s.max()
            );
            let _ = writeln!(
                out,
                "within 2x: {:.2}%   within 10x: {:.2}%",
                100.0 * s.fraction_below(2.0),
                100.0 * s.fraction_below(10.0)
            );
            let _ = writeln!(out, "\nlower 50% of sampled costs:");
            let hist = Histogram::lower_fraction(&costs, 0.5, 16);
            let _ = write!(out, "{}", hist.render(40));
        }
        Command::Validate(k, _) => {
            let optimized = optimize(&catalog, &query, &config)?;
            let space = PlanSpace::build(&optimized.memo, &query)?;
            let mut rng = StdRng::seed_from_u64(cli.seed);
            let report = space.validate_sampled(&catalog, &db, *k, &mut rng)?;
            let _ = writeln!(out, "{report}");
            for m in &report.mismatches {
                let _ = writeln!(
                    out,
                    "  MISMATCH at plan {} ({} rows vs {} expected) — reproduce with OPTION (USEPLAN {})",
                    m.rank, m.actual_rows, m.expected_rows, m.rank
                );
            }
        }
        Command::Enumerate(k, _) => {
            let optimized = optimize(&catalog, &query, &config)?;
            let space = PlanSpace::build(&optimized.memo, &query)?;
            let _ = writeln!(out, "first {k} of {} plans:", space.total());
            let mut rank = Nat::zero();
            for plan in space.enumerate().take(*k) {
                let ops: Vec<String> = plan
                    .preorder_ids()
                    .iter()
                    .map(|id| format!("{}[{id}]", optimized.memo.phys(*id).op.name()))
                    .collect();
                let _ = writeln!(
                    out,
                    "{rank:>6}  cost {:>12.0}  {}",
                    plan.total_cost(&optimized.memo),
                    ops.join(" ")
                );
                rank.incr();
            }
        }
        Command::Memo(_) => {
            let optimized = optimize(&catalog, &query, &config)?;
            let _ = write!(
                out,
                "{}",
                plansample_memo::render_memo(&optimized.memo, &query, &catalog)
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_commands() {
        let cli = parse_args([
            "--cross-products",
            "--seed",
            "7",
            "count",
            "SELECT * FROM nation",
        ])
        .unwrap();
        assert!(cli.cross_products);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.command, Command::Count("SELECT * FROM nation".into()));

        let cli = parse_args(["sample", "100", "SELECT * FROM nation"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Sample(100, "SELECT * FROM nation".into())
        );
        assert_eq!(cli.seed, 42);
    }

    #[test]
    fn rejects_malformed_invocations() {
        assert!(parse_args(["bogus", "x"]).is_err());
        assert!(parse_args(["--seed"]).is_err());
        assert!(parse_args(["--seed", "abc", "count", "S"]).is_err());
        assert!(parse_args(["count"]).is_err());
        assert!(parse_args(["sample", "notanumber", "S"]).is_err());
        assert!(parse_args(["--unknown-flag", "count", "S"]).is_err());
        assert!(parse_args(["count", "a", "b"]).is_err());
    }

    #[test]
    fn empty_args_and_help() {
        assert_eq!(
            parse_args(Vec::<String>::new()).unwrap().command,
            Command::Help
        );
        assert_eq!(parse_args(["--help"]).unwrap().command, Command::Help);
        let text = run(&parse_args(["--help"]).unwrap()).unwrap();
        assert!(text.contains("USAGE"));
    }

    fn cli(command: Command) -> Cli {
        Cli {
            command,
            cross_products: false,
            seed: 42,
            orders: 60,
        }
    }

    #[test]
    fn count_command_end_to_end() {
        let out = run(&cli(Command::Count(
            "SELECT * FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey".into(),
        )))
        .unwrap();
        assert!(out.contains("complete execution plans"));
    }

    #[test]
    fn run_command_with_useplan() {
        let out = run(&cli(Command::Run(
            "SELECT * FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey \
             OPTION (USEPLAN 5)"
                .into(),
        )))
        .unwrap();
        assert!(out.contains("plan 5 of"));
        assert!(out.contains("rows)"));
    }

    #[test]
    fn run_command_optimizer_plan() {
        let out = run(&cli(Command::Run(
            "SELECT COUNT(*) FROM supplier s, nation n WHERE s.s_nationkey = n.n_nationkey".into(),
        )))
        .unwrap();
        assert!(out.contains("optimizer's plan"));
    }

    #[test]
    fn sample_command_reports_distribution() {
        let out = run(&cli(Command::Sample(
            200,
            "SELECT * FROM supplier s, nation n, region r \
             WHERE s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey"
                .into(),
        )))
        .unwrap();
        assert!(out.contains("within 2x"));
        assert!(out.contains('#'));
    }

    #[test]
    fn validate_command_passes() {
        let out = run(&cli(Command::Validate(
            25,
            "SELECT * FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey".into(),
        )))
        .unwrap();
        assert!(out.contains("all agree"), "{out}");
    }

    #[test]
    fn enumerate_command_lists_plans() {
        let out = run(&cli(Command::Enumerate(
            5,
            "SELECT * FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey".into(),
        )))
        .unwrap();
        assert_eq!(out.lines().count(), 6); // header + 5 plans
        assert!(out.contains("cost"));
    }

    #[test]
    fn memo_command_dumps_structure() {
        let out = run(&cli(Command::Memo(
            "SELECT * FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey".into(),
        )))
        .unwrap();
        assert!(out.contains("Group 0"));
        assert!(out.contains("(root)"));
        assert!(out.contains("HashJoin"));
    }

    #[test]
    fn sql_errors_are_rendered_with_carets() {
        let err = run(&cli(Command::Count("SELECT * FROM bogus".into()))).unwrap_err();
        assert!(err.to_string().contains('^'));
    }
}
