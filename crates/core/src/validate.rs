//! §4 — Verifying query processors by differential plan execution.
//!
//! "The results are simple to verify since all plans should deliver the
//! same outcome." Given a plan space and a database, these routines
//! execute many plans of the same query — exhaustively for small spaces,
//! by uniform sampling for large ones — and compare every result against
//! a reference plan's result as a row multiset. Any mismatch pinpoints
//! the plan *number*, so the failing plan can be reproduced exactly with
//! `OPTION (USEPLAN n)` (see [`crate::session`]).

use crate::{lower::lower, PlanSpace, SpaceError};
use plansample_bignum::Nat;
use plansample_catalog::Catalog;
use plansample_exec::{Database, ExecError, Table};
use plansample_memo::{validate_plan, PlanViolation};
use rand::Rng;
use std::fmt;

/// One divergent plan.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// The plan's number (reproduce with `USEPLAN <rank>`).
    pub rank: Nat,
    /// Rows the reference produced.
    pub expected_rows: usize,
    /// Rows this plan produced.
    pub actual_rows: usize,
    /// Structural violations, if any (a structurally invalid plan means
    /// the *optimizer* considered an invalid alternative; a structurally
    /// valid one with different results means the *executor* is faulty —
    /// the paper's two failure classes).
    pub violations: Vec<PlanViolation>,
}

/// Outcome of a differential validation run.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Size of the full space.
    pub space_size: Nat,
    /// Plans actually executed.
    pub plans_checked: usize,
    /// Rows in the reference result.
    pub reference_rows: usize,
    /// Divergent plans (empty on success).
    pub mismatches: Vec<Mismatch>,
}

impl ValidationReport {
    /// `true` when every checked plan agreed with the reference.
    pub fn all_passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checked {} of {} plans against a {}-row reference: {}",
            self.plans_checked,
            self.space_size,
            self.reference_rows,
            if self.all_passed() {
                "all agree".to_string()
            } else {
                format!("{} MISMATCHES", self.mismatches.len())
            }
        )
    }
}

/// Errors from validation runs.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// Rank machinery failed.
    Space(SpaceError),
    /// Plan execution failed outright (as opposed to producing a
    /// divergent result).
    Exec(ExecError),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Space(_) => write!(f, "rank machinery failed during validation"),
            ValidateError::Exec(_) => write!(f, "plan execution failed during validation"),
        }
    }
}

impl std::error::Error for ValidateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ValidateError::Space(e) => Some(e),
            ValidateError::Exec(e) => Some(e),
        }
    }
}

impl From<SpaceError> for ValidateError {
    fn from(e: SpaceError) -> Self {
        ValidateError::Space(e)
    }
}

impl From<ExecError> for ValidateError {
    fn from(e: ExecError) -> Self {
        ValidateError::Exec(e)
    }
}

impl PlanSpace {
    /// Executes plan number `rank` against `db`.
    pub fn execute_rank(
        &self,
        catalog: &Catalog,
        db: &Database,
        rank: &Nat,
    ) -> Result<Table, ValidateError> {
        let plan = self.unrank(rank)?;
        let exec = lower(&self.memo, &self.query, catalog, &plan);
        Ok(exec.execute(db)?)
    }

    /// Exhaustive differential validation: executes every plan (up to
    /// `limit`) and compares against plan 0's result.
    pub fn validate_exhaustive(
        &self,
        catalog: &Catalog,
        db: &Database,
        limit: usize,
    ) -> Result<ValidationReport, ValidateError> {
        let reference = self.execute_rank(catalog, db, &Nat::zero())?;
        let mut report = ValidationReport {
            space_size: self.total().clone(),
            plans_checked: 0,
            reference_rows: reference.len(),
            mismatches: Vec::new(),
        };
        let mut rank = Nat::zero();
        for plan in self.enumerate().take(limit) {
            self.check_one(catalog, db, &plan, &rank, &reference, &mut report)?;
            rank.incr();
        }
        Ok(report)
    }

    /// Sampled differential validation: `k` uniform plans against plan
    /// 0's result — the paper's mode for spaces too large to enumerate.
    pub fn validate_sampled<R: Rng + ?Sized>(
        &self,
        catalog: &Catalog,
        db: &Database,
        k: usize,
        rng: &mut R,
    ) -> Result<ValidationReport, ValidateError> {
        let reference = self.execute_rank(catalog, db, &Nat::zero())?;
        let mut report = ValidationReport {
            space_size: self.total().clone(),
            plans_checked: 0,
            reference_rows: reference.len(),
            mismatches: Vec::new(),
        };
        for _ in 0..k {
            let plan = self.sample(rng);
            let rank = self.rank(&plan)?;
            self.check_one(catalog, db, &plan, &rank, &reference, &mut report)?;
        }
        Ok(report)
    }

    fn check_one(
        &self,
        catalog: &Catalog,
        db: &Database,
        plan: &plansample_memo::PlanNode,
        rank: &Nat,
        reference: &Table,
        report: &mut ValidationReport,
    ) -> Result<(), ValidateError> {
        let exec = lower(&self.memo, &self.query, catalog, plan);
        let result = exec.execute(db)?;
        report.plans_checked += 1;
        if !result.multiset_eq(reference) {
            report.mismatches.push(Mismatch {
                rank: rank.clone(),
                expected_rows: reference.len(),
                actual_rows: result.len(),
                violations: validate_plan(&self.memo, &self.query, plan),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::PlanSpace;
    use plansample_catalog::Datum::Int;
    use plansample_catalog::TableId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture_db() -> Database {
        let mut db = Database::new();
        // Deliberately stored out of key order: an operator that *claims*
        // a sort order it does not produce must be observably wrong.
        db.insert(
            TableId(0),
            Table::from_rows(1, vec![vec![Int(3)], vec![Int(1)], vec![Int(2)]]).unwrap(),
        );
        db.insert(
            TableId(1),
            Table::from_rows(
                2,
                vec![
                    vec![Int(2), Int(10)],
                    vec![Int(3), Int(10)],
                    vec![Int(3), Int(11)],
                ],
            )
            .unwrap(),
        );
        db.insert(
            TableId(2),
            Table::from_rows(1, vec![vec![Int(10)], vec![Int(11)]]).unwrap(),
        );
        db
    }

    #[test]
    fn exhaustive_validation_passes_on_the_fixture() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let db = fixture_db();
        let report = space
            .validate_exhaustive(&ex.catalog, &db, usize::MAX)
            .unwrap();
        assert!(report.all_passed(), "{report}");
        assert_eq!(report.plans_checked, 32);
        assert!(report.reference_rows > 0);
        assert!(report.to_string().contains("all agree"));
    }

    #[test]
    fn sampled_validation_passes_on_the_fixture() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let db = fixture_db();
        let mut rng = StdRng::seed_from_u64(3);
        let report = space
            .validate_sampled(&ex.catalog, &db, 64, &mut rng)
            .unwrap();
        assert!(report.all_passed(), "{report}");
        assert_eq!(report.plans_checked, 64);
    }

    #[test]
    fn limit_truncates_exhaustive_run() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let db = fixture_db();
        let report = space.validate_exhaustive(&ex.catalog, &db, 5).unwrap();
        assert_eq!(report.plans_checked, 5);
    }

    #[test]
    fn injected_optimizer_fault_is_detected() {
        // The paper's first failure class: "the optimizer considered an
        // invalid alternative". Delivered orders are derived from the
        // operator, so a memo whose *claimed* order lies is no longer
        // representable; the representable fault is an alternative that
        // computes the wrong thing. Inject a scan of relation C into
        // group A (same column count, different rows): every plan
        // choosing it produces divergent results, which differential
        // validation must catch and pin to a reproducible rank.
        let mut ex = paper_example::build();
        let rc = ex.query.join_edges[1].right.rel; // relation c
        ex.memo
            .add_physical(
                ex.group_a,
                plansample_memo::PhysicalExpr::new(
                    plansample_memo::PhysicalOp::TableScan { rel: rc },
                    100.0,
                    100.0,
                ),
            )
            .expect("distinct operator admitted");

        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let db = fixture_db();
        assert!(
            space.total().to_u64().unwrap() > 32,
            "the invalid alternative enlarges the space"
        );
        let report = space
            .validate_exhaustive(&ex.catalog, &db, usize::MAX)
            .unwrap();
        assert!(
            !report.all_passed(),
            "an invalid alternative must be caught by differential testing"
        );
        // The mismatching plans must be reproducible by rank.
        let first = &report.mismatches[0];
        let rerun = space.execute_rank(&ex.catalog, &db, &first.rank).unwrap();
        assert_eq!(rerun.len(), first.actual_rows);
    }
}
