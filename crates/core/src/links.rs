//! §3.1 — Preparatory steps: materializing the links between operators
//! and their possible children.
//!
//! "In order to facilitate later operations we extract all physical
//! operators and materialize the links between operators and their
//! possible children." For every physical expression and every child
//! slot, [`Links`] stores the concrete list of compatible child
//! expressions (property-filtered through
//! [`plansample_memo::eligible_children`]). The resulting structure
//! describes all possible execution plans rooted in each operator and is
//! what counting and unranking traverse.
//!
//! Building the links also verifies the plan graph is acyclic — a
//! prerequisite for the bottom-up count to be well-defined. Memos
//! produced by the optimizer are acyclic by construction (joins reference
//! strictly smaller relation sets; enforcers never feed enforcers), but
//! hand-built memos are checked defensively.

use crate::SpaceError;
use plansample_memo::{eligible_children, Memo, PhysId};
use plansample_query::QuerySpec;

/// Materialized parent→child links for every physical expression.
#[derive(Debug, Clone)]
pub struct Links {
    /// `[group][expr][slot] -> eligible child expression ids`.
    slots: Vec<Vec<Vec<Vec<PhysId>>>>,
}

impl Links {
    /// Materializes all links and checks acyclicity.
    pub fn build(memo: &Memo, query: &QuerySpec) -> Result<Links, SpaceError> {
        let slots: Vec<Vec<Vec<Vec<PhysId>>>> = memo
            .groups()
            .map(|group| {
                group
                    .phys_iter()
                    .map(|(id, expr)| {
                        expr.child_slots(id.group)
                            .iter()
                            .map(|slot| eligible_children(memo, query, slot))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let links = Links { slots };
        links.check_acyclic(memo)?;
        Ok(links)
    }

    /// The alternatives for each child slot of `id`, in slot order.
    pub fn children(&self, id: PhysId) -> &[Vec<PhysId>] {
        &self.slots[id.group.0 as usize][id.index]
    }

    /// Iterates every expression id covered by these links.
    pub fn all_ids<'a>(&'a self, memo: &'a Memo) -> impl Iterator<Item = PhysId> + 'a {
        memo.groups().flat_map(|g| g.phys_iter().map(|(id, _)| id))
    }

    /// DFS three-colour cycle check over the materialized link graph.
    fn check_acyclic(&self, memo: &Memo) -> Result<(), SpaceError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: Vec<Vec<Colour>> = memo
            .groups()
            .map(|g| vec![Colour::White; g.physical.len()])
            .collect();

        // Iterative DFS to avoid stack depth concerns on big memos.
        for start in self.all_ids(memo).collect::<Vec<_>>() {
            if colour[start.group.0 as usize][start.index] != Colour::White {
                continue;
            }
            let mut stack: Vec<(PhysId, usize, usize)> = vec![(start, 0, 0)];
            colour[start.group.0 as usize][start.index] = Colour::Grey;
            while let Some(&mut (id, ref mut slot, ref mut alt)) = stack.last_mut() {
                let slots = self.children(id);
                if *slot >= slots.len() {
                    colour[id.group.0 as usize][id.index] = Colour::Black;
                    stack.pop();
                    continue;
                }
                if *alt >= slots[*slot].len() {
                    *slot += 1;
                    *alt = 0;
                    continue;
                }
                let child = slots[*slot][*alt];
                *alt += 1;
                match colour[child.group.0 as usize][child.index] {
                    Colour::White => {
                        colour[child.group.0 as usize][child.index] = Colour::Grey;
                        stack.push((child, 0, 0));
                    }
                    Colour::Grey => return Err(SpaceError::CyclicMemo { at: child }),
                    Colour::Black => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use plansample_memo::{GroupKey, Memo, PhysicalExpr, PhysicalOp, SortOrder};
    use plansample_query::RelSet;

    #[test]
    fn paper_example_links_match_figure3() {
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();

        // Sort in group A: only the TableScan is a sortable input.
        let sort_children = links.children(ex.sort_a);
        assert_eq!(sort_children.len(), 1);
        assert_eq!(sort_children[0], vec![ex.table_scan_a]);

        // MergeJoin(A,B): left alternatives IdxScan_A and Sort_A; right
        // only IdxScan_B — "operator 3.4 however can use only the
        // darkened operators 2.3 and 1.3 or 1.4".
        let mj = links.children(ex.merge_join_ab);
        assert_eq!(mj[0], vec![ex.idx_scan_a, ex.sort_a]);
        assert_eq!(mj[1], vec![ex.idx_scan_b]);

        // HashJoin(A,B): any of group A (3) × any of group B (2).
        let hj = links.children(ex.hash_join_ab);
        assert_eq!(hj[0].len(), 3);
        assert_eq!(hj[1].len(), 2);

        // Root 7.7-analogue: any of group C (2) × any of group AB (2).
        let root = links.children(ex.root_c_ab);
        assert_eq!(root[0].len(), 2);
        assert_eq!(root[1].len(), 2);
    }

    #[test]
    fn leaves_have_no_slots() {
        let ex = paper_example::build();
        let links = Links::build(&ex.memo, &ex.query).unwrap();
        assert!(links.children(ex.table_scan_a).is_empty());
        assert!(links.children(ex.idx_scan_c).is_empty());
    }

    #[test]
    fn cyclic_hand_built_memo_is_rejected() {
        // Two mutually-referencing "joins" in the same group cannot occur
        // via the optimizer, but a hand-built memo can express a cycle
        // through a self-join of groups: g2.join(g0, g2) — child group
        // equals own group with an always-satisfied requirement.
        let ex = paper_example::build();
        let mut memo = Memo::new();
        let g0 = memo.add_group(GroupKey::Rels(RelSet::all(1)));
        memo.add_physical(
            g0,
            PhysicalExpr::new(
                PhysicalOp::TableScan {
                    rel: plansample_query::RelId(0),
                },
                SortOrder::unsorted(),
                1.0,
                1.0,
            ),
        )
        .unwrap();
        let g1 = memo.add_group(GroupKey::Rels(RelSet::all(2)));
        memo.add_physical(
            g1,
            PhysicalExpr::new(
                PhysicalOp::NestedLoopJoin {
                    left: g0,
                    right: g1,
                },
                SortOrder::unsorted(),
                1.0,
                1.0,
            ),
        )
        .unwrap();
        memo.set_root(g1);
        assert!(matches!(
            Links::build(&memo, &ex.query),
            Err(SpaceError::CyclicMemo { .. })
        ));
    }
}
