//! Concurrency guarantees of the prepared-query serving surface.
//!
//! The artifact produced by `Session::prepare` is immutable and
//! `Send + Sync`: wrapped in an `Arc`, any number of threads may count,
//! unrank, page, and sample from it concurrently with no locking and —
//! crucially — with **zero** re-optimizations (asserted via the
//! optimizer's per-thread run counter, which is immune to other test
//! threads optimizing concurrently in the same process). Per-thread determinism holds
//! because sampling takes the caller's RNG: a thread with seed `s` draws
//! exactly the plans a single-threaded run with seed `s` draws.

use plansample::session::Session;
use plansample::{PlanCursor, PlanService, PlanSpace, PreparedQuery};
use plansample_bignum::Nat;
use plansample_datagen::MicroScale;
use plansample_optimizer::OptimizerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// `PreparedQuery` (and the service/space around it) must be shareable
/// across threads — enforced at compile time.
#[test]
fn prepared_artifacts_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedQuery>();
    assert_send_sync::<Arc<PreparedQuery>>();
    assert_send_sync::<PlanSpace>();
    assert_send_sync::<PlanService>();
    assert_send_sync::<PlanCursor<'_>>();
}

fn prepared_q5() -> PreparedQuery {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = plansample_query::tpch::q5(&catalog);
    PreparedQuery::prepare(&catalog, &query, &OptimizerConfig::default()).unwrap()
}

/// Ranks drawn by `sample_batch` under one seed, as decimal strings.
fn drawn_ranks(prepared: &PreparedQuery, seed: u64, k: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    prepared
        .sample_batch(&mut rng, k)
        .iter()
        .map(|plan| prepared.rank(plan).unwrap().to_string())
        .collect()
}

#[test]
fn eight_threads_sample_deterministically_and_agree_with_single_thread() {
    const THREADS: u64 = 8;
    const DRAWS: usize = 64;
    let prepared = Arc::new(prepared_q5());

    // Single-threaded reference, one seed per future thread.
    let reference: Vec<Vec<String>> = (0..THREADS)
        .map(|seed| drawn_ranks(&prepared, seed, DRAWS))
        .collect();

    let mut results: Vec<(u64, Vec<String>)> = std::thread::scope(|scope| {
        (0..THREADS)
            .map(|seed| {
                let prepared = Arc::clone(&prepared);
                scope.spawn(move || {
                    let ranks = drawn_ranks(&prepared, seed, DRAWS);
                    // Each worker checks its own (thread-local) counter:
                    // sampling from a shared artifact never optimizes.
                    assert_eq!(
                        plansample_optimizer::thread_optimizations_performed(),
                        0,
                        "concurrent sampling must not re-optimize"
                    );
                    (seed, ranks)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("sampler thread panicked"))
            .collect()
    });

    results.sort_by_key(|(seed, _)| *seed);
    for (seed, ranks) in results {
        assert_eq!(
            ranks, reference[seed as usize],
            "thread with seed {seed} diverged from the single-threaded reference"
        );
        // Distinct seeds explore distinct rank sequences (sanity that the
        // threads were not accidentally sharing RNG state).
        if seed > 0 {
            assert_ne!(ranks, reference[0]);
        }
    }
}

#[test]
fn prepared_query_serves_samples_and_pages_with_zero_reoptimizations() {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = plansample_query::tpch::q8(&catalog);
    let config = OptimizerConfig::with_cross_products();

    let before = plansample_optimizer::thread_optimizations_performed();
    let prepared = PreparedQuery::prepare(&catalog, &query, &config).unwrap();
    assert_eq!(
        plansample_optimizer::thread_optimizations_performed() - before,
        1,
        "prepare runs the optimizer exactly once"
    );

    // The acceptance workload: 1000 sampled plans…
    let mut rng = StdRng::seed_from_u64(20000);
    let batch = prepared.sample_batch(&mut rng, 1000);
    assert_eq!(batch.len(), 1000);

    // …plus three enumeration pages resumed at ranks deep inside the
    // (astronomically large) space.
    let total = prepared.total().clone();
    assert!(total.to_f64() > 1e12, "Q8+CP space is Table-1 sized");
    let (mid, _) = total.div_rem(&Nat::from(2u64));
    let (third, _) = total.div_rem(&Nat::from(3u64));
    for start in [Nat::zero(), third, mid] {
        let mut cursor = prepared.enumerate_from(start.clone());
        let page = cursor.next_page(16);
        assert_eq!(page.len(), 16);
        assert_eq!(prepared.rank(&page[0]).unwrap(), start);
    }

    assert_eq!(
        plansample_optimizer::thread_optimizations_performed() - before,
        1,
        "1000 samples + 3 pages re-ran the optimizer zero times"
    );
}

#[test]
fn cursor_pagination_equals_skip_on_a_real_query() {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let mut qb = plansample_query::QueryBuilder::new(&catalog);
    qb.rel("nation", Some("n")).unwrap();
    qb.rel("region", Some("r")).unwrap();
    qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();
    let query = qb.build().unwrap();
    let prepared = PreparedQuery::prepare(&catalog, &query, &OptimizerConfig::default()).unwrap();

    let n = prepared.total().to_u64().unwrap();
    for r in [0, 1, n / 2, n.saturating_sub(1), n, n + 7] {
        let from_cursor: Vec<_> = prepared.enumerate_from(Nat::from(r)).collect();
        let from_skip: Vec<_> = prepared.enumerate().skip(r as usize).collect();
        assert_eq!(from_cursor, from_skip, "enumerate_from({r}) != skip({r})");
    }
}

#[test]
fn service_serves_concurrent_mixed_traffic_from_one_artifact_per_query() {
    let (catalog, tables) = plansample_catalog::tpch::catalog();
    let db = plansample_datagen::generate(&catalog, &tables, &MicroScale::tiny(), 11);
    let service = Arc::new(PlanService::new(catalog, OptimizerConfig::default(), 4));
    let session = Session::new(service.catalog().clone(), db);

    let q5 = plansample_query::tpch::q5(service.catalog());
    let q6 = plansample_query::tpch::q6(service.catalog());

    // Warm the cache so the thread phase is pure serving.
    let warm_q5 = service.get_or_prepare(&q5).unwrap();
    let warm_q6 = service.get_or_prepare(&q6).unwrap();

    std::thread::scope(|scope| {
        for seed in 0..8u64 {
            let service = Arc::clone(&service);
            let (q5, q6) = (&q5, &q6);
            let (warm_q5, warm_q6) = (&warm_q5, &warm_q6);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let (query, warm) = if seed % 2 == 0 {
                    (q5, warm_q5)
                } else {
                    (q6, warm_q6)
                };
                let prepared = service.get_or_prepare(query).unwrap();
                assert!(
                    Arc::ptr_eq(&prepared, warm),
                    "every thread shares the warmed artifact"
                );
                let batch = prepared.sample_batch(&mut rng, 32);
                assert_eq!(batch.len(), 32);
                for plan in &batch {
                    assert!(prepared.rank(plan).unwrap() < *prepared.total());
                }
                // Thread-local counter: a warm cache hit plus sampling
                // never ran the optimizer in this thread.
                assert_eq!(
                    plansample_optimizer::thread_optimizations_performed(),
                    0,
                    "warm cache serves without optimizing"
                );
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.misses, 2, "one preparation per distinct query");
    assert_eq!(stats.hits, 8, "all thread requests were cache hits");

    // The cached artifact also executes through a session without
    // re-preparing.
    let out = session
        .execute_prepared(&warm_q6, Some(&Nat::zero()))
        .unwrap();
    assert_eq!(out.rank, Some(Nat::zero()));
}
