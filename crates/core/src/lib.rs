//! Counting, enumerating, and uniform sampling of execution plans from a
//! cost-based query optimizer's MEMO.
//!
//! Reproduction of **F. Waas & C. A. Galindo-Legaria, "Counting,
//! Enumerating, and Sampling of Execution Plans in a Cost-Based Query
//! Optimizer"** (SIGMOD 2000). After regular optimization the MEMO holds
//! a compact encoding of *every* candidate plan the optimizer
//! considered; this crate post-processes that structure to
//!
//! * **count** the exact number `N` of complete plans ([`PlanSpace::total`]),
//! * establish a bijection between `0 … N−1` and the plans
//!   ([`PlanSpace::unrank`] / [`PlanSpace::rank`]),
//! * **enumerate** the whole space ([`PlanSpace::enumerate`], resumable
//!   at any rank via [`PlanSpace::enumerate_from`]), and
//! * draw **uniform random samples** ([`PlanSpace::sample`],
//!   [`PlanSpace::sample_batch`]),
//!
//! which enables the paper's two applications: differential testing of
//! optimizer and execution engine (every plan of a query must produce
//! the same result — [`validate`]) and the study of cost distributions
//! over real search spaces (§5).
//!
//! # Quick start
//!
//! The paper's whole point is that these operations are cheap *once the
//! MEMO is built*. The [`PreparedQuery`] artifact makes that explicit:
//! optimize once, then count, enumerate, and sample as often as you like
//! — from as many threads as you like (`PreparedQuery` is `Send + Sync`
//! and cheap to share in an [`std::sync::Arc`]).
//!
//! ```
//! use plansample::PreparedQuery;
//! use plansample_bignum::Nat;
//! use plansample_optimizer::OptimizerConfig;
//!
//! let (catalog, _) = plansample_catalog::tpch::catalog();
//! let query = plansample_query::tpch::q5(&catalog);
//!
//! // One optimization pass; everything below reuses its memo.
//! let prepared = PreparedQuery::prepare(&catalog, &query, &OptimizerConfig::default()).unwrap();
//! println!("Q5 considers {} plans", prepared.total());
//!
//! // USEPLAN-style: reconstruct plan number 8.
//! let plan8 = prepared.unrank(&Nat::from(8u64)).unwrap();
//! assert_eq!(prepared.rank(&plan8).unwrap(), Nat::from(8u64));
//! ```
//!
//! For the end-to-end pipeline (data, execution, `OPTION (USEPLAN n)`)
//! see [`session::Session`]; for a concurrent cache of prepared queries
//! see [`service::PlanService`].

#![warn(missing_docs)]

pub mod analysis;
mod batch;
mod count;
mod enumerate;
mod links;
pub mod lower;
pub mod paper_example;
mod prepared;
mod rank;
mod sample;
pub mod service;
pub mod session;
mod subspace;
mod unrank;
pub mod validate;

pub use batch::PlanBatch;
pub use count::{CountTier, Counts};
pub use enumerate::PlanCursor;
pub use links::{Links, LinksParts, ListId};
pub use prepared::PreparedQuery;
pub use service::{cache_key, PlanService, ServiceStats};

use plansample_bignum::Nat;
use plansample_exec::ExecError;
use plansample_memo::{Memo, PhysId};
use plansample_optimizer::OptError;
use plansample_query::QuerySpec;
use std::fmt;
use std::sync::Arc;

/// Errors from plan-space construction and rank operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// The memo's link graph contains a cycle (impossible for
    /// optimizer-produced memos; hand-built ones are checked).
    CyclicMemo {
        /// An expression on the cycle.
        at: PhysId,
    },
    /// `unrank` was called with a rank outside `[0, N)`.
    RankOutOfRange {
        /// The requested rank.
        rank: Nat,
        /// The space size `N`.
        total: Nat,
    },
    /// `rank` was called with a plan that is not part of this space.
    ForeignPlan {
        /// The first node that failed to resolve.
        at: PhysId,
    },
    /// Raw parts handed to [`Links::from_parts`] /
    /// [`Counts::from_parts`] / [`PlanSpace::from_parts`] failed
    /// structural validation — an artifact loader fed tables that do not
    /// describe a plan space (wrong lengths, non-monotonic bounds,
    /// out-of-range ids).
    MalformedParts {
        /// The first violated invariant.
        reason: String,
    },
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::CyclicMemo { at } => {
                write!(f, "memo link graph is cyclic at expression {at}")
            }
            SpaceError::RankOutOfRange { rank, total } => {
                write!(f, "rank {rank} outside the plan space of size {total}")
            }
            SpaceError::ForeignPlan { at } => {
                write!(f, "plan node {at} is not a member of this plan space")
            }
            SpaceError::MalformedParts { reason } => {
                write!(f, "malformed plan-space parts: {reason}")
            }
        }
    }
}

impl std::error::Error for SpaceError {}

/// Top-level error for the whole pipeline: optimization, plan-space
/// construction, rank machinery, and plan execution.
///
/// Every layer's error converts into this type via `From`, and
/// [`std::error::Error::source`] exposes the underlying layer error, so
/// callers can both `?` across layers and walk the chain for diagnostics:
///
/// ```
/// use plansample::Error;
/// use std::error::Error as _;
///
/// let (catalog, _) = plansample_catalog::tpch::catalog();
/// let mut qb = plansample_query::QueryBuilder::new(&catalog);
/// qb.rel("nation", None).unwrap();
/// qb.rel("region", None).unwrap(); // no join edge: disconnected
/// let query = qb.build().unwrap();
///
/// let err = plansample::PreparedQuery::prepare(
///     &catalog,
///     &query,
///     &plansample_optimizer::OptimizerConfig::default(),
/// )
/// .unwrap_err();
/// assert!(matches!(err, Error::Opt(_)));
/// assert!(err.source().unwrap().to_string().contains("disconnected"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Optimization failed.
    Opt(OptError),
    /// Plan-space construction or rank machinery failed (e.g. a USEPLAN
    /// number out of range).
    Space(SpaceError),
    /// Plan execution failed.
    Exec(ExecError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Opt(_) => write!(f, "query optimization failed"),
            Error::Space(_) => write!(f, "plan-space operation failed"),
            Error::Exec(_) => write!(f, "plan execution failed"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Opt(e) => Some(e),
            Error::Space(e) => Some(e),
            Error::Exec(e) => Some(e),
        }
    }
}

impl From<OptError> for Error {
    fn from(e: OptError) -> Self {
        Error::Opt(e)
    }
}

impl From<SpaceError> for Error {
    fn from(e: SpaceError) -> Self {
        Error::Space(e)
    }
}

impl From<ExecError> for Error {
    fn from(e: ExecError) -> Self {
        Error::Exec(e)
    }
}

impl From<validate::ValidateError> for Error {
    fn from(e: validate::ValidateError) -> Self {
        match e {
            validate::ValidateError::Space(e) => Error::Space(e),
            validate::ValidateError::Exec(e) => Error::Exec(e),
        }
    }
}

/// A fully prepared plan space: the memo plus materialized links (§3.1)
/// and exact counts (§3.2). All rank operations are methods on this type.
///
/// The space *owns* its memo and query (shared via [`Arc`]), so it can be
/// stored, cached, cloned cheaply-ish, and sent across threads — the
/// foundation of [`PreparedQuery`]. Use [`PlanSpace::build`] when you
/// hold borrowed inputs (they are cloned once), or
/// [`PlanSpace::build_shared`] to hand over already-shared ownership
/// without copying.
#[derive(Debug, Clone)]
pub struct PlanSpace {
    pub(crate) memo: Arc<Memo>,
    pub(crate) query: Arc<QuerySpec>,
    pub(crate) links: Links,
    pub(crate) counts: Counts,
}

impl PlanSpace {
    /// Materializes links and computes counts — the paper's preparatory
    /// post-processing pass ("the overhead incurred by this kind of post
    /// processing is negligible", benchmarked in `plansample-bench`).
    ///
    /// Clones `memo` and `query` into shared ownership; callers that
    /// already hold [`Arc`]s should prefer
    /// [`build_shared`](Self::build_shared).
    pub fn build(memo: &Memo, query: &QuerySpec) -> Result<Self, SpaceError> {
        PlanSpace::build_shared(Arc::new(memo.clone()), Arc::new(query.clone()))
    }

    /// Like [`build`](Self::build) but takes shared ownership directly,
    /// avoiding the memo copy — the path [`PreparedQuery::prepare`] uses.
    pub fn build_shared(memo: Arc<Memo>, query: Arc<QuerySpec>) -> Result<Self, SpaceError> {
        let links = Links::build(&memo, &query)?;
        let counts = Counts::compute(&links);
        Ok(PlanSpace {
            memo,
            query,
            links,
            counts,
        })
    }

    /// Reassembles a plan space from already-validated components — the
    /// artifact loader's path, which deserializes the flat link and
    /// count buffers instead of re-running link materialization and
    /// counting. The caller obtains `links` via [`Links::from_parts`]
    /// and `counts` via [`Counts::from_parts`], both of which validate
    /// their tables against `memo`; this constructor only re-checks the
    /// cross-component size agreement.
    pub fn from_parts(
        memo: Arc<Memo>,
        query: Arc<QuerySpec>,
        links: Links,
        counts: Counts,
    ) -> Result<Self, SpaceError> {
        if links.num_exprs() != memo.num_physical() {
            return Err(SpaceError::MalformedParts {
                reason: format!(
                    "links cover {} expressions but the memo holds {}",
                    links.num_exprs(),
                    memo.num_physical()
                ),
            });
        }
        if counts.per_expr().len() != links.num_exprs()
            || counts.list_totals().len() != links.num_lists()
        {
            return Err(SpaceError::MalformedParts {
                reason: "count tables do not match the links".into(),
            });
        }
        Ok(PlanSpace {
            memo,
            query,
            links,
            counts,
        })
    }

    /// `N`: the exact number of complete execution plans in the space.
    pub fn total(&self) -> &Nat {
        self.counts.total()
    }

    /// `N(v)`: plans rooted in a particular expression.
    ///
    /// # Panics
    /// Panics when `id` is not part of the underlying memo.
    pub fn count_rooted(&self, id: PhysId) -> &Nat {
        self.counts.rooted(self.links.ids().dense(id))
    }

    /// Bytes of memory held by this plan space: the flat link and count
    /// buffers (exact, capacity-accurate) plus the shared memo and query.
    ///
    /// This is the size accounting [`service::PlanService`]'s
    /// byte-budget eviction charges against; the shared memo is included
    /// because the space keeps it alive.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.links.size_bytes()
            + self.counts.size_bytes()
            + self.memo.size_bytes()
    }

    /// The underlying memo.
    pub fn memo(&self) -> &Memo {
        &self.memo
    }

    /// Shared handle to the underlying memo.
    pub fn memo_shared(&self) -> &Arc<Memo> {
        &self.memo
    }

    /// The query this space belongs to.
    pub fn query(&self) -> &QuerySpec {
        &self.query
    }

    /// Shared handle to the query.
    pub fn query_shared(&self) -> &Arc<QuerySpec> {
        &self.query
    }

    /// The materialized links.
    pub fn links(&self) -> &Links {
        &self.links
    }

    /// The flat count tables (per-expression counts and per-list slot
    /// totals).
    pub fn counts(&self) -> &Counts {
        &self.counts
    }

    /// Caps the unranking tier ladder at `tier`, dropping (or
    /// rebuilding) the fixed-width count sidecars as needed — a
    /// benchmarking and differential-testing seam for forcing a space
    /// onto a slower rung than it qualifies for (forcing a *faster*
    /// rung is a no-op; sidecars are only ever built from the exact
    /// counts). Sampling stays bit-identical across rungs, so forcing
    /// changes throughput, never results.
    pub fn force_tier(&mut self, tier: CountTier) {
        self.counts.force_tier(&self.links, tier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_exposes_totals_and_members() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        assert_eq!(space.total().to_u64(), Some(32));
        assert_eq!(space.count_rooted(ex.hash_join_ab).to_u64(), Some(6));
        assert_eq!(space.memo().num_groups(), 5);
        assert_eq!(space.query().relations.len(), 3);
    }

    #[test]
    fn build_shared_avoids_the_copy() {
        let ex = paper_example::build();
        let memo = Arc::new(ex.memo);
        let query = Arc::new(ex.query);
        let space = PlanSpace::build_shared(Arc::clone(&memo), Arc::clone(&query)).unwrap();
        assert!(Arc::ptr_eq(space.memo_shared(), &memo));
        assert!(Arc::ptr_eq(space.query_shared(), &query));
        // A clone of the space shares the same memo allocation.
        let cloned = space.clone();
        assert!(Arc::ptr_eq(cloned.memo_shared(), &memo));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = SpaceError::RankOutOfRange {
            rank: Nat::from(50u64),
            total: Nat::from(32u64),
        };
        let msg = e.to_string();
        assert!(msg.contains("50") && msg.contains("32"));
    }

    #[test]
    fn error_sources_chain_to_the_failing_layer() {
        use std::error::Error as _;
        let e = Error::Space(SpaceError::RankOutOfRange {
            rank: Nat::from(50u64),
            total: Nat::from(32u64),
        });
        let source = e.source().expect("layer error attached");
        assert!(source.to_string().contains("50"));
        let opt = Error::Opt(plansample_optimizer::OptError::DisconnectedQuery);
        assert!(opt.source().unwrap().to_string().contains("disconnected"));
    }
}
