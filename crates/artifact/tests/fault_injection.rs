//! Fault injection: hostile or damaged artifact bytes must surface as
//! the *right* typed [`ArtifactError`] — never a panic, never UB, and
//! never a silently wrong plan space — and an [`ArtifactStore`] that
//! trips over a damaged file must quarantine it and keep serving.
//!
//! The decode validation order is part of the format contract
//! (docs/DESIGN.md §10) and is pinned here: length → magic → version →
//! section-table bounds → whole-file checksum → per-section checksums →
//! structural decode. Each fault class below targets one stage and
//! asserts the error *that stage* names, not a downstream side effect.

use plansample_artifact::{decode, inspect, ArtifactError, ArtifactStore, FORMAT_VERSION};
use plansample_core::{PlanService, PreparedQuery};
use plansample_optimizer::OptimizerConfig;
use plansample_query::QuerySpec;
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

const HEADER_LEN: usize = 32;
const ENTRY_LEN: usize = 32;

fn q5() -> (QuerySpec, OptimizerConfig, PreparedQuery) {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = plansample_query::tpch::q5(&catalog);
    let config = OptimizerConfig::default();
    let prepared = PreparedQuery::prepare(&catalog, &query, &config).expect("q5 optimizes");
    (query, config, prepared)
}

fn image() -> Vec<u8> {
    plansample_artifact::encode(&q5().2)
}

/// Recomputes the whole-file checksum after a deliberate header-zone
/// patch, so the fault under test — not the checksum it incidentally
/// broke — is what the decoder sees.
fn reseal(bytes: &mut [u8]) {
    let sum = plansample_artifact::checksum(&bytes[HEADER_LEN..]);
    bytes[16..24].copy_from_slice(&sum.to_le_bytes());
}

// ---------------------------------------------------------------------
// One fault class per validation stage.
// ---------------------------------------------------------------------

#[test]
fn zero_length_and_short_files_are_truncated() {
    assert!(matches!(decode(&[]), Err(ArtifactError::Truncated { .. })));
    let bytes = image();
    // Every prefix shorter than the header is Truncated — even ones
    // that still start with the full magic.
    for len in [1, 7, 8, 16, HEADER_LEN - 1] {
        assert!(
            matches!(decode(&bytes[..len]), Err(ArtifactError::Truncated { .. })),
            "prefix of {len} bytes must be Truncated"
        );
    }
    // A header that declares sections the file does not contain.
    assert!(matches!(
        decode(&bytes[..HEADER_LEN + ENTRY_LEN / 2]),
        Err(ArtifactError::Truncated { .. })
    ));
}

#[test]
fn wrong_magic_is_bad_magic() {
    let mut bytes = image();
    bytes[0..8].copy_from_slice(b"NOTMAGIC");
    assert!(matches!(decode(&bytes), Err(ArtifactError::BadMagic)));
    // Magic is checked before everything but length: even a otherwise
    // empty header-sized file reports BadMagic, not a checksum error.
    let mut stub = vec![0u8; HEADER_LEN];
    stub[0..8].copy_from_slice(b"12345678");
    assert!(matches!(decode(&stub), Err(ArtifactError::BadMagic)));
}

#[test]
fn future_version_is_version_mismatch() {
    let mut bytes = image();
    let bumped = FORMAT_VERSION + 1;
    bytes[8..12].copy_from_slice(&bumped.to_le_bytes());
    // Version precedes the checksums in the validation order, so no
    // resealing is needed: the mismatch must be reported as a version
    // problem even though the file checksum is now stale too.
    match decode(&bytes) {
        Err(ArtifactError::VersionMismatch { found }) => assert_eq!(found, bumped),
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    // `inspect` applies the same gate.
    assert!(matches!(
        inspect(&bytes),
        Err(ArtifactError::VersionMismatch { .. })
    ));
}

#[test]
fn section_table_past_eof_is_truncated() {
    // Point the first section's offset beyond the file. Bounds are
    // validated *before* any checksum, so the error names the actual
    // damage (a table pointing past EOF) rather than the checksum it
    // invalidates.
    let mut bytes = image();
    let e = HEADER_LEN;
    let huge = (bytes.len() as u64 + 1).to_le_bytes();
    bytes[e + 8..e + 16].copy_from_slice(&huge);
    assert!(matches!(
        decode(&bytes),
        Err(ArtifactError::Truncated { .. })
    ));

    // Same with an offset+len that overflows u64.
    let mut bytes = image();
    bytes[e + 8..e + 16].copy_from_slice(&u64::MAX.to_le_bytes());
    bytes[e + 16..e + 24].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        decode(&bytes),
        Err(ArtifactError::Truncated { .. })
    ));

    // And a file cut mid-payload: the (intact) table points past the
    // new EOF.
    let bytes = image();
    let cut = &bytes[..bytes.len() - 16];
    assert!(matches!(decode(cut), Err(ArtifactError::Truncated { .. })));
}

#[test]
fn flipped_bytes_are_checksum_mismatch() {
    // A flip in the stored whole-file checksum itself.
    let mut bytes = image();
    bytes[17] ^= 0x01;
    assert!(matches!(
        decode(&bytes),
        Err(ArtifactError::ChecksumMismatch { section: "file" })
    ));

    // A flip in a payload byte: the file checksum catches it first
    // (every payload byte is under both checksums).
    let mut bytes = image();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x80;
    assert!(matches!(
        decode(&bytes),
        Err(ArtifactError::ChecksumMismatch { section: "file" })
    ));

    // A flip in a *section* checksum field (inside the table): reseal
    // the file checksum so the per-section verification is what fires,
    // and the error names the damaged section.
    let mut bytes = image();
    let e = HEADER_LEN; // first table entry = meta
    bytes[e + 24] ^= 0x01;
    reseal(&mut bytes);
    assert!(matches!(
        decode(&bytes),
        Err(ArtifactError::ChecksumMismatch { section: "meta" })
    ));
}

#[test]
fn structural_damage_behind_valid_checksums_is_malformed() {
    // Corrupt a payload *and* reseal both checksums — simulating a
    // writer bug or deliberate tamper rather than bit rot. The decoder
    // must fall through to structural validation, not trust the sums.
    let bytes = image();
    let info = inspect(&bytes).expect("pristine image inspects");
    let memo = info
        .sections
        .iter()
        .position(|s| s.name == "memo")
        .expect("memo section present");
    let (off, len) = (
        info.sections[memo].offset as usize,
        info.sections[memo].len as usize,
    );
    let mut bytes = bytes;
    // Blow up the declared group count in the memo payload.
    bytes[off + 4..off + 8].copy_from_slice(&u32::MAX.to_le_bytes());
    let e = HEADER_LEN + memo * ENTRY_LEN;
    let sum = plansample_artifact::checksum(&bytes[off..off + len]);
    bytes[e + 24..e + 32].copy_from_slice(&sum.to_le_bytes());
    reseal(&mut bytes);
    match decode(&bytes) {
        Err(ArtifactError::Truncated { .. }) | Err(ArtifactError::Malformed { .. }) => {}
        other => panic!("expected a structural error, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single flipped bit after the header is a checksum mismatch —
    /// the window where storage corruption lands.
    #[test]
    fn any_single_bit_flip_after_the_header_is_caught(
        raw in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = image();
        let at = HEADER_LEN + raw % (bytes.len() - HEADER_LEN);
        bytes[at] ^= 1 << bit;
        prop_assert!(
            matches!(decode(&bytes), Err(ArtifactError::ChecksumMismatch { .. })),
            "flip at byte {at} bit {bit} not caught as corruption"
        );
    }

    /// Truncation at *any* point yields a typed error, never a panic.
    #[test]
    fn truncation_anywhere_is_a_typed_error(raw in any::<usize>()) {
        let bytes = image();
        let cut = raw % bytes.len();
        prop_assert!(decode(&bytes[..cut]).is_err());
    }

    /// Arbitrary byte soup never panics the decoder (or the inspector).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
        let _ = inspect(&bytes);
    }
}

// ---------------------------------------------------------------------
// The store keeps serving through every fault class.
// ---------------------------------------------------------------------

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plansample-fault-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn store_quarantines_each_fault_class_and_keeps_serving() {
    let dir = temp_dir("classes");
    let store = ArtifactStore::open(&dir).unwrap();
    let (query, config, prepared) = q5();

    type Fault = Box<dyn Fn(Vec<u8>) -> Vec<u8>>;
    let faults: Vec<(&str, Fault)> = vec![
        ("zero-length", Box::new(|_| Vec::new())),
        (
            "truncated",
            Box::new(|b: Vec<u8>| b[..b.len() / 2].to_vec()),
        ),
        (
            "bad-magic",
            Box::new(|mut b: Vec<u8>| {
                b[0..8].copy_from_slice(b"NOTMAGIC");
                b
            }),
        ),
        (
            "future-version",
            Box::new(|mut b: Vec<u8>| {
                b[8..12].copy_from_slice(&(FORMAT_VERSION + 9).to_le_bytes());
                b
            }),
        ),
        (
            "bit-flip",
            Box::new(|mut b: Vec<u8>| {
                let at = b.len() - 3;
                b[at] ^= 0x10;
                b
            }),
        ),
        (
            "table-past-eof",
            Box::new(|mut b: Vec<u8>| {
                let huge = (b.len() as u64 * 2).to_le_bytes();
                b[HEADER_LEN + 8..HEADER_LEN + 16].copy_from_slice(&huge);
                b
            }),
        ),
    ];

    for (name, corrupt) in faults {
        let path = store.save(&prepared).unwrap();
        let pristine = fs::read(&path).unwrap();
        fs::write(&path, corrupt(pristine)).unwrap();

        // The damaged entry is reported typed…
        assert!(
            store.load(&query, &config).is_err(),
            "{name}: corrupt entry must fail typed"
        );
        // …moved aside…
        assert!(!path.exists(), "{name}: corrupt file must be quarantined");
        assert!(
            path.with_extension("quarantined").exists(),
            "{name}: quarantine file must exist"
        );
        // …and the store keeps serving: clean miss, then a re-publish
        // heals the entry.
        assert!(store.load(&query, &config).unwrap().is_none(), "{name}");
        store.save(&prepared).unwrap();
        let healed = store.load(&query, &config).unwrap().expect("healed hit");
        assert_eq!(healed.total(), prepared.total(), "{name}");
        // Reset for the next fault class.
        let _ = fs::remove_file(path.with_extension("quarantined"));
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn warming_skips_damaged_entries_and_loads_the_rest() {
    let dir = temp_dir("warm");
    let store = ArtifactStore::open(&dir).unwrap();
    let (query, config, prepared) = q5();
    store.save(&prepared).unwrap();

    // A second, damaged artifact sits next to the good one.
    let bad = dir.join("00000000deadbeef.plan");
    let mut bytes = plansample_artifact::encode(&prepared);
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    fs::write(&bad, &bytes).unwrap();

    let (catalog, _) = plansample_catalog::tpch::catalog();
    let service = PlanService::new(catalog, config, 8);
    let report = store.warm(&service).unwrap();
    assert_eq!(report.loaded, 1, "good entry admitted");
    assert_eq!(report.quarantined, 1, "bad entry quarantined");
    assert!(service.is_cached(&query));
    assert!(!bad.exists());
    assert!(bad.with_extension("quarantined").exists());
    let _ = fs::remove_dir_all(&dir);
}
