//! Cross-engine differential testing: the materialized and pipelined
//! (Volcano-style) engines are independent implementations — every
//! sampled plan must produce the same result under both. This doubles
//! the paper's §4 oracle: plans are compared across *plans* and across
//! *engines*.

use plansample::lower::lower;
use plansample::PlanSpace;
use plansample_datagen::MicroScale;
use plansample_optimizer::{optimize, OptimizerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn engines_agree_on_sampled_tpch_plans() {
    let (catalog, tables) = plansample_catalog::tpch::catalog();
    let db = plansample_datagen::generate(&catalog, &tables, &MicroScale::tiny(), 21);
    let mut rng = StdRng::seed_from_u64(8);

    for (name, query) in plansample_query::tpch::all(&catalog) {
        let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
        let space = PlanSpace::build(&optimized.memo, &query).unwrap();
        let k = if name == "Q6" { 4 } else { 30 };
        for _ in 0..k {
            let plan = space.sample(&mut rng);
            let exec = lower(&optimized.memo, &query, &catalog, &plan);
            let materialized = exec.execute(&db).unwrap();
            let pipelined = exec.execute_pipelined(&db).unwrap();
            assert!(
                materialized.multiset_eq(&pipelined),
                "{name}: engines disagree on plan {:?} ({} vs {} rows)",
                plan.preorder_ids(),
                materialized.len(),
                pipelined.len()
            );
        }
    }
}

#[test]
fn engines_agree_exhaustively_on_a_small_space() {
    let (catalog, tables) = plansample_catalog::tpch::catalog();
    let db = plansample_datagen::generate(&catalog, &tables, &MicroScale::tiny(), 3);
    let mut qb = plansample_query::QueryBuilder::new(&catalog);
    qb.rel("nation", Some("n")).unwrap();
    qb.rel("region", Some("r")).unwrap();
    qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();
    qb.aggregate(
        &[("r", "r_name")],
        &[(plansample_query::AggFunc::CountStar, None)],
    )
    .unwrap();
    let query = qb.build().unwrap();

    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    let mut checked = 0;
    for plan in space.enumerate() {
        let exec = lower(&optimized.memo, &query, &catalog, &plan);
        let a = exec.execute(&db).unwrap();
        let b = exec.execute_pipelined(&db).unwrap();
        assert!(a.multiset_eq(&b), "plan {:?}", plan.preorder_ids());
        checked += 1;
    }
    assert_eq!(Some(checked), space.total().to_u64());
    assert!(
        checked > 50,
        "space covers aggregates and enforcers: {checked}"
    );
}
