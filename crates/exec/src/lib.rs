//! A relational execution engine for differential plan testing.
//!
//! The paper's §4 methodology runs *many different plans of the same
//! query* and compares their outputs: "if two candidate plans fail to
//! produce the same results, then either the optimizer considered an
//! invalid plan, or the execution code is faulty". This crate supplies
//! the machinery: in-memory tables ([`Table`], [`Database`]), a
//! self-contained physical plan tree ([`ExecNode`]) implementing every
//! operator the optimizer can emit, and multiset result comparison.
//!
//! Execution is operator-at-a-time (each node materializes its output)
//! rather than pipelined — a deliberate simplification (see
//! `docs/ARCHITECTURE.md`): the engine's job is producing comparable
//! results for arbitrary valid plans, not throughput. Crucially, operators do *not*
//! repair bad plans: `StreamAgg` aggregates whatever run boundaries it
//! sees and `MergeJoin` trusts its inputs to be sorted, so a plan that
//! violates its physical-property obligations produces wrong answers —
//! which is exactly what the differential tests are designed to catch
//! (the validation strategy this engine anchors is `docs/DESIGN.md`
//! §8).

#![warn(missing_docs)]

mod compare;
mod iter;
mod node;
mod run;

pub use compare::render_table;
pub use iter::Operator;
pub use node::{AggSpec, ColFilter, ExecNode, JoinSpec, Side};

use plansample_catalog::{Datum, TableId};
use std::collections::HashMap;
use std::fmt;

/// A row: one datum per column.
pub type Row = Vec<Datum>;

/// An in-memory table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    width: usize,
    rows: Vec<Row>,
}

impl Table {
    /// An empty table with `width` columns.
    pub fn new(width: usize) -> Self {
        Table {
            width,
            rows: Vec::new(),
        }
    }

    /// Builds a table from rows, validating widths.
    pub fn from_rows(width: usize, rows: Vec<Row>) -> Result<Self, ExecError> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != width {
                return Err(ExecError::RowWidth {
                    row: i,
                    expected: width,
                    actual: r.len(),
                });
            }
        }
        Ok(Table { width, rows })
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row width mismatches the table.
    pub fn push(&mut self, row: Row) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        self.rows.push(row);
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consumes into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Multiset equality: same rows with the same multiplicities,
    /// regardless of order — the §4 oracle ("all plans should deliver
    /// the same outcome").
    pub fn multiset_eq(&self, other: &Table) -> bool {
        if self.width != other.width || self.rows.len() != other.rows.len() {
            return false;
        }
        let mut a = self.rows.clone();
        let mut b = other.rows.clone();
        a.sort();
        b.sort();
        a == b
    }

    /// Rows sorted canonically (for display and hashing).
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

/// The database: tables addressable by [`TableId`].
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<TableId, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Installs (or replaces) the contents of a table.
    pub fn insert(&mut self, id: TableId, table: Table) {
        self.tables.insert(id, table);
    }

    /// Fetches a table's contents.
    pub fn table(&self, id: TableId) -> Result<&Table, ExecError> {
        self.tables.get(&id).ok_or(ExecError::MissingTable(id))
    }

    /// Number of stored tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when no tables are stored.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A plan references a table that has no stored contents.
    MissingTable(TableId),
    /// A row's width disagreed with its table.
    RowWidth {
        /// Index of the offending row.
        row: usize,
        /// Expected width.
        expected: usize,
        /// Actual width.
        actual: usize,
    },
    /// An aggregate received a value of an unusable type
    /// (e.g. `SUM` over strings).
    BadAggregateInput {
        /// The aggregate function name.
        func: &'static str,
        /// Display of the offending value.
        value: String,
    },
    /// A column offset fell outside the row produced by a child.
    OffsetOutOfRange {
        /// The offset.
        offset: usize,
        /// The row width.
        width: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingTable(id) => write!(f, "no data loaded for table {id:?}"),
            ExecError::RowWidth {
                row,
                expected,
                actual,
            } => write!(f, "row {row} has width {actual}, expected {expected}"),
            ExecError::BadAggregateInput { func, value } => {
                write!(f, "{func} cannot aggregate value {value}")
            }
            ExecError::OffsetOutOfRange { offset, width } => {
                write!(f, "column offset {offset} outside row of width {width}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_catalog::Datum::Int;

    #[test]
    fn table_construction_and_access() {
        let mut t = Table::new(2);
        t.push(vec![Int(1), Int(2)]);
        t.push(vec![Int(3), Int(4)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.width(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.rows()[1][0], Int(3));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_validates_width() {
        let mut t = Table::new(2);
        t.push(vec![Int(1)]);
    }

    #[test]
    fn from_rows_validates() {
        assert!(Table::from_rows(1, vec![vec![Int(1)], vec![Int(2)]]).is_ok());
        assert!(matches!(
            Table::from_rows(1, vec![vec![Int(1), Int(2)]]),
            Err(ExecError::RowWidth { .. })
        ));
    }

    #[test]
    fn multiset_equality_ignores_order() {
        let a = Table::from_rows(1, vec![vec![Int(1)], vec![Int(2)], vec![Int(2)]]).unwrap();
        let b = Table::from_rows(1, vec![vec![Int(2)], vec![Int(1)], vec![Int(2)]]).unwrap();
        let c = Table::from_rows(1, vec![vec![Int(2)], vec![Int(1)], vec![Int(1)]]).unwrap();
        assert!(a.multiset_eq(&b));
        assert!(!a.multiset_eq(&c));
    }

    #[test]
    fn multiset_inequality_on_shape() {
        let a = Table::from_rows(1, vec![vec![Int(1)]]).unwrap();
        let b = Table::from_rows(2, vec![vec![Int(1), Int(1)]]).unwrap();
        let c = Table::from_rows(1, vec![]).unwrap();
        assert!(!a.multiset_eq(&b));
        assert!(!a.multiset_eq(&c));
    }

    #[test]
    fn database_lookup() {
        let mut db = Database::new();
        assert!(db.is_empty());
        db.insert(TableId(0), Table::new(1));
        assert_eq!(db.len(), 1);
        assert!(db.table(TableId(0)).is_ok());
        assert!(matches!(
            db.table(TableId(9)),
            Err(ExecError::MissingTable(_))
        ));
    }
}
