//! Umbrella crate for the plansample workspace: the single `use
//! plansample::...` surface downstream code imports, plus the home of the
//! cross-crate integration tests in `tests/` and the runnable
//! `examples/`.
//!
//! Everything here is a re-export of [`plansample_core`], which implements
//! the paper's post-optimization machinery over the MEMO:
//!
//! * [`PlanSpace`] — counting, the rank/unrank bijection, enumeration,
//!   and uniform sampling of execution plans;
//! * [`session`] — the end-to-end pipeline (parse → optimize → count →
//!   pick/sample → execute) behind the CLI and the `USEPLAN` SQL option;
//! * [`lower`] — turning an unranked plan into an executable operator
//!   tree;
//! * [`validate`] — the paper's differential-testing application.
//!
//! See the workspace `README.md` for the crate map and
//! `docs/ARCHITECTURE.md` for how the paper's concepts land in modules.

#![warn(missing_docs)]

pub use plansample_core::*;
