//! Arbitrary-precision unsigned integers for exact plan-space arithmetic.
//!
//! The plan-counting algorithm of Waas & Galindo-Legaria multiplies and sums
//! alternative counts across a MEMO; for joins of 8+ relations the totals
//! exceed `u64` (Table 1 of the paper already reports 4.4e12 plans, and the
//! growth is super-exponential in the number of relations). Counting and the
//! mixed-radix unranking decomposition must be *exact*, so this crate
//! provides [`Nat`], a dependency-free natural-number type with exactly the
//! operations the ranking machinery needs: addition, checked subtraction,
//! multiplication, division with remainder, comparison, decimal conversion,
//! and uniform random generation below a bound.
//!
//! Representation: little-endian `u64` limbs with no trailing zero limbs
//! (zero is the empty limb vector). All arithmetic is schoolbook; plan
//! counting touches numbers of a few dozen limbs at most, far below the
//! sizes where Karatsuba or faster division would pay off.

#![warn(missing_docs)]

mod convert;
mod div;
mod ops;
mod random;

pub use convert::ParseNatError;

/// An arbitrary-precision natural number (unsigned integer).
///
/// # Examples
///
/// ```
/// use plansample_bignum::Nat;
///
/// let a = Nat::from(u64::MAX);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "340282366920938463426481119284349108225");
/// let (q, r) = b.div_rem(&a);
/// assert_eq!(q, a);
/// assert!(r.is_zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Nat {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    pub(crate) limbs: Vec<u64>,
}

impl Nat {
    /// The value `0`.
    pub const fn zero() -> Self {
        Nat { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Nat { limbs: vec![1] }
    }

    /// Builds a `Nat` from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Nat { limbs }
    }

    /// Read-only view of the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Bytes of memory held by this number: the inline struct plus the
    /// limb buffer at its allocated capacity. Used by the plan-space
    /// size accounting that drives memory-bounded cache eviction.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.limbs.capacity() * std::mem::size_of::<u64>()
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Strictly increments the value in place.
    pub fn incr(&mut self) {
        let mut carry = true;
        for limb in &mut self.limbs {
            if carry {
                let (v, c) = limb.overflowing_add(1);
                *limb = v;
                carry = c;
            } else {
                break;
            }
        }
        if carry {
            self.limbs.push(1);
        }
    }

    /// Decrements in place; panics on zero (natural numbers only).
    pub fn decr(&mut self) {
        assert!(!self.is_zero(), "Nat::decr on zero");
        for limb in &mut self.limbs {
            let (v, borrow) = limb.overflowing_sub(1);
            *limb = v;
            if !borrow {
                break;
            }
        }
        self.normalize();
    }

    /// Lossy conversion to `f64` (saturates to `f64::INFINITY` far above
    /// 2^1024). Used only for reporting, never for exact arithmetic.
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
        }
        acc
    }
}

impl std::fmt::Debug for Nat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Nat({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Nat::zero().is_zero());
        assert!(!Nat::one().is_zero());
        assert!(Nat::one().is_one());
        assert_eq!(Nat::zero().bits(), 0);
        assert_eq!(Nat::one().bits(), 1);
    }

    #[test]
    fn from_limbs_normalizes() {
        let n = Nat::from_limbs(vec![5, 0, 0]);
        assert_eq!(n.limbs(), &[5]);
        assert_eq!(Nat::from_limbs(vec![0, 0]), Nat::zero());
    }

    #[test]
    fn bits_counts_leading_limb() {
        assert_eq!(Nat::from(1u64 << 63).bits(), 64);
        assert_eq!(Nat::from(u64::MAX).bits(), 64);
        assert_eq!(Nat::from(1u128 << 64).bits(), 65);
        assert_eq!(Nat::from(3u64).bits(), 2);
    }

    #[test]
    fn incr_carries_across_limbs() {
        let mut n = Nat::from(u64::MAX);
        n.incr();
        assert_eq!(n, Nat::from(1u128 << 64));
        n.decr();
        assert_eq!(n, Nat::from(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "decr on zero")]
    fn decr_zero_panics() {
        Nat::zero().decr();
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Nat::default(), Nat::zero());
    }

    #[test]
    fn to_f64_round_numbers() {
        assert_eq!(Nat::zero().to_f64(), 0.0);
        assert_eq!(Nat::from(12345u64).to_f64(), 12345.0);
        let big = Nat::from(1u128 << 100);
        let expect = (2f64).powi(100);
        assert!((big.to_f64() - expect).abs() / expect < 1e-12);
    }
}
