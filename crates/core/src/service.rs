//! A concurrent serving surface over prepared queries.
//!
//! [`PlanService`] is the piece the ROADMAP's "serve heavy traffic"
//! north star asks for: a bounded, LRU-evicting cache of
//! [`PreparedQuery`] artifacts keyed by the *normalized* query plus the
//! optimizer configuration. The first request for a query pays the
//! optimization + counting cost; every subsequent request — from any
//! thread — gets an [`Arc`] handle to the same immutable artifact and
//! serves counts, pages, and samples lock-free (the cache lock is held
//! only for the key lookup, never during optimization or sampling).

use crate::{Error, PreparedQuery};
use plansample_catalog::Catalog;
use plansample_optimizer::OptimizerConfig;
use plansample_query::QuerySpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Snapshot of a service's cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to prepare (optimize + count) the query.
    pub misses: u64,
    /// Prepared artifacts evicted by the LRU policy.
    pub evictions: u64,
    /// Prepared artifacts currently cached.
    pub entries: usize,
    /// Maximum cached artifacts.
    pub capacity: usize,
}

struct CacheEntry {
    prepared: Arc<PreparedQuery>,
    last_used: u64,
}

struct CacheState {
    entries: HashMap<String, CacheEntry>,
    tick: u64,
    evictions: u64,
}

/// A bounded LRU cache of prepared queries, safe to share across
/// threads, with a normalized-query + optimizer-config key.
///
/// ```
/// use plansample::PlanService;
/// use plansample_optimizer::OptimizerConfig;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let (catalog, _) = plansample_catalog::tpch::catalog();
/// let service = Arc::new(PlanService::new(catalog, OptimizerConfig::default(), 8));
/// let query = plansample_query::tpch::q6(service.catalog());
///
/// // First call prepares; later calls (any thread) hit the cache.
/// let p1 = service.get_or_prepare(&query).unwrap();
/// let p2 = service.get_or_prepare(&query).unwrap();
/// assert!(Arc::ptr_eq(&p1, &p2));
/// assert_eq!(service.stats().misses, 1);
/// assert_eq!(service.stats().hits, 1);
///
/// let mut rng = StdRng::seed_from_u64(1);
/// assert_eq!(p1.sample_batch(&mut rng, 10).len(), 10);
/// ```
pub struct PlanService {
    catalog: Catalog,
    config: OptimizerConfig,
    capacity: usize,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for PlanService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanService")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish_non_exhaustive()
    }
}

impl PlanService {
    /// Creates a service over a catalog and optimizer configuration,
    /// caching at most `capacity` prepared queries (at least 1).
    pub fn new(catalog: Catalog, config: OptimizerConfig, capacity: usize) -> Self {
        PlanService {
            catalog,
            config,
            capacity: capacity.max(1),
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                tick: 0,
                evictions: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The service's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The optimizer configuration every cached artifact is prepared
    /// under.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Returns the prepared artifact for `query`, preparing and caching
    /// it on first request.
    ///
    /// The cache lock is *not* held while optimizing, so concurrent
    /// misses on different queries prepare in parallel. Two threads
    /// racing on the *same* fresh query may both prepare it; the first
    /// insertion wins and later racers adopt it, so all callers still
    /// end up sharing one artifact.
    pub fn get_or_prepare(&self, query: &QuerySpec) -> Result<Arc<PreparedQuery>, Error> {
        let key = cache_key(query, &self.config);
        {
            let mut state = self.state.lock().expect("service cache poisoned");
            state.tick += 1;
            let tick = state.tick;
            if let Some(entry) = state.entries.get_mut(&key) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.prepared));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let prepared = Arc::new(PreparedQuery::prepare(&self.catalog, query, &self.config)?);

        let mut state = self.state.lock().expect("service cache poisoned");
        state.tick += 1;
        let tick = state.tick;
        let winner = match state.entries.get_mut(&key) {
            // A racing thread inserted first: adopt its artifact so every
            // caller shares one allocation.
            Some(entry) => {
                entry.last_used = tick;
                Arc::clone(&entry.prepared)
            }
            None => {
                state.entries.insert(
                    key,
                    CacheEntry {
                        prepared: Arc::clone(&prepared),
                        last_used: tick,
                    },
                );
                prepared
            }
        };
        while state.entries.len() > self.capacity {
            let oldest = state
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("len > capacity >= 1 implies a candidate");
            state.entries.remove(&oldest);
            state.evictions += 1;
        }
        Ok(winner)
    }

    /// Current cache counters.
    pub fn stats(&self) -> ServiceStats {
        let state = self.state.lock().expect("service cache poisoned");
        ServiceStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: state.evictions,
            entries: state.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every cached artifact (outstanding [`Arc`] handles stay
    /// valid — the artifacts are immutable).
    pub fn clear(&self) {
        self.state
            .lock()
            .expect("service cache poisoned")
            .entries
            .clear();
    }
}

/// Normalized cache key: queries that differ only in the *order* their
/// join predicates or filters were written hash to the same prepared
/// artifact; the optimizer configuration participates because it changes
/// the memo (and therefore every count and rank).
fn cache_key(query: &QuerySpec, config: &OptimizerConfig) -> String {
    let mut edges: Vec<String> = query.join_edges.iter().map(|e| format!("{e:?}")).collect();
    edges.sort_unstable();
    let mut filters: Vec<String> = query.filters.iter().map(|f| format!("{f:?}")).collect();
    filters.sort_unstable();
    format!(
        "rels:{:?};edges:{:?};filters:{:?};agg:{:?};proj:{:?};cfg:{:?}",
        query.relations, edges, filters, query.aggregate, query.projection, config
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn service(capacity: usize) -> PlanService {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        PlanService::new(catalog, OptimizerConfig::default(), capacity)
    }

    fn two_rel_query(catalog: &Catalog, a: &str, b: &str, ak: &str, bk: &str) -> QuerySpec {
        let mut qb = plansample_query::QueryBuilder::new(catalog);
        qb.rel(a, None).unwrap();
        qb.rel(b, None).unwrap();
        qb.join((a, ak), (b, bk)).unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn repeated_requests_share_one_artifact() {
        let s = service(4);
        let q = two_rel_query(
            s.catalog(),
            "nation",
            "region",
            "n_regionkey",
            "r_regionkey",
        );
        let before = plansample_optimizer::thread_optimizations_performed();
        let p1 = s.get_or_prepare(&q).unwrap();
        let p2 = s.get_or_prepare(&q).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(
            plansample_optimizer::thread_optimizations_performed() - before,
            1
        );
        let stats = s.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn normalization_ignores_predicate_order() {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        let build = |swap: bool| {
            let mut qb = plansample_query::QueryBuilder::new(&catalog);
            qb.rel("supplier", Some("s")).unwrap();
            qb.rel("nation", Some("n")).unwrap();
            qb.rel("region", Some("r")).unwrap();
            if swap {
                qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();
                qb.join(("s", "s_nationkey"), ("n", "n_nationkey")).unwrap();
            } else {
                qb.join(("s", "s_nationkey"), ("n", "n_nationkey")).unwrap();
                qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();
            }
            qb.build().unwrap()
        };
        let config = OptimizerConfig::default();
        // Join edges end up in different vector orders…
        assert_ne!(
            format!("{:?}", build(false).join_edges),
            format!("{:?}", build(true).join_edges)
        );
        // …but normalize to the same cache key.
        assert_eq!(
            cache_key(&build(false), &config),
            cache_key(&build(true), &config)
        );
        let (q_a, q_b) = (build(false), build(true));
        let s = PlanService::new(catalog, config, 4);
        s.get_or_prepare(&q_a).unwrap();
        s.get_or_prepare(&q_b).unwrap();
        assert_eq!(s.stats().entries, 1, "one artifact for both spellings");
    }

    #[test]
    fn config_participates_in_the_key() {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        let q = two_rel_query(&catalog, "nation", "region", "n_regionkey", "r_regionkey");
        assert_ne!(
            cache_key(&q, &OptimizerConfig::default()),
            cache_key(&q, &OptimizerConfig::with_cross_products())
        );
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let s = service(2);
        let q1 = two_rel_query(
            s.catalog(),
            "nation",
            "region",
            "n_regionkey",
            "r_regionkey",
        );
        let q2 = two_rel_query(
            s.catalog(),
            "supplier",
            "nation",
            "s_nationkey",
            "n_nationkey",
        );
        let q3 = two_rel_query(
            s.catalog(),
            "customer",
            "nation",
            "c_nationkey",
            "n_nationkey",
        );
        s.get_or_prepare(&q1).unwrap();
        s.get_or_prepare(&q2).unwrap();
        s.get_or_prepare(&q1).unwrap(); // refresh q1: q2 is now coldest
        s.get_or_prepare(&q3).unwrap(); // evicts q2
        let stats = s.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
        s.get_or_prepare(&q1).unwrap();
        assert_eq!(s.stats().misses, 3, "q1 survived the eviction");
        s.get_or_prepare(&q2).unwrap();
        assert_eq!(s.stats().misses, 4, "q2 was evicted and re-prepares");
    }

    #[test]
    fn clear_empties_but_handles_stay_valid() {
        let s = service(4);
        let q = two_rel_query(
            s.catalog(),
            "nation",
            "region",
            "n_regionkey",
            "r_regionkey",
        );
        let p = s.get_or_prepare(&q).unwrap();
        s.clear();
        assert_eq!(s.stats().entries, 0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.sample_batch(&mut rng, 5).len(), 5);
    }
}
