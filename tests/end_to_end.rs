//! End-to-end integration: SQL text → parse → optimize → count →
//! USEPLAN-ranked execution → result comparison, across crates.

use plansample::session::{Session, SessionError};
use plansample::SpaceError;
use plansample_bignum::Nat;
use plansample_datagen::MicroScale;

fn session() -> Session {
    let (catalog, tables) = plansample_catalog::tpch::catalog();
    let db = plansample_datagen::generate(&catalog, &tables, &MicroScale::default(), 2024);
    Session::new(catalog, db)
}

#[test]
fn sql_useplan_pipeline_three_way_join() {
    let s = session();
    let sql = "SELECT n_name, COUNT(*) \
               FROM supplier s, nation n, region r \
               WHERE s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
               GROUP BY n.n_name";
    let parsed = plansample_sql::parse(s.catalog(), sql).unwrap();
    let reference = s.execute(&parsed.spec).unwrap();
    assert!(!reference.table.is_empty(), "grouped output expected");

    let total = s.count_plans(&parsed.spec).unwrap();
    assert!(total.to_u64().unwrap() > 100, "3-way space is non-trivial");

    // Exercise USEPLAN across the space through the SQL path.
    let step = total.to_u64().unwrap() / 7;
    for k in (0..total.to_u64().unwrap()).step_by(step.max(1) as usize) {
        let with_useplan = format!("{sql} OPTION (USEPLAN {k})");
        let parsed = plansample_sql::parse(s.catalog(), &with_useplan).unwrap();
        let rank = parsed.useplan.clone().unwrap();
        let out = s.execute_plan(&parsed.spec, &rank).unwrap();
        assert!(
            out.table.multiset_eq(&reference.table),
            "USEPLAN {k} diverged from the optimizer's plan"
        );
        assert!(out.scaled_cost >= 1.0 - 1e-9);
    }
}

#[test]
fn sql_projection_query_without_aggregate() {
    let s = session();
    let sql = "SELECT r_name FROM region WHERE region.r_regionkey < 3";
    let parsed = plansample_sql::parse(s.catalog(), sql).unwrap();
    let out = s.execute(&parsed.spec).unwrap();
    assert_eq!(out.table.width(), 1);
    assert_eq!(out.table.len(), 3);
}

#[test]
fn sql_self_join_with_aliases() {
    let s = session();
    let sql = "SELECT COUNT(*) FROM nation n1, nation n2 \
               WHERE n1.n_regionkey = n2.n_regionkey";
    let parsed = plansample_sql::parse(s.catalog(), sql).unwrap();
    let reference = s.execute(&parsed.spec).unwrap();
    // 25 nations over 5 regions, 5 per region: 5 * 25 = 125 pairs.
    assert_eq!(
        reference.table.rows()[0][0],
        plansample_catalog::Datum::Int(125)
    );
    // A few explicit plans must agree.
    for k in [0u64, 3, 9] {
        let out = s.execute_plan(&parsed.spec, &Nat::from(k)).unwrap();
        assert!(out.table.multiset_eq(&reference.table));
    }
}

#[test]
fn useplan_rank_out_of_range_surfaces_cleanly() {
    let s = session();
    let sql = "SELECT * FROM region OPTION (USEPLAN 999999999999999999999999)";
    let parsed = plansample_sql::parse(s.catalog(), sql).unwrap();
    let err = s
        .execute_plan(&parsed.spec, &parsed.useplan.unwrap())
        .unwrap_err();
    match err {
        SessionError::Space(SpaceError::RankOutOfRange { total, .. }) => {
            assert!(total.to_u64().unwrap() >= 1);
        }
        other => panic!("expected RankOutOfRange, got {other}"),
    }
}

#[test]
fn scaled_costs_reflect_plan_quality() {
    let s = session();
    let sql = "SELECT COUNT(*) FROM lineitem l, orders o, customer c \
               WHERE l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey";
    let parsed = plansample_sql::parse(s.catalog(), sql).unwrap();
    let total = s.count_plans(&parsed.spec).unwrap().to_u64().unwrap();
    let mut worst: f64 = 1.0;
    for k in (0..total).step_by((total / 50).max(1) as usize) {
        let out = s.execute_plan(&parsed.spec, &Nat::from(k)).unwrap();
        worst = worst.max(out.scaled_cost);
    }
    // The space must contain plans far worse than the optimum (the
    // heavy tail behind the paper's Figure 4).
    assert!(worst > 10.0, "worst sampled scaled cost only {worst}");
}

#[test]
fn single_table_aggregate_sql() {
    let s = session();
    let sql = "SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem l WHERE l.l_quantity < 10";
    let parsed = plansample_sql::parse(s.catalog(), sql).unwrap();
    let reference = s.execute(&parsed.spec).unwrap();
    assert_eq!(reference.table.len(), 1);
    let total = s.count_plans(&parsed.spec).unwrap().to_u64().unwrap();
    for k in 0..total {
        let out = s.execute_plan(&parsed.spec, &Nat::from(k)).unwrap();
        assert!(out.table.multiset_eq(&reference.table), "plan {k}");
    }
}
