//! Schemas and optimizer-facing statistics.
//!
//! The optimizer never looks at rows; it sees this catalog: per-table row
//! counts, per-column distinct-value counts (NDV), and which ordered
//! single-column indexes exist (each index gives the optimizer a
//! `SortedIdxScan` alternative, exactly the `Scan A → SortedIDXScan` arrow
//! of the paper's Figure 2). The execution engine holds the actual data and
//! shares only the column *types* ([`Datum`]) with this crate.

#![warn(missing_docs)]

mod datum;
pub mod tpch;

pub use datum::Datum;

use std::collections::HashMap;
use std::fmt;

/// Identifies a table within a [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColType {
    /// 64-bit signed integer (also used for dates encoded as days).
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
}

/// A column definition with its statistics.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name, unique within its table.
    pub name: String,
    /// Logical type.
    pub col_type: ColType,
    /// Estimated number of distinct values; drives equality selectivities
    /// `1 / max(ndv_l, ndv_r)` for joins and `1 / ndv` for point filters.
    pub ndv: u64,
}

/// An ordered single-column index. The optimizer turns each index into a
/// `SortedIdxScan` alternative that delivers rows sorted by this column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexDef {
    /// Ordinal of the indexed column within the table.
    pub column: usize,
}

/// A table definition with statistics.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Table name, unique within the catalog.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Estimated row count.
    pub row_count: u64,
    /// Available ordered indexes.
    pub indexes: Vec<IndexDef>,
}

impl TableDef {
    /// Looks up a column ordinal by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Returns the column definition for `ordinal`, panicking when out of
    /// range (catalog consistency is validated at construction).
    pub fn column(&self, ordinal: usize) -> &ColumnDef {
        &self.columns[ordinal]
    }

    /// `true` iff an ordered index on `column` exists.
    pub fn has_index_on(&self, column: usize) -> bool {
        self.indexes.iter().any(|ix| ix.column == column)
    }
}

/// Errors from catalog construction and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Two columns in the same table share a name.
    DuplicateColumn {
        /// Offending table.
        table: String,
        /// Offending column name.
        column: String,
    },
    /// An index references a column ordinal that does not exist.
    IndexOutOfRange {
        /// Offending table.
        table: String,
        /// Out-of-range ordinal.
        column: usize,
    },
    /// Lookup of an unknown table name.
    UnknownTable(String),
    /// Lookup of an unknown column name.
    UnknownColumn {
        /// Table that was searched.
        table: String,
        /// Missing column name.
        column: String,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateTable(t) => write!(f, "duplicate table `{t}`"),
            CatalogError::DuplicateColumn { table, column } => {
                write!(f, "duplicate column `{column}` in table `{table}`")
            }
            CatalogError::IndexOutOfRange { table, column } => {
                write!(
                    f,
                    "index on out-of-range column ordinal {column} in table `{table}`"
                )
            }
            CatalogError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            CatalogError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// A collection of table definitions with name-based lookup.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableDef>,
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a table, validating uniqueness and index ranges.
    pub fn add_table(&mut self, table: TableDef) -> Result<TableId, CatalogError> {
        if self.by_name.contains_key(&table.name) {
            return Err(CatalogError::DuplicateTable(table.name));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &table.columns {
            if !seen.insert(c.name.as_str()) {
                return Err(CatalogError::DuplicateColumn {
                    table: table.name.clone(),
                    column: c.name.clone(),
                });
            }
        }
        for ix in &table.indexes {
            if ix.column >= table.columns.len() {
                return Err(CatalogError::IndexOutOfRange {
                    table: table.name.clone(),
                    column: ix.column,
                });
            }
        }
        let id = TableId(self.tables.len() as u32);
        self.by_name.insert(table.name.clone(), id);
        self.tables.push(table);
        Ok(id)
    }

    /// Returns the definition for `id`.
    ///
    /// # Panics
    /// Panics when `id` was not issued by this catalog.
    pub fn table(&self, id: TableId) -> &TableDef {
        &self.tables[id.0 as usize]
    }

    /// Name-based table lookup.
    pub fn table_by_name(&self, name: &str) -> Result<(TableId, &TableDef), CatalogError> {
        let id = *self
            .by_name
            .get(name)
            .ok_or_else(|| CatalogError::UnknownTable(name.to_string()))?;
        Ok((id, self.table(id)))
    }

    /// Resolves `table.column` names to ids.
    pub fn resolve_column(
        &self,
        table: &str,
        column: &str,
    ) -> Result<(TableId, usize), CatalogError> {
        let (tid, def) = self.table_by_name(table)?;
        let col = def
            .column_index(column)
            .ok_or_else(|| CatalogError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        Ok((tid, col))
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when no tables have been defined.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates `(id, def)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &TableDef)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }
}

/// Convenience builder for tests and examples.
///
/// ```
/// use plansample_catalog::{table, ColType};
/// let t = table("emp", 1000)
///     .col("id", ColType::Int, 1000)
///     .col("dept", ColType::Int, 20)
///     .index_on(0)
///     .build();
/// assert_eq!(t.columns.len(), 2);
/// assert!(t.has_index_on(0));
/// ```
pub fn table(name: &str, row_count: u64) -> TableBuilder {
    TableBuilder {
        def: TableDef {
            name: name.to_string(),
            columns: Vec::new(),
            row_count,
            indexes: Vec::new(),
        },
    }
}

/// Builder returned by [`table`].
pub struct TableBuilder {
    def: TableDef,
}

impl TableBuilder {
    /// Adds a column with the given statistics.
    pub fn col(mut self, name: &str, col_type: ColType, ndv: u64) -> Self {
        self.def.columns.push(ColumnDef {
            name: name.to_string(),
            col_type,
            ndv,
        });
        self
    }

    /// Adds an ordered index on column `ordinal`.
    pub fn index_on(mut self, ordinal: usize) -> Self {
        self.def.indexes.push(IndexDef { column: ordinal });
        self
    }

    /// Finishes the definition.
    pub fn build(self) -> TableDef {
        self.def
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> TableDef {
        table("emp", 1000)
            .col("id", ColType::Int, 1000)
            .col("dept", ColType::Int, 20)
            .col("name", ColType::Str, 950)
            .index_on(0)
            .build()
    }

    #[test]
    fn add_and_lookup() {
        let mut cat = Catalog::new();
        let id = cat.add_table(emp()).unwrap();
        assert_eq!(cat.table(id).name, "emp");
        let (id2, def) = cat.table_by_name("emp").unwrap();
        assert_eq!(id, id2);
        assert_eq!(def.row_count, 1000);
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.add_table(emp()).unwrap();
        assert_eq!(
            cat.add_table(emp()),
            Err(CatalogError::DuplicateTable("emp".into()))
        );
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut cat = Catalog::new();
        let t = table("t", 1)
            .col("a", ColType::Int, 1)
            .col("a", ColType::Int, 1)
            .build();
        assert!(matches!(
            cat.add_table(t),
            Err(CatalogError::DuplicateColumn { .. })
        ));
    }

    #[test]
    fn index_out_of_range_rejected() {
        let mut cat = Catalog::new();
        let t = table("t", 1).col("a", ColType::Int, 1).index_on(3).build();
        assert!(matches!(
            cat.add_table(t),
            Err(CatalogError::IndexOutOfRange { column: 3, .. })
        ));
    }

    #[test]
    fn column_resolution() {
        let mut cat = Catalog::new();
        cat.add_table(emp()).unwrap();
        let (tid, col) = cat.resolve_column("emp", "dept").unwrap();
        assert_eq!(cat.table(tid).column(col).ndv, 20);
        assert!(cat.resolve_column("emp", "salary").is_err());
        assert!(cat.resolve_column("nope", "id").is_err());
    }

    #[test]
    fn index_queries() {
        let t = emp();
        assert!(t.has_index_on(0));
        assert!(!t.has_index_on(1));
        assert_eq!(t.column_index("name"), Some(2));
        assert_eq!(t.column_index("nope"), None);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CatalogError::UnknownColumn {
            table: "t".into(),
            column: "c".into(),
        };
        assert!(e.to_string().contains("unknown column"));
    }
}
