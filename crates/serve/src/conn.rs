//! The per-connection state machine.
//!
//! Each connection owns a nonblocking [`TcpStream`], an input buffer
//! accumulating partially-received frames, and an output buffer holding
//! partially-sent replies. The event loop drives it with three calls:
//! [`Conn::fill`] (drain readable bytes), [`Conn::flush`] (push
//! writable bytes), and the deadline probe [`Conn::frame_deadline`].
//! The connection itself performs no protocol work beyond framing —
//! decoding and execution happen in the event loop and the worker pool
//! — so its invariants stay small:
//!
//! * reply order per connection is *not* required — each frame carries
//!   its request id, so clients match replies by id, and the buffer
//!   simply appends frames as they complete;
//! * a connection with [`ConnPhase::Draining`] set has a poisoned input
//!   stream (fatal wire error): its remaining output flushes, then it
//!   closes — input is discarded;
//! * slow-loris defense: [`Conn::frame_deadline`] reports when the
//!   currently-buffered *partial* frame started; trickling one byte at
//!   a time never resets it, so the event loop can close any connection
//!   whose frame has been incomplete longer than the configured window.
//!   Complete frames merely waiting for a pipeline slot are not a
//!   trickle and never arm the deadline;
//! * half-close ([`Conn::eof`]) stops reads but is not a fault: every
//!   request already buffered is still parsed (as pipeline slots free
//!   up), answered, and flushed before the connection closes.

use crate::wire;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Cap on bytes drained per readable event, so one firehose connection
/// cannot starve the rest of the loop.
const READ_CHUNK: usize = 64 * 1024;

/// Lifecycle of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnPhase {
    /// Reading requests and writing replies (a half-close is tracked
    /// separately by [`Conn::eof`] — buffered input is still served).
    Open,
    /// Input is poisoned by a fatal wire error: flush output, then
    /// close — remaining input is discarded.
    Draining,
    /// To be dropped by the event loop.
    Closed,
}

/// One client connection.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    /// Unparsed input (suffix of the stream read so far).
    rbuf: Vec<u8>,
    /// Encoded reply frames not yet fully written.
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written.
    wpos: usize,
    /// When the partial frame at the head of `rbuf` started arriving.
    frame_started: Option<Instant>,
    /// Requests handed to the worker pool, not yet answered.
    pub inflight: usize,
    /// Lifecycle phase.
    pub phase: ConnPhase,
    /// The peer half-closed (or the read side errored): no more input
    /// arrives, but buffered requests are still served and replies
    /// still flush before the connection closes.
    pub eof: bool,
}

impl Conn {
    /// Wraps an accepted stream (made nonblocking here).
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            frame_started: None,
            inflight: 0,
            phase: ConnPhase::Open,
            eof: false,
        })
    }

    /// The underlying stream (for fd registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Whether unsent reply bytes remain.
    pub fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Whether the loop should poll this connection for input: open,
    /// and not so far ahead of the workers that parsing more would
    /// queue unboundedly (`max_pipeline` bounds decoded-but-unanswered
    /// requests per connection; TCP backpressure does the rest).
    pub fn wants_read(&self, max_pipeline: usize) -> bool {
        self.phase == ConnPhase::Open && !self.eof && self.inflight < max_pipeline
    }

    /// Deadline for the currently-incomplete frame, if one is pending.
    pub fn frame_deadline(&self) -> Option<Instant> {
        self.frame_started
    }

    /// Queues one encoded payload as a frame on the write buffer.
    pub fn queue_reply(&mut self, payload: &[u8]) {
        // Every reply the server produces is bounded by construction
        // (sample batches capped, error messages clamped); a violation
        // here would make the client reject the server's own frame.
        debug_assert!(
            payload.len() <= wire::MAX_FRAME_LEN as usize,
            "reply payload of {} bytes exceeds MAX_FRAME_LEN",
            payload.len()
        );
        // Compact the buffer opportunistically once everything queued
        // before has been flushed.
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        self.wbuf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload);
    }

    /// Reads until `WouldBlock`, EOF, or the per-event cap, appending to
    /// the input buffer. Returns `false` when the connection reached EOF
    /// or errored (the caller transitions the phase).
    pub fn fill(&mut self) -> bool {
        let mut chunk = [0u8; 4096];
        let mut read_total = 0;
        loop {
            if read_total >= READ_CHUNK {
                return true; // come back next tick
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    read_total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Splits the next complete frame payload out of the input buffer.
    ///
    /// `Ok(None)`: no complete frame yet (a partial frame arms the
    /// slow-loris deadline). `Err`: the stream is unrecoverable
    /// (oversized prefix) — the caller replies and drains.
    pub fn next_frame(&mut self, now: Instant) -> Result<Option<Vec<u8>>, wire::WireError> {
        match wire::split_frame(&self.rbuf)? {
            Some((payload, consumed)) => {
                let payload = payload.to_vec();
                self.rbuf.drain(..consumed);
                // Only a genuinely incomplete remainder arms the
                // slow-loris clock: complete frames left unparsed when
                // the pipeline bound stops the parse loop are not a
                // trickle, and timing them out would drop pipelined
                // requests that are merely waiting for a slot.
                self.frame_started = if self.head_is_partial() {
                    Some(now)
                } else {
                    None
                };
                Ok(Some(payload))
            }
            None => {
                if self.rbuf.is_empty() {
                    self.frame_started = None;
                } else if self.frame_started.is_none() {
                    self.frame_started = Some(now);
                }
                Ok(None)
            }
        }
    }

    /// Whether the head of the input buffer is a genuinely incomplete
    /// frame — as opposed to empty, complete-but-unparsed (waiting for
    /// a pipeline slot), or poisoned (the next parse raises the error).
    fn head_is_partial(&self) -> bool {
        !self.rbuf.is_empty() && matches!(wire::split_frame(&self.rbuf), Ok(None))
    }

    /// Whether the input buffer holds something the parse loop can act
    /// on right now: a complete frame, or a poisoned prefix whose typed
    /// error is still owed to the client.
    fn has_parseable_input(&self) -> bool {
        matches!(wire::split_frame(&self.rbuf), Ok(Some(_)) | Err(_))
    }

    /// Writes buffered replies until `WouldBlock` or the buffer drains.
    /// Returns `false` when the connection errored.
    pub fn flush(&mut self) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        true
    }

    /// Whether the connection has fully shut down its work: nothing
    /// left to write, nothing in flight, and — when the input side is
    /// merely half-closed rather than poisoned — nothing parseable
    /// still buffered (the half-close contract: every request received
    /// before EOF is answered).
    pub fn drained(&self) -> bool {
        let idle = !self.wants_write() && self.inflight == 0;
        match self.phase {
            ConnPhase::Draining => idle,
            ConnPhase::Open => self.eof && idle && !self.has_parseable_input(),
            ConnPhase::Closed => false, // reaped by phase, not by drained()
        }
    }
}
