//! Lilliefors-corrected goodness-of-fit via a seeded parametric
//! bootstrap.
//!
//! The plain KS p-value assumes the model CDF was fixed *before* seeing
//! the data. Our gamma/exponential fits estimate their parameters from
//! the very sample being tested, which pulls the fitted CDF toward the
//! empirical one and makes the classical Kolmogorov bound *optimistic*
//! (the Lilliefors effect): real rejection thresholds are much smaller
//! than `1.358/√n`. The exact null distribution of the KS statistic
//! with estimated parameters has no closed form for the gamma family,
//! so [`ks_gamma_fit`] / [`ks_exponential_fit`] recover it empirically:
//!
//! 1. fit the model to the data and compute the observed statistic `D`;
//! 2. repeatedly draw a synthetic sample of the same size **from the
//!    fitted model**, *re-fit on the synthetic sample* (re-estimating
//!    every parameter, including the location shift), and record its
//!    statistic `D_b` — the exact procedure applied to data where H₀ is
//!    true by construction;
//! 3. report `p = (1 + #{D_b ≥ D}) / (B + 1)`, the standard
//!    add-one Monte-Carlo p-value (never exactly zero, exact under the
//!    null for any `B`).
//!
//! Everything is deterministic in the caller's seed, so the statistical
//! CI job reproduces bit-identical p-values run-to-run.

use crate::{fit_exponential, fit_gamma, ks_statistic, StatsError, Summary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bootstrap confidence interval on one sample quantile, as reported
/// by [`bootstrap_quantile_cis`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileCi {
    /// Quantile level in `[0, 1]` (0.5 = median).
    pub level: f64,
    /// The sample quantile itself (the point estimate).
    pub point: f64,
    /// Lower confidence bound (percentile method).
    pub lo: f64,
    /// Upper confidence bound (percentile method).
    pub hi: f64,
}

impl std::fmt::Display for QuantileCi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "q{:02.0} {:.4} [{:.4}, {:.4}]",
            self.level * 100.0,
            self.point,
            self.lo,
            self.hi
        )
    }
}

/// Seeded nonparametric-bootstrap confidence intervals on sample
/// quantiles (percentile method): resample `data` with replacement
/// `replicates` times, compute every requested quantile on each
/// resample, and report the `(1±confidence)/2` percentiles of the
/// replicate distribution around the full-sample point estimate.
///
/// The single-sample Table-1 quantiles ("min sampled cost", "mean",
/// the ≤2×/≤10× fractions) say nothing about their own sampling noise;
/// these intervals do — a paper-comparison claim like "the 1% quantile
/// of scaled cost is ≈ 2" is only meaningful with its CI attached
/// (docs/EXPERIMENTS.md §E1). Deterministic in `seed`, so recorded
/// intervals reproduce bit-identically run-to-run.
pub fn bootstrap_quantile_cis(
    data: &[f64],
    levels: &[f64],
    replicates: usize,
    confidence: f64,
    seed: u64,
) -> Result<Vec<QuantileCi>, StatsError> {
    let clean: Vec<f64> = data.iter().copied().filter(|v| !v.is_nan()).collect();
    if clean.is_empty() {
        return Err(StatsError::EmptySample);
    }
    assert!(replicates > 0, "bootstrap needs at least one replicate");
    assert!(confidence > 0.0 && confidence < 1.0, "confidence in (0,1)");
    for &p in levels {
        assert!((0.0..=1.0).contains(&p), "quantile level outside [0,1]");
    }
    let full = Summary::of(&clean);
    let mut rng = StdRng::seed_from_u64(seed);
    // replicate_quantiles[j][b] = level j's quantile in resample b.
    let mut replicate_quantiles: Vec<Vec<f64>> = vec![Vec::with_capacity(replicates); levels.len()];
    let mut resample = Vec::with_capacity(clean.len());
    for _ in 0..replicates {
        resample.clear();
        resample.extend((0..clean.len()).map(|_| clean[rng.gen_range(0..clean.len())]));
        let s = Summary::of(&resample);
        for (j, &p) in levels.iter().enumerate() {
            replicate_quantiles[j].push(s.quantile(p));
        }
    }
    let alpha = 1.0 - confidence;
    Ok(levels
        .iter()
        .zip(&mut replicate_quantiles)
        .map(|(&p, reps)| {
            let s = Summary::of(reps);
            QuantileCi {
                level: p,
                point: full.quantile(p),
                lo: s.quantile(alpha / 2.0),
                hi: s.quantile(1.0 - alpha / 2.0),
            }
        })
        .collect())
}

/// Outcome of a parametric-bootstrap goodness-of-fit test.
///
/// Unlike [`crate::TestOutcome`], the null distribution here is an
/// *empirical sample* of replicate statistics, so critical values are
/// quantiles of that sample rather than an analytic survival function.
#[derive(Debug, Clone)]
pub struct BootstrapOutcome {
    /// Human-readable test name (`"ks-gamma-bootstrap"`, …).
    pub test: &'static str,
    /// The observed KS statistic `D` of the data against its own fit.
    pub statistic: f64,
    /// Monte-Carlo p-value `(1 + #{D_b ≥ D}) / (B + 1)`.
    pub p_value: f64,
    /// Sample size the statistic was computed on.
    pub n: usize,
    /// The replicate statistics `D_b`, sorted ascending — the empirical
    /// null of "KS distance of a true-model sample against its own
    /// re-fit".
    pub null_statistics: Vec<f64>,
}

impl BootstrapOutcome {
    /// `true` iff the fit is rejected at significance `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha in (0,1)");
        self.p_value < alpha
    }

    /// The empirical rejection threshold at significance `alpha`: the
    /// `(1-alpha)` quantile of the replicate statistics.
    pub fn critical_value(&self, alpha: f64) -> f64 {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha in (0,1)");
        let idx = ((1.0 - alpha) * (self.null_statistics.len() - 1) as f64).round() as usize;
        self.null_statistics[idx]
    }
}

impl std::fmt::Display for BootstrapOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: statistic {:.4}, bootstrap p = {:.4} ({} replicates, n = {})",
            self.test,
            self.statistic,
            self.p_value,
            self.null_statistics.len(),
            self.n
        )
    }
}

/// A standard normal variate (Box–Muller; the second value of each pair
/// is discarded for simplicity — the bootstrap draws are not on any hot
/// path).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > 0.0 {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// A `Gamma(shape, 1)` variate by Marsaglia–Tsang squeeze (2000), with
/// the `shape < 1` boost `Gamma(k) = Gamma(k+1) · U^{1/k}`.
fn standard_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    debug_assert!(shape > 0.0);
    if shape < 1.0 {
        let boost: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE).powf(1.0 / shape);
        return standard_gamma(rng, shape + 1.0) * boost;
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        // Cheap squeeze first, exact log check second.
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// One replicate-generating draw per family.
trait FittedModel: Sized {
    const TEST_NAME: &'static str;
    fn fit(data: &[f64]) -> Self;
    fn cdf(&self, x: f64) -> f64;
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

struct GammaModel(crate::GammaFit);

impl FittedModel for GammaModel {
    const TEST_NAME: &'static str = "ks-gamma-bootstrap";
    fn fit(data: &[f64]) -> Self {
        GammaModel(fit_gamma(data))
    }
    fn cdf(&self, x: f64) -> f64 {
        self.0.cdf(x)
    }
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.0.shift + standard_gamma(rng, self.0.shape) * self.0.scale
    }
}

struct ExponentialModel(crate::ExponentialFit);

impl FittedModel for ExponentialModel {
    const TEST_NAME: &'static str = "ks-exponential-bootstrap";
    fn fit(data: &[f64]) -> Self {
        ExponentialModel(fit_exponential(data))
    }
    fn cdf(&self, x: f64) -> f64 {
        self.0.cdf(x)
    }
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        self.0.shift - u.ln() / self.0.rate
    }
}

fn bootstrap_fit<M: FittedModel>(
    data: &[f64],
    replicates: usize,
    seed: u64,
) -> Result<BootstrapOutcome, StatsError> {
    let clean: Vec<f64> = data.iter().copied().filter(|v| !v.is_nan()).collect();
    if clean.is_empty() {
        return Err(StatsError::EmptySample);
    }
    assert!(replicates > 0, "bootstrap needs at least one replicate");
    let model = M::fit(&clean);
    let observed = ks_statistic(&clean, |x| model.cdf(x));

    let mut rng = StdRng::seed_from_u64(seed);
    let mut null_statistics: Vec<f64> = (0..replicates)
        .map(|_| {
            let synthetic: Vec<f64> = (0..clean.len()).map(|_| model.draw(&mut rng)).collect();
            let refit = M::fit(&synthetic);
            ks_statistic(&synthetic, |x| refit.cdf(x))
        })
        .collect();
    null_statistics.sort_by(f64::total_cmp);
    let exceed = null_statistics
        .iter()
        .filter(|&&d| d >= observed - 1e-15)
        .count();
    Ok(BootstrapOutcome {
        test: M::TEST_NAME,
        statistic: observed,
        p_value: (1 + exceed) as f64 / (replicates + 1) as f64,
        n: clean.len(),
        null_statistics,
    })
}

/// Lilliefors-corrected KS goodness-of-fit of `data` against its own
/// maximum-likelihood gamma fit (shape, scale, *and* shift
/// re-estimated per replicate), via `replicates` parametric-bootstrap
/// draws seeded by `seed`.
pub fn ks_gamma_fit(
    data: &[f64],
    replicates: usize,
    seed: u64,
) -> Result<BootstrapOutcome, StatsError> {
    bootstrap_fit::<GammaModel>(data, replicates, seed)
}

/// Lilliefors-corrected KS goodness-of-fit of `data` against its own
/// maximum-likelihood exponential fit (rate and shift re-estimated per
/// replicate), via `replicates` parametric-bootstrap draws seeded by
/// `seed`.
pub fn ks_exponential_fit(
    data: &[f64],
    replicates: usize,
    seed: u64,
) -> Result<BootstrapOutcome, StatsError> {
    bootstrap_fit::<ExponentialModel>(data, replicates, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gamma_sample(shape: f64, scale: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| standard_gamma(&mut rng, shape) * scale)
            .collect()
    }

    #[test]
    fn gamma_sampler_matches_moments() {
        for (shape, scale) in [(0.5, 2.0), (1.0, 1.0), (4.5, 0.25)] {
            let s = Summary::of(&gamma_sample(shape, scale, 40_000, 7));
            let (mean, var) = (shape * scale, shape * scale * scale);
            assert!(
                (s.mean() - mean).abs() / mean < 0.05,
                "shape {shape}: mean {} vs {mean}",
                s.mean()
            );
            assert!(
                (s.variance() - var).abs() / var < 0.1,
                "shape {shape}: var {} vs {var}",
                s.variance()
            );
        }
    }

    #[test]
    fn true_model_data_is_not_rejected() {
        // Data genuinely drawn from a gamma: the Lilliefors-corrected
        // test must accept (this is the calibration property the
        // optimistic bound cannot provide a converse for).
        let data = gamma_sample(2.5, 3.0, 600, 11);
        let out = ks_gamma_fit(&data, 199, 42).unwrap();
        assert!(!out.rejects_at(0.01), "{out}");

        let expo: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(13);
            (0..600)
                .map(|_| 1.0 - (rng.gen::<f64>().max(f64::MIN_POSITIVE)).ln() / 0.7)
                .collect()
        };
        let out = ks_exponential_fit(&expo, 199, 42).unwrap();
        assert!(!out.rejects_at(0.01), "{out}");
    }

    #[test]
    fn wrong_model_data_is_rejected() {
        // A uniform sample is not exponential: with n = 800 the
        // corrected test must reject decisively.
        let uniform: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..800).map(|_| rng.gen::<f64>()).collect()
        };
        let out = ks_exponential_fit(&uniform, 199, 42).unwrap();
        assert!(out.rejects_at(0.01), "{out}");
        assert!(out.p_value <= 0.01, "p = {}", out.p_value);
    }

    #[test]
    fn corrected_threshold_is_stricter_than_kolmogorov() {
        // The whole point of the correction: with parameters estimated
        // from the data, the 5% rejection threshold sits well below the
        // classical 1.358/sqrt(n).
        let data = gamma_sample(2.0, 1.0, 400, 5);
        let out = ks_gamma_fit(&data, 399, 42).unwrap();
        let kolmogorov_crit = 1.3581 / (data.len() as f64).sqrt();
        assert!(
            out.critical_value(0.05) < kolmogorov_crit,
            "bootstrap crit {} vs kolmogorov {kolmogorov_crit}",
            out.critical_value(0.05)
        );
    }

    #[test]
    fn p_values_are_deterministic_in_the_seed() {
        let data = gamma_sample(1.5, 2.0, 300, 17);
        let a = ks_gamma_fit(&data, 99, 1234).unwrap();
        let b = ks_gamma_fit(&data, 99, 1234).unwrap();
        assert_eq!(a.p_value, b.p_value);
        assert_eq!(a.null_statistics, b.null_statistics);
        let c = ks_gamma_fit(&data, 99, 5678).unwrap();
        assert!((a.p_value - c.p_value).abs() < 0.2, "seeds agree loosely");
    }

    #[test]
    fn quantile_cis_bracket_the_truth_and_tighten_with_n() {
        // Uniform(0,1): the true median is 0.5 and the true q90 is 0.9;
        // a 95% bootstrap CI from a large sample must bracket them, and
        // the interval must shrink as the sample grows.
        let sample = |n: usize, seed: u64| -> Vec<f64> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n).map(|_| rng.gen::<f64>()).collect()
        };
        let widths: Vec<f64> = [400usize, 6400]
            .iter()
            .map(|&n| {
                let cis =
                    bootstrap_quantile_cis(&sample(n, 9), &[0.5, 0.9], 999, 0.95, 42).unwrap();
                for (ci, truth) in cis.iter().zip([0.5, 0.9]) {
                    assert!(
                        ci.lo <= truth && truth <= ci.hi,
                        "n={n}: true q{} = {truth} outside [{}, {}]",
                        ci.level * 100.0,
                        ci.lo,
                        ci.hi
                    );
                    assert!(ci.lo <= ci.point && ci.point <= ci.hi, "{ci}");
                }
                cis[0].hi - cis[0].lo
            })
            .collect();
        assert!(
            widths[1] < widths[0] / 2.0,
            "16x the data must shrink the median CI well past half: {widths:?}"
        );
    }

    #[test]
    fn quantile_cis_are_deterministic_in_the_seed() {
        let data = gamma_sample(2.0, 1.5, 500, 3);
        let a = bootstrap_quantile_cis(&data, &[0.01, 0.5, 0.99], 499, 0.95, 7).unwrap();
        let b = bootstrap_quantile_cis(&data, &[0.01, 0.5, 0.99], 499, 0.95, 7).unwrap();
        assert_eq!(a, b, "same seed, same intervals, bit for bit");
        assert!(a[0].point <= a[1].point && a[1].point <= a[2].point);
        assert!(a.iter().all(|ci| ci.to_string().starts_with('q')));
    }

    #[test]
    fn quantile_cis_reject_empty_samples() {
        assert!(matches!(
            bootstrap_quantile_cis(&[], &[0.5], 99, 0.95, 1),
            Err(StatsError::EmptySample)
        ));
        assert!(matches!(
            bootstrap_quantile_cis(&[f64::NAN], &[0.5], 99, 0.95, 1),
            Err(StatsError::EmptySample)
        ));
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(matches!(
            ks_gamma_fit(&[], 99, 1),
            Err(StatsError::EmptySample)
        ));
        assert!(matches!(
            ks_exponential_fit(&[f64::NAN], 99, 1),
            Err(StatsError::EmptySample)
        ));
    }

    #[test]
    fn outcome_reporting_surface() {
        let data = gamma_sample(2.0, 1.0, 200, 23);
        let out = ks_gamma_fit(&data, 99, 7).unwrap();
        assert_eq!(out.null_statistics.len(), 99);
        assert!(out.p_value > 0.0 && out.p_value <= 1.0);
        assert!(out.to_string().contains("bootstrap p"));
        // The MC p-value can never be exactly zero.
        assert!(out.p_value >= 1.0 / 100.0);
    }
}
