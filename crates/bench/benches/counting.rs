//! Experiment E4 — the paper's §3.2 complexity claim: "Computing the
//! counts for operators takes linear time on the size of the MEMO …
//! In practice, the time needed for counting never exceeded 1 second
//! even for large queries."
//!
//! Benchmarks the full post-processing pass (link materialization §3.1 +
//! counting §3.2 = `PlanSpace::build`) on the TPC-H memos, including the
//! largest one (Q8 with cross products, ~22k physical expressions).

use criterion::{criterion_group, criterion_main, Criterion};
use plansample::PlanSpace;
use plansample_bench::prepare;

fn bench_counting(c: &mut Criterion) {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let cases = [
        ("Q5_noCP", plansample_query::tpch::q5(&catalog), false),
        ("Q7_noCP", plansample_query::tpch::q7(&catalog), false),
        ("Q9_noCP", plansample_query::tpch::q9(&catalog), false),
        ("Q8_noCP", plansample_query::tpch::q8(&catalog), false),
        ("Q8_CP", plansample_query::tpch::q8(&catalog), true),
    ];

    let mut group = c.benchmark_group("count_plans");
    group.sample_size(20);
    for (name, query, cp) in cases {
        let prepared = prepare(&catalog, "bench", query, cp);
        let memo = prepared.space().memo_shared();
        let query = prepared.space().query_shared();
        group.bench_function(name, |b| {
            b.iter(|| {
                // build_shared isolates the post-processing pass itself
                // (no memo copy in the measurement).
                let space = PlanSpace::build_shared(
                    std::sync::Arc::clone(memo),
                    std::sync::Arc::clone(query),
                )
                .unwrap();
                std::hint::black_box(space.total().clone())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_counting);
criterion_main!(benches);
