//! Edge cases of the counting/unranking machinery: dead (zero-plan)
//! expressions, degenerate one-plan spaces, deep chains, and restricted
//! optimizer configurations.

use plansample::{PlanSpace, SpaceError};
use plansample_bignum::Nat;
use plansample_catalog::{table, Catalog, ColType};
use plansample_memo::{validate_plan, GroupKey, Memo, PhysicalExpr, PhysicalOp};
use plansample_optimizer::{optimize, OptimizerConfig};
use plansample_query::{ColRef, QueryBuilder, QuerySpec, RelId, RelSet};

/// One relation, one unsatisfiable merge join: the dead expression must
/// count zero and never be produced by unranking.
#[test]
fn dead_expressions_count_zero_and_are_skipped() {
    let mut catalog = Catalog::new();
    catalog
        .add_table(table("a", 10).col("k", ColType::Int, 10).build())
        .unwrap();
    catalog
        .add_table(table("b", 10).col("k", ColType::Int, 10).build())
        .unwrap();
    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("a", None).unwrap();
    qb.rel("b", None).unwrap();
    qb.join(("a", "k"), ("b", "k")).unwrap();
    let query = qb.build().unwrap();

    let (ra, rb) = (RelId(0), RelId(1));
    let a_k = ColRef { rel: ra, col: 0 };
    let b_k = ColRef { rel: rb, col: 0 };

    let mut memo = Memo::new();
    let ga = memo.add_group(GroupKey::Rels(RelSet::singleton(ra)));
    let gb = memo.add_group(GroupKey::Rels(RelSet::singleton(rb)));
    let gab = memo.add_group(GroupKey::Rels(RelSet::all(2)));
    // Only unsorted table scans: no index, no enforcer.
    memo.add_physical(
        ga,
        PhysicalExpr::new(PhysicalOp::TableScan { rel: ra }, 10.0, 10.0),
    )
    .unwrap();
    memo.add_physical(
        gb,
        PhysicalExpr::new(PhysicalOp::TableScan { rel: rb }, 10.0, 10.0),
    )
    .unwrap();
    // A live hash join and a DEAD merge join (nothing delivers the order).
    let hj = memo
        .add_physical(
            gab,
            PhysicalExpr::new(
                PhysicalOp::HashJoin {
                    left: ga,
                    right: gb,
                },
                25.0,
                10.0,
            ),
        )
        .unwrap();
    let dead = memo
        .add_physical(
            gab,
            PhysicalExpr::new(
                PhysicalOp::MergeJoin {
                    left: ga,
                    right: gb,
                    left_key: a_k,
                    right_key: b_k,
                },
                20.0,
                10.0,
            ),
        )
        .unwrap();
    memo.set_root(gab);

    let space = PlanSpace::build(&memo, &query).unwrap();
    assert_eq!(space.count_rooted(dead), &Nat::zero());
    assert_eq!(space.count_rooted(hj).to_u64(), Some(1));
    assert_eq!(
        space.total().to_u64(),
        Some(1),
        "dead expr contributes nothing"
    );

    let plan = space.unrank(&Nat::zero()).unwrap();
    assert_eq!(plan.id, hj, "unranking must skip the dead expression");
    assert!(space.unrank(&Nat::one()).is_err());
    // Enumeration agrees.
    assert_eq!(space.enumerate().count(), 1);
    assert_eq!(space.enumerate_recursive(usize::MAX).len(), 1);
}

#[test]
fn single_plan_space_round_trips() {
    let mut catalog = Catalog::new();
    catalog
        .add_table(table("only", 5).col("x", ColType::Int, 5).build())
        .unwrap();
    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("only", None).unwrap();
    let query = qb.build().unwrap();
    // No indexes, no aggregate: exactly one plan (the table scan).
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    assert_eq!(space.total().to_u64(), Some(1));
    let plan = space.unrank(&Nat::zero()).unwrap();
    assert_eq!(space.rank(&plan).unwrap(), Nat::zero());
    assert!(matches!(
        space.unrank(&Nat::one()),
        Err(SpaceError::RankOutOfRange { .. })
    ));
}

fn chain_query(n: usize) -> (Catalog, QuerySpec) {
    let mut catalog = Catalog::new();
    for i in 0..n {
        catalog
            .add_table(
                table(&format!("t{i}"), 1000 + 7 * i as u64)
                    .col("k", ColType::Int, 100)
                    .col("fk", ColType::Int, 100)
                    .index_on(0)
                    .build(),
            )
            .unwrap();
    }
    let mut qb = QueryBuilder::new(&catalog);
    for i in 0..n {
        qb.rel(&format!("t{i}"), None).unwrap();
    }
    for i in 0..n - 1 {
        qb.join((&format!("t{i}"), "fk"), (&format!("t{}", i + 1), "k"))
            .unwrap();
    }
    let q = qb.build().unwrap();
    (catalog, q)
}

#[test]
fn deep_chain_extreme_ranks_round_trip() {
    let (catalog, query) = chain_query(8);
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    let total = space.total().clone();
    assert!(total.bits() > 30, "8-chain space is large: {total}");

    let mut last = total.clone();
    last.decr();
    for rank in [Nat::zero(), Nat::one(), last] {
        let plan = space.unrank(&rank).unwrap();
        assert!(validate_plan(&optimized.memo, &query, &plan).is_empty());
        assert_eq!(space.rank(&plan).unwrap(), rank);
    }
}

#[test]
fn restricted_configs_shrink_but_stay_consistent() {
    let (catalog, query) = chain_query(4);
    let full = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let full_n = PlanSpace::build(&full.memo, &query)
        .unwrap()
        .total()
        .clone();

    let mut shrinking = vec![];
    for (label, config) in [
        (
            "no merge joins",
            OptimizerConfig {
                enable_merge_joins: false,
                ..Default::default()
            },
        ),
        (
            "no merge, no index",
            OptimizerConfig {
                enable_merge_joins: false,
                enable_index_scans: false,
                ..Default::default()
            },
        ),
        (
            "no merge, no index, no enforcers",
            OptimizerConfig {
                enable_merge_joins: false,
                enable_index_scans: false,
                enable_enforcers: false,
                ..Default::default()
            },
        ),
    ] {
        let optimized = optimize(&catalog, &query, &config).unwrap();
        let space = PlanSpace::build(&optimized.memo, &query).unwrap();
        let n = space.total().clone();
        assert!(n < full_n, "{label}: {n} must be below the full {full_n}");
        // Bijection still holds in every configuration.
        let mut last = n.clone();
        last.decr();
        let plan = space.unrank(&last).unwrap();
        assert_eq!(space.rank(&plan).unwrap(), last, "{label}");
        shrinking.push(n);
    }
    assert!(
        shrinking.windows(2).all(|w| w[1] <= w[0]),
        "each restriction shrinks the space: {shrinking:?}"
    );

    // The most restricted config (NLJ/hash + table scans + hash agg
    // only) for a 4-chain: join orders × hash/NLJ choices. All plans
    // must still validate.
    let config = OptimizerConfig {
        enable_merge_joins: false,
        enable_index_scans: false,
        enable_enforcers: false,
        ..Default::default()
    };
    let optimized = optimize(&catalog, &query, &config).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();
    for plan in space.enumerate().take(500) {
        assert!(validate_plan(&optimized.memo, &query, &plan).is_empty());
    }
}

#[test]
fn enforcers_enable_merge_joins_without_indexes() {
    // No indexes anywhere: merge joins are only reachable through Sort
    // enforcers; with enforcers off they must be dead or absent.
    let mut catalog = Catalog::new();
    for name in ["x", "y"] {
        catalog
            .add_table(table(name, 100).col("k", ColType::Int, 100).build())
            .unwrap();
    }
    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("x", None).unwrap();
    qb.rel("y", None).unwrap();
    qb.join(("x", "k"), ("y", "k")).unwrap();
    let query = qb.build().unwrap();

    let with = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let with_space = PlanSpace::build(&with.memo, &query).unwrap();

    let without = optimize(
        &catalog,
        &query,
        &OptimizerConfig {
            enable_enforcers: false,
            ..Default::default()
        },
    )
    .unwrap();
    let without_space = PlanSpace::build(&without.memo, &query).unwrap();

    assert!(
        with_space.total() > without_space.total(),
        "enforcers unlock merge-join plans: {} vs {}",
        with_space.total(),
        without_space.total()
    );

    // In the no-enforcer memo every merge join is dead (counts zero).
    for group in without.memo.groups() {
        for (id, expr) in group.phys_iter() {
            if matches!(expr.op, PhysicalOp::MergeJoin { .. }) {
                assert!(
                    without_space.count_rooted(id).is_zero(),
                    "{id} should be dead"
                );
            }
        }
    }
}

#[test]
fn aggregate_space_includes_both_agg_implementations() {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = plansample_query::tpch::q6(&catalog);
    let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let space = PlanSpace::build(&optimized.memo, &query).unwrap();

    // Every plan's root must be an aggregate; both implementations occur.
    let mut names = std::collections::HashSet::new();
    for plan in space.enumerate() {
        names.insert(optimized.memo.phys(plan.id).op.name());
    }
    assert!(names.contains("HashAgg"));
    assert!(names.contains("StreamAgg"));
}
