//! Arbitrary-precision unsigned integers for exact plan-space arithmetic.
//!
//! The plan-counting algorithm of Waas & Galindo-Legaria multiplies and sums
//! alternative counts across a MEMO; for joins of 8+ relations the totals
//! exceed `u64` (Table 1 of the paper already reports 4.4e12 plans, and the
//! growth is super-exponential in the number of relations). Counting and the
//! mixed-radix unranking decomposition must be *exact*, so this crate
//! provides [`Nat`], a dependency-free natural-number type with exactly the
//! operations the ranking machinery needs: addition, checked subtraction,
//! multiplication, division with remainder, comparison, decimal conversion,
//! and uniform random generation below a bound.
//!
//! # Representation
//!
//! Values are little-endian `u64` limbs with no trailing zero limbs — but
//! the representation is *small-value-inline*: anything that fits one limb
//! (including zero) lives in an inline `u64` and owns **no heap memory**;
//! only genuinely multi-limb values spill to an exactly-sized boxed limb
//! slice. The MEMO-wide count tables hold one `Nat` per physical
//! expression and the overwhelming majority of per-expression counts fit
//! one limb, so the inline representation removes one heap allocation per
//! expression from plan-space construction (measured in `build_scaling`,
//! recorded in `docs/EXPERIMENTS.md` §E10 and `docs/DESIGN.md` §4).
//! [`Nat::size_bytes`] reports the true footprint: `size_of::<Nat>()` for
//! inline values, plus the exact spill buffer otherwise.
//!
//! All arithmetic is schoolbook with fast single-limb paths; plan counting
//! touches numbers of a few dozen limbs at most, far below the sizes where
//! Karatsuba or faster division would pay off.

#![warn(missing_docs)]

mod convert;
mod div;
mod ops;
mod random;

pub use convert::ParseNatError;

/// An arbitrary-precision natural number (unsigned integer).
///
/// # Examples
///
/// ```
/// use plansample_bignum::Nat;
///
/// let a = Nat::from(u64::MAX);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "340282366920938463426481119284349108225");
/// let (q, r) = b.div_rem(&a);
/// assert_eq!(q, a);
/// assert!(r.is_zero());
/// ```
#[derive(Clone)]
pub struct Nat {
    /// The value when `spill` is `None` (zero is `small == 0`); unused
    /// (and kept at 0) otherwise.
    small: u64,
    /// Multi-limb storage, little-endian. Invariants: `len() >= 2` and
    /// the top limb is non-zero — one-limb values are always inline, so
    /// every value has exactly one representation and derived
    /// `PartialEq`/`Hash` would be sound (they are implemented over the
    /// limb view anyway for clarity).
    spill: Option<Box<[u64]>>,
}

impl Nat {
    /// The value `0`.
    pub const fn zero() -> Self {
        Nat {
            small: 0,
            spill: None,
        }
    }

    /// The value `1`.
    pub const fn one() -> Self {
        Nat {
            small: 1,
            spill: None,
        }
    }

    /// Internal: a single-limb (inline) value.
    #[inline]
    pub(crate) const fn small(v: u64) -> Self {
        Nat {
            small: v,
            spill: None,
        }
    }

    /// Builds a `Nat` from little-endian limbs, normalizing trailing zeros
    /// (and inlining the value when it fits one limb).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        match limbs.len() {
            0 => Nat::zero(),
            1 => Nat::small(limbs[0]),
            _ => Nat {
                small: 0,
                spill: Some(limbs.into_boxed_slice()),
            },
        }
    }

    /// Read-only view of the little-endian limbs (empty for zero).
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        match &self.spill {
            Some(limbs) => limbs,
            None if self.small == 0 => &[],
            None => std::slice::from_ref(&self.small),
        }
    }

    /// Number of limbs (0 for zero, 1 for every other inline value).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        match &self.spill {
            Some(limbs) => limbs.len(),
            None => (self.small != 0) as usize,
        }
    }

    /// The inline value, if this `Nat` fits one limb.
    #[inline]
    pub(crate) fn as_small(&self) -> Option<u64> {
        match self.spill {
            None => Some(self.small),
            Some(_) => None,
        }
    }

    /// `true` iff the value is `0`.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.spill.is_none() && self.small == 0
    }

    /// `true` iff the value is `1`.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.spill.is_none() && self.small == 1
    }

    /// Bytes of memory held by this number: the inline struct plus the
    /// spill buffer, if any. Inline (single-limb) values — the common
    /// case in count tables — own no heap at all, and the spill buffer
    /// is exactly sized, so this is the true footprint. Used by the
    /// plan-space size accounting that drives memory-bounded cache
    /// eviction.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .spill
                .as_ref()
                .map_or(0, |s| std::mem::size_of_val::<[u64]>(s))
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u64 {
        let limbs = self.limbs();
        match limbs.last() {
            None => 0,
            Some(&top) => (limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// Strictly increments the value in place.
    pub fn incr(&mut self) {
        match &mut self.spill {
            None => match self.small.checked_add(1) {
                Some(v) => self.small = v,
                None => {
                    self.small = 0;
                    self.spill = Some(vec![0, 1].into_boxed_slice());
                }
            },
            Some(limbs) => {
                for limb in limbs.iter_mut() {
                    let (v, carry) = limb.overflowing_add(1);
                    *limb = v;
                    if !carry {
                        return;
                    }
                }
                // Carry off the top: grow by one limb.
                let mut grown = std::mem::take(limbs).into_vec();
                grown.push(1);
                *limbs = grown.into_boxed_slice();
            }
        }
    }

    /// Decrements in place; panics on zero (natural numbers only).
    pub fn decr(&mut self) {
        assert!(!self.is_zero(), "Nat::decr on zero");
        match &mut self.spill {
            None => self.small -= 1,
            Some(limbs) => {
                for limb in limbs.iter_mut() {
                    let (v, borrow) = limb.overflowing_sub(1);
                    *limb = v;
                    if !borrow {
                        break;
                    }
                }
                if limbs.last() == Some(&0) {
                    // 2^64k - 1 drops a limb; renormalize (may re-inline).
                    *self = Nat::from_limbs(std::mem::take(limbs).into_vec());
                }
            }
        }
    }

    /// Lossy conversion to `f64` (saturates to `f64::INFINITY` far above
    /// 2^1024). Used only for reporting, never for exact arithmetic.
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs().iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
        }
        acc
    }
}

impl Default for Nat {
    fn default() -> Self {
        Nat::zero()
    }
}

impl PartialEq for Nat {
    fn eq(&self, other: &Self) -> bool {
        self.limbs() == other.limbs()
    }
}

impl Eq for Nat {}

impl std::hash::Hash for Nat {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.limbs().hash(state);
    }
}

impl std::fmt::Debug for Nat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Nat({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Nat::zero().is_zero());
        assert!(!Nat::one().is_zero());
        assert!(Nat::one().is_one());
        assert_eq!(Nat::zero().bits(), 0);
        assert_eq!(Nat::one().bits(), 1);
    }

    #[test]
    fn from_limbs_normalizes() {
        let n = Nat::from_limbs(vec![5, 0, 0]);
        assert_eq!(n.limbs(), &[5]);
        assert_eq!(Nat::from_limbs(vec![0, 0]), Nat::zero());
    }

    #[test]
    fn single_limb_values_are_inline() {
        for v in [0u64, 1, 42, u64::MAX] {
            let n = Nat::from(v);
            assert_eq!(n.size_bytes(), std::mem::size_of::<Nat>(), "{v}");
        }
        // Normalization re-inlines values whose top limbs are zero.
        let n = Nat::from_limbs(vec![7, 0, 0]);
        assert_eq!(n.size_bytes(), std::mem::size_of::<Nat>());
    }

    #[test]
    fn spilled_values_report_exact_footprint() {
        let n = Nat::from(1u128 << 64);
        assert_eq!(n.limbs().len(), 2);
        assert_eq!(
            n.size_bytes(),
            std::mem::size_of::<Nat>() + 2 * std::mem::size_of::<u64>()
        );
    }

    #[test]
    fn nat_struct_stays_pointer_sized() {
        // The whole point of the inline representation: a Nat is no
        // bigger than the Vec-based one it replaced (ptr + len + cap).
        assert!(std::mem::size_of::<Nat>() <= 3 * std::mem::size_of::<usize>());
    }

    #[test]
    fn bits_counts_leading_limb() {
        assert_eq!(Nat::from(1u64 << 63).bits(), 64);
        assert_eq!(Nat::from(u64::MAX).bits(), 64);
        assert_eq!(Nat::from(1u128 << 64).bits(), 65);
        assert_eq!(Nat::from(3u64).bits(), 2);
    }

    #[test]
    fn incr_carries_across_limbs() {
        let mut n = Nat::from(u64::MAX);
        n.incr();
        assert_eq!(n, Nat::from(1u128 << 64));
        n.decr();
        assert_eq!(n, Nat::from(u64::MAX));
        assert!(n.as_small().is_some(), "decr re-inlines across the spill");
    }

    #[test]
    fn incr_grows_a_full_spill() {
        let mut n = Nat::from(u128::MAX);
        n.incr();
        assert_eq!(n.limbs(), &[0, 0, 1]);
        n.decr();
        assert_eq!(n, Nat::from(u128::MAX));
    }

    #[test]
    #[should_panic(expected = "decr on zero")]
    fn decr_zero_panics() {
        Nat::zero().decr();
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Nat::default(), Nat::zero());
    }

    #[test]
    fn equality_and_hash_see_values_not_representations() {
        use std::collections::HashSet;
        let a = Nat::from(99u64);
        let b = Nat::from_limbs(vec![99, 0, 0, 0]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn to_f64_round_numbers() {
        assert_eq!(Nat::zero().to_f64(), 0.0);
        assert_eq!(Nat::from(12345u64).to_f64(), 12345.0);
        let big = Nat::from(1u128 << 100);
        let expect = (2f64).powi(100);
        assert!((big.to_f64() - expect).abs() / expect < 1e-12);
    }
}
