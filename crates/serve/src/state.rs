//! Shared server state: workload resolution, request execution, and
//! admission control.
//!
//! The state is one [`PlanService`] over the TPC-H catalog (SQL
//! workloads) plus a lazily-populated family of single-entry services
//! for synthetic join-graph workloads, each over the catalog the spec
//! deterministically materializes. Routing every preparation through a
//! `PlanService` buys the serving layer the cache, the byte-budget
//! eviction, and — critically for the network determinism contract —
//! the singleflight: a thundering herd of connections asking for the
//! same fresh query performs exactly one optimization in total.
//!
//! Admission control (the `Overloaded` reply) is two-layered:
//!
//! 1. the event loop bounds the *queue* — requests beyond
//!    `max_inflight` are answered `Overloaded` immediately instead of
//!    queueing unboundedly (`shed_queue`), and
//! 2. this module bounds the *expensive work* — a request that would
//!    have to optimize (its workload is not cached, probed with
//!    [`PlanService::is_cached`]) is shed when the byte budget is
//!    already saturated or too many first preparations are in flight
//!    (`shed_prepare`). Cached workloads are always served: hits are
//!    cheap no matter how hot the cache is.

use crate::wire::{
    ErrorCode, Request, Response, StatsReply, WirePlan, Workload, MAX_SAMPLE_BATCH,
    MAX_SYNTH_RELATIONS,
};
use plansample_core::{Error, PlanService, PreparedQuery};
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_memo::PlanNode;
use plansample_optimizer::OptimizerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Admission-control knobs (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum requests queued or executing before new ones are shed.
    pub max_inflight: usize,
    /// Maximum concurrent first preparations before uncached requests
    /// are shed.
    pub max_prepares: usize,
    /// Shed uncached requests once the TPC-H service's resident bytes
    /// reach this fraction of its byte budget (when one is set).
    pub byte_high_water: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 1024,
            max_prepares: 4,
            byte_high_water: 1.0,
        }
    }
}

/// The serving state shared by the event loop and the worker pool.
pub struct ServerState {
    tpch: Arc<PlanService>,
    synth: Mutex<HashMap<(Topology, u16, u64), Arc<PlanService>>>,
    admission: AdmissionConfig,
    byte_budget: Option<usize>,
    /// Requests decoded and dispatched (including shed ones).
    pub requests: AtomicU64,
    /// Requests shed at the queue bound (incremented by the event loop).
    pub shed_queue: AtomicU64,
    /// Requests shed at the preparation bound.
    pub shed_prepare: AtomicU64,
    /// Frames that failed to decode (incremented by the event loop).
    pub wire_errors: AtomicU64,
    /// Connections currently open (maintained by the event loop).
    pub connections_open: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections_total: AtomicU64,
}

impl ServerState {
    /// Builds the state over the TPC-H catalog.
    ///
    /// `byte_budget` bounds the TPC-H service's resident artifact bytes
    /// (and participates in admission); `None` leaves it entry-bounded
    /// only.
    pub fn new(
        config: OptimizerConfig,
        cache_entries: usize,
        byte_budget: Option<usize>,
        admission: AdmissionConfig,
    ) -> Self {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        let tpch = Arc::new(PlanService::bounded(
            catalog,
            config,
            cache_entries,
            byte_budget,
        ));
        ServerState {
            tpch,
            synth: Mutex::new(HashMap::new()),
            admission,
            byte_budget,
            requests: AtomicU64::new(0),
            shed_queue: AtomicU64::new(0),
            shed_prepare: AtomicU64::new(0),
            wire_errors: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
        }
    }

    /// The queue bound the event loop enforces.
    pub fn max_inflight(&self) -> usize {
        self.admission.max_inflight
    }

    /// The TPC-H service (test observability).
    pub fn tpch_service(&self) -> &PlanService {
        &self.tpch
    }

    /// Executes one decoded request. Infallible at this layer: every
    /// failure becomes a typed [`Response::Error`].
    pub fn handle(&self, request: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match request {
            Request::Prepare(wl) => self.with_prepared(wl, |p, cached| Response::Prepared {
                total: p.total().clone(),
                groups: p.memo().num_groups() as u32,
                exprs: p.memo().num_physical() as u32,
                size_bytes: p.size_bytes() as u64,
                cached,
            }),
            Request::Count(wl) => self.with_prepared(wl, |p, _| Response::Count(p.total().clone())),
            Request::Best(wl) => self.with_prepared(wl, |p, _| {
                let (plan, cost) = p.best();
                Response::Best(to_wire_plan(plan), cost)
            }),
            Request::Unrank(wl, rank) => self.with_prepared(wl, |p, _| match p.unrank(rank) {
                Ok(plan) => Response::Plan(to_wire_plan(&plan), p.scaled_cost(&plan)),
                Err(e) => error_response(&e),
            }),
            Request::SampleBatch(wl, seed, k) => {
                if *k > MAX_SAMPLE_BATCH {
                    return Response::error(
                        ErrorCode::BadRequest,
                        format!("batch of {k} exceeds the {MAX_SAMPLE_BATCH} bound"),
                    );
                }
                let (seed, k) = (*seed, *k);
                self.with_prepared(wl, move |p, _| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let items = p
                        .sample_batch(&mut rng, k as usize)
                        .iter()
                        .map(|plan| (to_wire_plan(plan), p.scaled_cost(plan)))
                        .collect();
                    Response::Samples(items)
                })
            }
            Request::Stats => Response::Stats(self.stats()),
        }
    }

    /// Resolves the workload through its service and applies `f`,
    /// mapping every failure (shed, parse, optimize) to a typed error
    /// reply. `f` receives whether the artifact was already cached.
    fn with_prepared(
        &self,
        workload: &Workload,
        f: impl FnOnce(&PreparedQuery, bool) -> Response,
    ) -> Response {
        let (service, query) = match self.resolve(workload) {
            Ok(pair) => pair,
            Err(resp) => return *resp,
        };
        let cached = service.is_cached(&query);
        if !cached {
            if let Some(denial) = self.deny_preparation(&service) {
                self.shed_prepare.fetch_add(1, Ordering::Relaxed);
                return denial;
            }
        }
        match service.get_or_prepare(&query) {
            Ok(prepared) => f(&prepared, cached),
            Err(e) => error_response(&e),
        }
    }

    /// Maps a workload to the service that caches it plus the concrete
    /// query spec, without preparing anything.
    fn resolve(
        &self,
        workload: &Workload,
    ) -> Result<(Arc<PlanService>, plansample_query::QuerySpec), Box<Response>> {
        match workload {
            Workload::Sql(sql) => {
                let parsed = plansample_sql::parse(self.tpch.catalog(), sql).map_err(|e| {
                    // `render` quotes the offending line; `error` clamps
                    // it so the reply stays within the frame bound.
                    Box::new(Response::error(ErrorCode::Sql, e.render(sql)))
                })?;
                // The front door serves plan-space operations; execution
                // hints (USEPLAN) have no meaning here.
                Ok((Arc::clone(&self.tpch), parsed.spec))
            }
            Workload::Synthetic {
                topology,
                relations,
                seed,
            } => {
                let min = if *topology == Topology::Cycle { 3 } else { 2 };
                if *relations < min || *relations > MAX_SYNTH_RELATIONS {
                    return Err(Box::new(Response::error(
                        ErrorCode::BadRequest,
                        format!(
                            "synthetic {} workload needs {min}..={MAX_SYNTH_RELATIONS} relations, got {relations}",
                            topology.name()
                        ),
                    )));
                }
                let service = self.synth_service((*topology, *relations, *seed));
                let spec = JoinGraphSpec::new(*topology, *relations as usize, *seed);
                let (_, query) = spec.build();
                Ok((service, query))
            }
        }
    }

    /// The (created-on-demand) service owning one synthetic spec.
    /// Synthetic services hold a single entry — the spec *is* the
    /// query — so their footprint is exactly one artifact.
    fn synth_service(&self, key: (Topology, u16, u64)) -> Arc<PlanService> {
        let mut synth = self.synth.lock().expect("synth map poisoned");
        Arc::clone(synth.entry(key).or_insert_with(|| {
            let spec = JoinGraphSpec::new(key.0, key.1 as usize, key.2);
            let (catalog, _) = spec.build();
            Arc::new(PlanService::new(catalog, self.tpch.config().clone(), 1))
        }))
    }

    /// Whether an uncached request must be shed right now, and the
    /// typed reply if so.
    fn deny_preparation(&self, service: &Arc<PlanService>) -> Option<Response> {
        let stats = service.stats();
        if stats.inflight >= self.admission.max_prepares {
            return Some(overloaded(format!(
                "{} first preparations already in flight",
                stats.inflight
            )));
        }
        if let Some(budget) = self.byte_budget {
            let high_water = (budget as f64 * self.admission.byte_high_water) as usize;
            // The byte-budget tie-in applies to the TPC-H service (the
            // one sharing `self.byte_budget`); synthetic services are
            // single-entry and bounded by construction.
            if Arc::ptr_eq(service, &self.tpch) && stats.resident_bytes >= high_water {
                return Some(overloaded(format!(
                    "artifact cache at {} of {} budgeted bytes",
                    stats.resident_bytes, budget
                )));
            }
        }
        None
    }

    /// Snapshot of every counter, for [`Request::Stats`].
    pub fn stats(&self) -> StatsReply {
        let tpch = self.tpch.stats();
        let (synth_services, synth_resident_bytes) = {
            let synth = self.synth.lock().expect("synth map poisoned");
            let bytes: usize = synth.values().map(|s| s.stats().resident_bytes).sum();
            (synth.len() as u64, bytes as u64)
        };
        StatsReply {
            requests: self.requests.load(Ordering::Relaxed),
            shed_queue: self.shed_queue.load(Ordering::Relaxed),
            shed_prepare: self.shed_prepare.load(Ordering::Relaxed),
            wire_errors: self.wire_errors.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            hits: tpch.hits,
            misses: tpch.misses,
            coalesced: tpch.coalesced,
            evictions: tpch.evictions,
            entries: tpch.entries as u64,
            resident_bytes: tpch.resident_bytes as u64,
            byte_budget: tpch.byte_budget.unwrap_or(0) as u64,
            inflight_prepares: tpch.inflight as u64,
            synth_services,
            synth_resident_bytes,
        }
    }
}

/// A plan's wire form: its preorder `(group, index)` listing.
pub fn to_wire_plan(plan: &PlanNode) -> WirePlan {
    plan.preorder_ids()
        .iter()
        .map(|id| (id.group.0, id.index as u32))
        .collect()
}

fn overloaded(message: String) -> Response {
    Response::error(ErrorCode::Overloaded, message)
}

fn error_response(e: &Error) -> Response {
    let code = match e {
        Error::Opt(_) => ErrorCode::Optimize,
        _ => ErrorCode::Space,
    };
    Response::error(code, e.to_string())
}
