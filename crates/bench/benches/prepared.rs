//! The prepared-query amortization claim, measured.
//!
//! The old API re-ran `optimize` + `PlanSpace::build` on every call
//! (`Session::count_plans`, `execute_plan`, …). `Session::prepare` pays
//! that cost once and serves every subsequent operation from the owned
//! artifact. This bench quantifies the split on the paper's largest
//! space (Q8 including Cartesian products, ~22k physical expressions)
//! and a synthetic clique-6 join graph:
//!
//! * `prepare` — the one-time cost (optimize + links + counts);
//! * `count_plans_per_call` — the old per-call rebuild path;
//! * `sample_batch` — batched draws from the prepared artifact
//!   (throughput in plans/sec is printed alongside);
//! * an **asserted** acceptance check: the amortized per-sample cost of
//!   1000 draws (including three resumed enumeration pages) must be at
//!   least 100× cheaper than one `count_plans` rebuild.
//!
//! Measured numbers are recorded in `docs/EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use plansample::session::Session;
use plansample_bignum::Nat;
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_datagen::MicroScale;
use plansample_optimizer::OptimizerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const BATCH: usize = 1000;

fn q8_cp_session() -> (Session, plansample_query::QuerySpec) {
    let (catalog, tables) = plansample_catalog::tpch::catalog();
    let query = plansample_query::tpch::q8(&catalog);
    let db = plansample_datagen::generate(&catalog, &tables, &MicroScale::tiny(), 11);
    (
        Session::with_config(catalog, db, OptimizerConfig::with_cross_products()),
        query,
    )
}

fn clique6_session() -> (Session, plansample_query::QuerySpec) {
    let (catalog, query) = JoinGraphSpec::new(Topology::Clique, 6, 42).build();
    (
        Session::new(catalog, plansample_exec::Database::new()),
        query,
    )
}

fn bench_prepared(c: &mut Criterion) {
    for (label, (session, query)) in [("Q8_CP", q8_cp_session()), ("clique6", clique6_session())] {
        let mut group = c.benchmark_group(format!("prepared/{label}"));
        group.sample_size(10);

        // One-time cost of the artifact.
        group.bench_function("prepare", |b| {
            b.iter(|| std::hint::black_box(session.prepare(&query).unwrap()))
        });

        // The old path: every call rebuilds memo + links + counts.
        group.bench_function("count_plans_per_call", |b| {
            b.iter(|| std::hint::black_box(session.count_plans(&query).unwrap()))
        });

        // The serving path: batched sampling over one artifact.
        let prepared = session.prepare(&query).unwrap();
        group.bench_function(format!("sample_batch_{BATCH}"), |b| {
            let mut rng = StdRng::seed_from_u64(20000);
            b.iter(|| std::hint::black_box(prepared.sample_batch(&mut rng, BATCH)))
        });
        group.finish();

        // Acceptance assertion (ISSUE 3): amortized per-sample cost of the
        // prepared path ≥ 100× cheaper than the per-call rebuild path.
        let t0 = Instant::now();
        let per_call = session.count_plans(&query).unwrap();
        let rebuild = t0.elapsed();

        let before = plansample_optimizer::thread_optimizations_performed();
        let t0 = Instant::now();
        let prepared = session.prepare(&query).unwrap();
        let mut rng = StdRng::seed_from_u64(20000);
        let batch = prepared.sample_batch(&mut rng, BATCH);
        let (third, _) = prepared.total().div_rem(&Nat::from(3u64));
        let (half, _) = prepared.total().div_rem(&Nat::from(2u64));
        for start in [Nat::zero(), third, half] {
            let page: Vec<_> = prepared.enumerate_from(start).take(16).collect();
            assert_eq!(page.len(), 16);
        }
        let amortized = t0.elapsed() / BATCH as u32;
        assert_eq!(batch.len(), BATCH);
        assert_eq!(
            plansample_optimizer::thread_optimizations_performed() - before,
            1,
            "{label}: 1000 samples + 3 pages must optimize exactly once"
        );
        assert_eq!(per_call, *prepared.total());

        let speedup = rebuild.as_secs_f64() / amortized.as_secs_f64().max(1e-12);
        println!(
            "prepared/{label}: per-call rebuild {:.2?} vs amortized per-sample {:.2?} \
             ({speedup:.0}x; {:.0} plans/sec incl. one-time prepare)",
            rebuild,
            amortized,
            1.0 / amortized.as_secs_f64().max(1e-12),
        );
        assert!(
            speedup >= 100.0,
            "{label}: amortized per-sample cost must be >= 100x cheaper than \
             per-call count_plans; measured {speedup:.1}x"
        );
    }
}

criterion_group!(benches, bench_prepared);
criterion_main!(benches);
