//! Complete execution plans extracted from the MEMO.
//!
//! A [`PlanNode`] tree references memo expressions by [`PhysId`]; it is
//! what unranking assembles (§3.3) and what the executor lowers to a
//! runnable pipeline. [`validate_plan`] checks the structural and
//! physical-property invariants every extracted plan must satisfy — the
//! paper's testing methodology ("are the alternatives considered really
//! valid execution plans?") made machine-checkable.

use crate::{satisfies_cols, Memo, PhysId, Requirement};
use plansample_query::QuerySpec;
use std::fmt::Write as _;

/// A node of a fully assembled physical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// The memo expression this node instantiates.
    pub id: PhysId,
    /// Chosen children, one per child slot, in slot order.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// A leaf node.
    pub fn leaf(id: PhysId) -> Self {
        PlanNode {
            id,
            children: Vec::new(),
        }
    }

    /// Number of operators in the plan.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PlanNode::size).sum::<usize>()
    }

    /// Total plan cost: the sum of the local costs of all operators
    /// (local costs are fixed per memo expression, see
    /// [`crate::PhysicalExpr::local_cost`]).
    pub fn total_cost(&self, memo: &Memo) -> f64 {
        memo.phys(self.id).local_cost
            + self
                .children
                .iter()
                .map(|c| c.total_cost(memo))
                .sum::<f64>()
    }

    /// Bytes of memory held by this plan tree (inline node plus the heap
    /// behind every child vector, capacity-accurate). The root node's own
    /// inline size is included, so the result is the full footprint of an
    /// owned plan.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.heap_bytes()
    }

    fn heap_bytes(&self) -> usize {
        self.children.capacity() * std::mem::size_of::<Self>()
            + self
                .children
                .iter()
                .map(PlanNode::heap_bytes)
                .sum::<usize>()
    }

    /// All operator ids in pre-order (root first) — the paper's appendix
    /// reports unranked plans this way ("we unranked the operators 7.7,
    /// 4.3, 3.4, 2.3, and 1.3").
    pub fn preorder_ids(&self) -> Vec<PhysId> {
        let mut out = Vec::with_capacity(self.size());
        self.collect_preorder(&mut out);
        out
    }

    fn collect_preorder(&self, out: &mut Vec<PhysId>) {
        out.push(self.id);
        for c in &self.children {
            c.collect_preorder(out);
        }
    }

    /// Indented multi-line rendering, e.g. for examples and debugging.
    pub fn render(&self, memo: &Memo) -> String {
        let mut out = String::new();
        self.render_into(memo, 0, &mut out);
        out
    }

    fn render_into(&self, memo: &Memo, depth: usize, out: &mut String) {
        let expr = memo.phys(self.id);
        let _ = writeln!(
            out,
            "{:indent$}{} [{}] cost={:.1} rows={:.0}",
            "",
            expr.op.name(),
            self.id,
            expr.local_cost,
            expr.out_card,
            indent = depth * 2
        );
        for c in &self.children {
            c.render_into(memo, depth + 1, out);
        }
    }
}

/// A violation found by [`validate_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanViolation {
    /// A node's child count differs from its operator's slot count.
    WrongArity {
        /// Offending node.
        node: PhysId,
        /// Slots the operator declares.
        expected: usize,
        /// Children the node has.
        actual: usize,
    },
    /// A child comes from a different group than its slot demands.
    WrongChildGroup {
        /// Offending node.
        node: PhysId,
        /// Slot position.
        slot: usize,
        /// Group the slot demands.
        expected: crate::GroupId,
        /// Group the child is from.
        actual: crate::GroupId,
    },
    /// A child does not deliver the physical property its slot requires.
    PropertyViolated {
        /// Offending node.
        node: PhysId,
        /// Slot position.
        slot: usize,
    },
    /// An enforcer's child is itself an enforcer, or already satisfies
    /// the enforcer's target (a redundant sort the space must not contain).
    RedundantEnforcerInput {
        /// Offending enforcer node.
        node: PhysId,
    },
}

/// Checks that `plan` is a well-formed physical plan over `memo`:
/// arities match, children come from the demanded groups, and every
/// required physical property is delivered.
pub fn validate_plan(memo: &Memo, query: &QuerySpec, plan: &PlanNode) -> Vec<PlanViolation> {
    let mut violations = Vec::new();
    validate_node(memo, query, plan, &mut violations);
    violations
}

fn validate_node(
    memo: &Memo,
    query: &QuerySpec,
    node: &PlanNode,
    violations: &mut Vec<PlanViolation>,
) {
    let expr = memo.phys(node.id);
    let slots = expr.child_slots(node.id.group);
    if slots.len() != node.children.len() {
        violations.push(PlanViolation::WrongArity {
            node: node.id,
            expected: slots.len(),
            actual: node.children.len(),
        });
        return;
    }
    for (i, (slot, child)) in slots.iter().zip(&node.children).enumerate() {
        if child.id.group != slot.group {
            violations.push(PlanViolation::WrongChildGroup {
                node: node.id,
                slot: i,
                expected: slot.group,
                actual: child.id.group,
            });
            continue;
        }
        let child_expr = memo.phys(child.id);
        let scope = memo.group(child.id.group).scope(query);
        match &slot.requirement {
            Requirement::Order(required) => {
                if !satisfies_cols(query, scope, child_expr.delivered_cols(), required) {
                    violations.push(PlanViolation::PropertyViolated {
                        node: node.id,
                        slot: i,
                    });
                }
            }
            Requirement::SortInput { target } => {
                if child_expr.op.is_enforcer()
                    || satisfies_cols(query, scope, child_expr.delivered_cols(), target)
                {
                    violations.push(PlanViolation::RedundantEnforcerInput { node: node.id });
                }
            }
        }
        validate_node(memo, query, child, violations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GroupKey, PhysicalExpr, PhysicalOp, SortOrder};
    use plansample_catalog::{table, Catalog, ColType};
    use plansample_query::{ColRef, QueryBuilder, RelId, RelSet};

    /// Two relations, one edge; groups {a}, {b}, {a,b}.
    fn setup() -> (Catalog, QuerySpec, Memo) {
        let mut cat = Catalog::new();
        cat.add_table(table("a", 10).col("x", ColType::Int, 10).build())
            .unwrap();
        cat.add_table(table("b", 20).col("y", ColType::Int, 10).build())
            .unwrap();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("a", None).unwrap();
        qb.rel("b", None).unwrap();
        qb.join(("a", "x"), ("b", "y")).unwrap();
        let q = qb.build().unwrap();

        let mut memo = Memo::new();
        let ga = memo.add_group(GroupKey::Rels(RelSet::singleton(RelId(0))));
        let gb = memo.add_group(GroupKey::Rels(RelSet::singleton(RelId(1))));
        let gab = memo.add_group(GroupKey::Rels(RelSet::all(2)));
        memo.add_physical(
            ga,
            PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(0) }, 10.0, 10.0),
        )
        .unwrap();
        memo.add_physical(
            gb,
            PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(1) }, 20.0, 20.0),
        )
        .unwrap();
        memo.add_physical(
            gab,
            PhysicalExpr::new(
                PhysicalOp::HashJoin {
                    left: ga,
                    right: gb,
                },
                35.0,
                20.0,
            ),
        )
        .unwrap();
        memo.set_root(gab);
        (cat, q, memo)
    }

    fn pid(g: u32, i: usize) -> PhysId {
        PhysId {
            group: crate::GroupId(g),
            index: i,
        }
    }

    #[test]
    fn valid_plan_passes() {
        let (_cat, q, memo) = setup();
        let plan = PlanNode {
            id: pid(2, 0),
            children: vec![PlanNode::leaf(pid(0, 0)), PlanNode::leaf(pid(1, 0))],
        };
        assert!(validate_plan(&memo, &q, &plan).is_empty());
        assert_eq!(plan.size(), 3);
        assert_eq!(plan.total_cost(&memo), 65.0);
        assert_eq!(plan.preorder_ids(), vec![pid(2, 0), pid(0, 0), pid(1, 0)]);
    }

    #[test]
    fn wrong_arity_detected() {
        let (_cat, q, memo) = setup();
        let plan = PlanNode {
            id: pid(2, 0),
            children: vec![PlanNode::leaf(pid(0, 0))],
        };
        assert!(matches!(
            validate_plan(&memo, &q, &plan)[0],
            PlanViolation::WrongArity {
                expected: 2,
                actual: 1,
                ..
            }
        ));
    }

    #[test]
    fn wrong_child_group_detected() {
        let (_cat, q, memo) = setup();
        let plan = PlanNode {
            id: pid(2, 0),
            children: vec![PlanNode::leaf(pid(1, 0)), PlanNode::leaf(pid(1, 0))],
        };
        assert!(matches!(
            validate_plan(&memo, &q, &plan)[0],
            PlanViolation::WrongChildGroup { slot: 0, .. }
        ));
    }

    #[test]
    fn property_violation_detected() {
        let (_cat, q, mut memo) = setup();
        // Add a merge join requiring sorted inputs; table scans are not.
        let ga = crate::GroupId(0);
        let gb = crate::GroupId(1);
        let key_a = ColRef {
            rel: RelId(0),
            col: 0,
        };
        let key_b = ColRef {
            rel: RelId(1),
            col: 0,
        };
        let mj = memo
            .add_physical(
                crate::GroupId(2),
                PhysicalExpr::new(
                    PhysicalOp::MergeJoin {
                        left: ga,
                        right: gb,
                        left_key: key_a,
                        right_key: key_b,
                    },
                    30.0,
                    20.0,
                ),
            )
            .unwrap();
        let plan = PlanNode {
            id: mj,
            children: vec![PlanNode::leaf(pid(0, 0)), PlanNode::leaf(pid(1, 0))],
        };
        let violations = validate_plan(&memo, &q, &plan);
        assert_eq!(violations.len(), 2, "both inputs unsorted: {violations:?}");
        assert!(matches!(
            violations[0],
            PlanViolation::PropertyViolated { slot: 0, .. }
        ));
    }

    #[test]
    fn redundant_enforcer_input_detected() {
        let (_cat, q, mut memo) = setup();
        let ga = crate::GroupId(0);
        let key_a = ColRef {
            rel: RelId(0),
            col: 0,
        };
        let target = SortOrder::on_col(key_a);
        let sort = memo
            .add_physical(
                ga,
                PhysicalExpr::new(
                    PhysicalOp::Sort {
                        target: target.clone(),
                    },
                    5.0,
                    10.0,
                ),
            )
            .unwrap();
        // Sort over Sort: enforcer input is an enforcer.
        let plan = PlanNode {
            id: sort,
            children: vec![PlanNode {
                id: sort,
                children: vec![PlanNode::leaf(pid(0, 0))],
            }],
        };
        let violations = validate_plan(&memo, &q, &plan);
        assert!(violations
            .iter()
            .any(|v| matches!(v, PlanViolation::RedundantEnforcerInput { .. })));
    }

    #[test]
    fn render_contains_operator_names() {
        let (_cat, _q, memo) = setup();
        let plan = PlanNode {
            id: pid(2, 0),
            children: vec![PlanNode::leaf(pid(0, 0)), PlanNode::leaf(pid(1, 0))],
        };
        let text = plan.render(&memo);
        assert!(text.contains("HashJoin"));
        assert!(text.contains("TableScan"));
        // group ids are 0-based, expression indices 1-based (paper style)
        assert!(text.contains("[2.1]"));
    }
}
