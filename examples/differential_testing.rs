//! §4 differential testing: execute many plans of the same query and
//! compare results.
//!
//! Small spaces are validated exhaustively; large ones by uniform
//! sampling ("when the space of alternatives becomes too large for
//! exhaustive testing … uniform random sampling provides a mechanism
//! for unbiased testing").
//!
//! ```text
//! cargo run --release --example differential_testing
//! ```

use plansample::PreparedQuery;
use plansample_datagen::MicroScale;
use plansample_optimizer::OptimizerConfig;
use plansample_query::QueryBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (catalog, tables) = plansample_catalog::tpch::catalog();
    // Enough orders that Q5's one-year/one-region/same-nation filters
    // leave a non-empty result — an empty reference would make the
    // differential oracle vacuous.
    let scale = MicroScale {
        suppliers: 50,
        customers: 75,
        parts: 60,
        partsupp_per_part: 2,
        orders: 600,
        max_lines_per_order: 4,
    };
    let db = plansample_datagen::generate(&catalog, &tables, &scale, 99);
    let config = OptimizerConfig::default();

    // --- exhaustive mode on a small space -------------------------------
    let mut qb = QueryBuilder::new(&catalog);
    qb.rel("nation", Some("n")).unwrap();
    qb.rel("region", Some("r")).unwrap();
    qb.join(("n", "n_regionkey"), ("r", "r_regionkey")).unwrap();
    let small = qb.build().unwrap();

    let prepared = PreparedQuery::prepare(&catalog, &small, &config).unwrap();
    let report = prepared
        .space()
        .validate_exhaustive(&catalog, &db, usize::MAX)
        .expect("execution succeeds");
    println!("nation ⋈ region (exhaustive): {report}");
    assert!(report.all_passed());

    // --- sampled mode on the TPC-H Q5 space -----------------------------
    let q5 = plansample_query::tpch::q5(&catalog);
    let prepared = PreparedQuery::prepare(&catalog, &q5, &config).unwrap();
    println!(
        "\nTPC-H Q5: {} plans — far too many to enumerate; sampling instead",
        prepared.total()
    );
    let mut rng = StdRng::seed_from_u64(4);
    let report = prepared
        .space()
        .validate_sampled(&catalog, &db, 200, &mut rng)
        .expect("execution succeeds");
    println!("TPC-H Q5 (200 uniform samples): {report}");
    assert!(report.all_passed());
    assert!(
        report.reference_rows > 0,
        "reference must be non-empty for a meaningful oracle"
    );

    // --- what a failure looks like --------------------------------------
    println!(
        "\nif any plan had produced a different result, the report would name its \
         plan number, reproducible exactly via `OPTION (USEPLAN n)` — \"either the \
         optimizer considered an invalid plan, or the execution code is faulty\"."
    );
}
