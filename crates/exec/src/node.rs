//! [`ExecNode`]: a self-contained executable plan tree.
//!
//! All name/column resolution has already happened: filters, join keys,
//! sort keys, and aggregate arguments are *offsets* into the row layout
//! their child produces. Lowering from memo plans to this representation
//! lives in the `plansample` core crate (`plansample::lower`), keeping
//! this engine independent of the optimizer — it can execute any
//! well-formed tree, which is what a testing engine must do.

use plansample_catalog::{Datum, TableId};
use plansample_query::{AggFunc, CmpOp};

/// A compiled single-column predicate: `row[offset] op value`.
#[derive(Debug, Clone)]
pub struct ColFilter {
    /// Column offset within the operator's row layout.
    pub offset: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: Datum,
}

impl ColFilter {
    /// Evaluates against a row.
    pub fn matches(&self, row: &[Datum]) -> bool {
        self.op.eval(&row[self.offset], &self.value)
    }
}

/// Which input a copied segment comes from when assembling join output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left child's row.
    Left,
    /// The right child's row.
    Right,
}

/// Join bookkeeping shared by all join operators.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Equality predicates as `(left_offset, right_offset)` pairs.
    /// Empty for a pure cross product.
    pub eq_pairs: Vec<(usize, usize)>,
    /// Output assembly: copy `len` columns starting at `offset` from
    /// `side`, in order. Produces the canonical (ascending-relation)
    /// layout regardless of join order.
    pub assemble: Vec<(Side, usize, usize)>,
}

impl JoinSpec {
    /// Do `left` and `right` rows satisfy all equality predicates?
    pub fn pairs_match(&self, left: &[Datum], right: &[Datum]) -> bool {
        self.eq_pairs.iter().all(|&(l, r)| left[l] == right[r])
    }

    /// Assembles the output row.
    pub fn assemble_row(&self, left: &[Datum], right: &[Datum]) -> Vec<Datum> {
        let mut out = Vec::with_capacity(self.assemble.iter().map(|&(_, _, len)| len).sum());
        for &(side, offset, len) in &self.assemble {
            let src = match side {
                Side::Left => left,
                Side::Right => right,
            };
            out.extend_from_slice(&src[offset..offset + len]);
        }
        out
    }
}

/// A compiled aggregate expression.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Offset of the argument column; `None` only for `COUNT(*)`.
    pub arg: Option<usize>,
}

/// A physical plan ready for execution.
#[derive(Debug, Clone)]
pub enum ExecNode {
    /// Heap scan with pushed-down filters; row order unspecified.
    TableScan {
        /// Which stored table.
        table: TableId,
        /// Pushed-down predicates (offsets within the base table row).
        filters: Vec<ColFilter>,
    },
    /// Ordered scan: rows sorted by `sort_col` (then by full row for
    /// determinism), filters applied.
    IndexScan {
        /// Which stored table.
        table: TableId,
        /// The indexed column ordinal.
        sort_col: usize,
        /// Pushed-down predicates.
        filters: Vec<ColFilter>,
    },
    /// Sorts the input by the given column offsets (lexicographic).
    Sort {
        /// Input plan.
        input: Box<ExecNode>,
        /// Sort key offsets, major first.
        keys: Vec<usize>,
    },
    /// Tuple-at-a-time nested loops with arbitrary equality predicates
    /// (or none: cross product).
    NestedLoopJoin {
        /// Outer input.
        left: Box<ExecNode>,
        /// Inner input.
        right: Box<ExecNode>,
        /// Predicates and output assembly.
        spec: JoinSpec,
    },
    /// Builds a hash table on the left input keyed by all equality
    /// columns, probes with the right.
    HashJoin {
        /// Build input.
        left: Box<ExecNode>,
        /// Probe input.
        right: Box<ExecNode>,
        /// Predicates (must be non-empty) and output assembly.
        spec: JoinSpec,
    },
    /// Merges two inputs sorted on `left_key`/`right_key`; other
    /// equality predicates in `spec` are applied as residuals.
    /// **Trusts** its inputs to be sorted — an invalid plan yields wrong
    /// results rather than an error, by design.
    MergeJoin {
        /// Left (sorted) input.
        left: Box<ExecNode>,
        /// Right (sorted) input.
        right: Box<ExecNode>,
        /// Merge key offset in the left layout.
        left_key: usize,
        /// Merge key offset in the right layout.
        right_key: usize,
        /// All predicates (incl. the merge key pair) and assembly.
        spec: JoinSpec,
    },
    /// Hash-based grouping; output rows are `group values ++ aggregates`.
    HashAgg {
        /// Input plan.
        input: Box<ExecNode>,
        /// Group-key offsets.
        group: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Streaming grouping over runs of equal keys. **Trusts** the input
    /// to arrive grouped; unsorted input yields fragmented groups.
    StreamAgg {
        /// Input plan.
        input: Box<ExecNode>,
        /// Group-key offsets.
        group: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Column projection.
    Project {
        /// Input plan.
        input: Box<ExecNode>,
        /// Offsets to keep, in output order.
        cols: Vec<usize>,
    },
}

impl ExecNode {
    /// Number of operators in the tree (for reporting).
    pub fn size(&self) -> usize {
        1 + match self {
            ExecNode::TableScan { .. } | ExecNode::IndexScan { .. } => 0,
            ExecNode::Sort { input, .. }
            | ExecNode::HashAgg { input, .. }
            | ExecNode::StreamAgg { input, .. }
            | ExecNode::Project { input, .. } => input.size(),
            ExecNode::NestedLoopJoin { left, right, .. }
            | ExecNode::HashJoin { left, right, .. }
            | ExecNode::MergeJoin { left, right, .. } => left.size() + right.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_catalog::Datum::Int;

    #[test]
    fn filter_matches() {
        let f = ColFilter {
            offset: 1,
            op: CmpOp::Ge,
            value: Int(5),
        };
        assert!(f.matches(&[Int(0), Int(5)]));
        assert!(!f.matches(&[Int(9), Int(4)]));
    }

    #[test]
    fn join_spec_pairs_and_assembly() {
        let spec = JoinSpec {
            eq_pairs: vec![(0, 1)],
            assemble: vec![(Side::Right, 0, 2), (Side::Left, 0, 1)],
        };
        let l = [Int(7)];
        let r = [Int(3), Int(7)];
        assert!(spec.pairs_match(&l, &r));
        assert_eq!(spec.assemble_row(&l, &r), vec![Int(3), Int(7), Int(7)]);
        let r2 = [Int(3), Int(8)];
        assert!(!spec.pairs_match(&l, &r2));
    }

    #[test]
    fn cross_product_spec_always_matches() {
        let spec = JoinSpec {
            eq_pairs: vec![],
            assemble: vec![(Side::Left, 0, 1), (Side::Right, 0, 1)],
        };
        assert!(spec.pairs_match(&[Int(1)], &[Int(2)]));
    }

    #[test]
    fn node_size() {
        let scan = ExecNode::TableScan {
            table: TableId(0),
            filters: vec![],
        };
        let sort = ExecNode::Sort {
            input: Box::new(scan.clone()),
            keys: vec![0],
        };
        let join = ExecNode::NestedLoopJoin {
            left: Box::new(sort),
            right: Box::new(scan),
            spec: JoinSpec {
                eq_pairs: vec![],
                assemble: vec![],
            },
        };
        assert_eq!(join.size(), 4);
    }
}
