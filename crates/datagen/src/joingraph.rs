//! Synthetic join-graph generator for statistical validation.
//!
//! The paper evaluates on four TPC-H queries; validating the sampler's
//! *uniformity* on only two hand-picked spaces leaves most of the
//! structural variety untested. This module manufactures join queries of
//! the four canonical graph shapes at parameterized sizes:
//!
//! - **chain**: `r0 — r1 — … — r(n−1)`, the sparsest connected graph
//!   (only contiguous sub-plans exist without Cartesian products);
//! - **star**: a hub `r0` joined to every spoke, the data-warehouse
//!   shape;
//! - **cycle**: a chain closed back on itself, the smallest graph with
//!   redundant join paths;
//! - **clique**: every pair joined — join-order freedom like enabling
//!   Cartesian products, so plan counts explode fastest (a 9-relation
//!   clique already needs multiple `u64` limbs).
//!
//! Table statistics (row counts, distinct values, index availability)
//! are drawn deterministically from a seed, so every generated space is
//! reproducible yet structurally "random" — the property the
//! rank/unrank bijection and uniform-sampling test suites quantify over.

use plansample_catalog::{table, Catalog, ColType};
use plansample_query::{QueryBuilder, QuerySpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a synthetic join graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// `r0 — r1 — … — r(n−1)`.
    Chain,
    /// Hub `r0` joined to every other relation.
    Star,
    /// Chain plus the closing edge `r(n−1) — r0`.
    Cycle,
    /// Every pair of relations joined.
    Clique,
}

impl Topology {
    /// All four shapes, for sweeps.
    pub const ALL: [Topology; 4] = [
        Topology::Chain,
        Topology::Star,
        Topology::Cycle,
        Topology::Clique,
    ];

    /// Lower-case name for labels and test output.
    pub fn name(self) -> &'static str {
        match self {
            Topology::Chain => "chain",
            Topology::Star => "star",
            Topology::Cycle => "cycle",
            Topology::Clique => "clique",
        }
    }

    /// The join edges of this shape over `n` relations, as index pairs.
    ///
    /// # Panics
    /// Panics when `n < 2` (no join graph) or on a cycle with `n < 3`
    /// (a 2-cycle would duplicate the chain edge).
    pub fn edges(self, n: usize) -> Vec<(usize, usize)> {
        assert!(n >= 2, "a join graph needs at least 2 relations");
        match self {
            Topology::Chain => (0..n - 1).map(|i| (i, i + 1)).collect(),
            Topology::Star => (1..n).map(|i| (0, i)).collect(),
            Topology::Cycle => {
                assert!(n >= 3, "a cycle needs at least 3 relations");
                (0..n).map(|i| (i, (i + 1) % n)).collect()
            }
            Topology::Clique => (0..n)
                .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
                .collect(),
        }
    }
}

/// A reproducible synthetic join query: topology, size, and the seed
/// that fixes all table statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinGraphSpec {
    /// Graph shape.
    pub topology: Topology,
    /// Number of relations (`>= 2`; cycles need `>= 3`).
    pub relations: usize,
    /// Seed for row counts, NDVs, and index placement.
    pub seed: u64,
}

impl JoinGraphSpec {
    /// Convenience constructor.
    pub fn new(topology: Topology, relations: usize, seed: u64) -> Self {
        JoinGraphSpec {
            topology,
            relations,
            seed,
        }
    }

    /// A label like `"chain-6#42"` for test diagnostics.
    pub fn label(&self) -> String {
        format!("{}-{}#{}", self.topology.name(), self.relations, self.seed)
    }

    /// The join edges of this spec.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.topology.edges(self.relations)
    }

    /// Materializes the catalog (tables `r0 … r(n−1)`, each with a join
    /// key `k` and payload `v`) and the join query. Deterministic in
    /// every field of the spec.
    pub fn build(&self) -> (Catalog, QuerySpec) {
        // Mix the topology and size into the stream so specs differing
        // only in shape do not share statistics.
        let mix = (self.relations as u64) << 8 | self.topology as u64;
        let mut rng = StdRng::seed_from_u64(self.seed ^ mix.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut catalog = Catalog::new();
        for i in 0..self.relations {
            let rows = 10u64.pow(rng.gen_range(1..=5)) * rng.gen_range(1..=9);
            let ndv = rows.div_ceil(rng.gen_range(1..=10)).max(1);
            let mut b = table(&format!("r{i}"), rows)
                .col("k", ColType::Int, ndv)
                .col("v", ColType::Int, rows.div_ceil(2).max(1));
            if rng.gen_bool(0.5) {
                b = b.index_on(0);
            }
            catalog.add_table(b.build()).unwrap();
        }
        let query = {
            let mut qb = QueryBuilder::new(&catalog);
            for i in 0..self.relations {
                qb.rel(&format!("r{i}"), None).unwrap();
            }
            for (a, b) in self.edges() {
                qb.join((&format!("r{a}"), "k"), (&format!("r{b}"), "k"))
                    .unwrap();
            }
            qb.build().unwrap()
        };
        (catalog, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_counts_per_topology() {
        for n in [3usize, 5, 8] {
            assert_eq!(Topology::Chain.edges(n).len(), n - 1);
            assert_eq!(Topology::Star.edges(n).len(), n - 1);
            assert_eq!(Topology::Cycle.edges(n).len(), n);
            assert_eq!(Topology::Clique.edges(n).len(), n * (n - 1) / 2);
        }
    }

    #[test]
    fn edges_connect_the_graph() {
        // Union-find-free connectivity check: BFS from 0 reaches all.
        for topo in Topology::ALL {
            let n = 6;
            let edges = topo.edges(n);
            let mut reached = vec![false; n];
            reached[0] = true;
            for _ in 0..n {
                for &(a, b) in &edges {
                    if reached[a] || reached[b] {
                        reached[a] = true;
                        reached[b] = true;
                    }
                }
            }
            assert!(reached.iter().all(|&r| r), "{} disconnected", topo.name());
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_relation_graph_rejected() {
        Topology::Chain.edges(1);
    }

    #[test]
    #[should_panic(expected = "cycle needs at least 3")]
    fn two_cycle_rejected() {
        Topology::Cycle.edges(2);
    }

    #[test]
    fn build_produces_resolved_query() {
        let spec = JoinGraphSpec::new(Topology::Star, 5, 7);
        let (catalog, query) = spec.build();
        assert_eq!(query.relations.len(), 5);
        assert_eq!(query.join_edges.len(), 4);
        for edge in &query.join_edges {
            assert!(edge.selectivity > 0.0 && edge.selectivity <= 1.0);
        }
        for rel in &query.relations {
            assert!(catalog.table(rel.table).row_count >= 10);
        }
    }

    #[test]
    fn build_is_deterministic_in_the_spec() {
        let a = JoinGraphSpec::new(Topology::Cycle, 4, 99).build();
        let b = JoinGraphSpec::new(Topology::Cycle, 4, 99).build();
        assert_eq!(format!("{:?}", a.1), format!("{:?}", b.1));
        let rows_a: Vec<u64> = (0..4)
            .map(|i| a.0.table_by_name(&format!("r{i}")).unwrap().1.row_count)
            .collect();
        let rows_b: Vec<u64> = (0..4)
            .map(|i| b.0.table_by_name(&format!("r{i}")).unwrap().1.row_count)
            .collect();
        assert_eq!(rows_a, rows_b);
    }

    #[test]
    fn seed_and_topology_change_the_statistics() {
        let rows = |spec: JoinGraphSpec| -> Vec<u64> {
            let (cat, _) = spec.build();
            (0..spec.relations)
                .map(|i| cat.table_by_name(&format!("r{i}")).unwrap().1.row_count)
                .collect()
        };
        let base = rows(JoinGraphSpec::new(Topology::Chain, 4, 1));
        assert_ne!(base, rows(JoinGraphSpec::new(Topology::Chain, 4, 2)));
        assert_ne!(base, rows(JoinGraphSpec::new(Topology::Star, 4, 1)));
    }

    #[test]
    fn labels_are_unique_per_spec() {
        let a = JoinGraphSpec::new(Topology::Chain, 4, 1).label();
        let b = JoinGraphSpec::new(Topology::Star, 4, 1).label();
        assert_eq!(a, "chain-4#1");
        assert_ne!(a, b);
    }
}
