//! A small blocking client for the wire protocol.
//!
//! Used by the load generator and the test suites; also the reference
//! for third-party implementations (the protocol is fully specified by
//! `wire.rs` + `docs/DESIGN.md` §9). The client supports both
//! call/response ([`Client::call`]) and explicit pipelining
//! ([`Client::send`] / [`Client::recv`]); responses are matched to
//! requests by id.

use crate::wire::{self, Request, Response, WireError};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes did not decode.
    Wire(WireError),
    /// The connection closed before a full response arrived.
    Closed,
    /// A response arrived for an id this client never sent (protocol
    /// confusion; gives up rather than guessing).
    UnexpectedId(u64),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::UnexpectedId(id) => write!(f, "response for unknown request id {id}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One blocking connection to a plan server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    rbuf: Vec<u8>,
    next_id: u64,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            rbuf: Vec::new(),
            next_id: 1,
        })
    }

    /// Bounds how long [`Client::recv`] blocks waiting for bytes.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request and returns its id (pipelining half).
    pub fn send(&mut self, request: &Request) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = request.encode(id);
        self.stream.write_all(&wire::frame(&payload))?;
        Ok(id)
    }

    /// Receives the next response frame `(request_id, response)`.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        loop {
            match wire::split_frame(&self.rbuf)? {
                Some((payload, consumed)) => {
                    let decoded = Response::decode(payload)?;
                    self.rbuf.drain(..consumed);
                    return Ok(decoded);
                }
                None => {
                    let mut chunk = [0u8; 16 * 1024];
                    match self.stream.read(&mut chunk) {
                        Ok(0) => return Err(ClientError::Closed),
                        Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(ClientError::Io(e)),
                    }
                }
            }
        }
    }

    /// Sends one request and blocks for its response.
    ///
    /// Responses for other ids arriving first (from earlier pipelined
    /// sends whose replies were not collected) are an error — `call`
    /// and `send`/`recv` are not meant to be interleaved.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.send(request)?;
        let (got, response) = self.recv()?;
        if got != id {
            return Err(ClientError::UnexpectedId(got));
        }
        Ok(response)
    }
}
