//! Persistent plan-space artifacts: a versioned on-disk format for
//! [`PreparedQuery`] and a directory store keyed by normalized query +
//! optimizer-config fingerprint.
//!
//! The paper's value proposition is *compute once, reuse many times*:
//! the MEMO is populated and counted once, then every count / unrank /
//! sample is cheap. Until now that state died with the process — every
//! serve-fleet restart re-optimized and re-counted (clique-10: seconds
//! and ~700k expressions per process). This crate makes the prepared
//! state durable:
//!
//! * [`encode`] / [`decode`] turn a [`PreparedQuery`] into a
//!   self-contained byte image and back. The format (see [`mod@format`] and
//!   docs/DESIGN.md §10) is sectioned — query, optimizer config, memo
//!   tables, CSR link arrays, count limbs, best plan — with per-section
//!   and whole-file checksums and 8-byte alignment so the flat
//!   `u32`/`u64` tables PR 4 already produced reload as bulk copies.
//! * [`save`] / [`load`] are the file-level pair; `save` publishes
//!   atomically (write to a temp file in the same directory, then
//!   rename) so readers never observe a half-written artifact.
//! * [`ArtifactStore`] is a directory of artifacts addressed by the
//!   *same* normalized fingerprint [`plansample_core::cache_key`] uses,
//!   so a store entry and a service cache entry agree byte for byte. It
//!   quarantines corrupt or stale entries instead of serving them and
//!   warms a [`plansample_core::PlanService`] at startup.
//!
//! Decoding is *hostile-input safe*: every read is bounds-checked and
//! every structural invariant re-validated (`Memo::from_parts`,
//! `Links::from_parts`, …), so a truncated, bit-flipped, or adversarial
//! file surfaces as a typed [`ArtifactError`] — never UB, never a
//! panic. The correctness contract is round-trip *bit identity*: a
//! loaded artifact answers `total`/`unrank`/`sample_batch`/`best`
//! byte-identically to the one that was saved (asserted by the
//! workspace round-trip suites and the serving smoke test).

#![warn(missing_docs)]

mod codec;
pub mod format;
mod store;

pub use format::{
    decode, encode, inspect, load, save, Inspection, SectionInfo, FORMAT_VERSION, MAGIC,
};
pub use store::{ArtifactStore, WarmReport};

use plansample_core::SpaceError;
use std::fmt;

#[cfg(doc)]
use plansample_core::PreparedQuery;

/// Why an artifact could not be read (or written). Every decode failure
/// is typed — hostile bytes can select *which* error they get, never
/// whether they get one.
#[derive(Debug)]
pub enum ArtifactError {
    /// The file does not start with [`MAGIC`] — not an artifact at all.
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`]. Artifacts are not
    /// migrated in place; re-prepare and re-save (docs/DESIGN.md §10).
    VersionMismatch {
        /// The version the file declares.
        found: u32,
    },
    /// A checksum did not match its bytes: the file was corrupted after
    /// it was written (or tampered with).
    ChecksumMismatch {
        /// Which checksum failed: a section name, or `"file"` for the
        /// whole-file checksum.
        section: &'static str,
    },
    /// The file ended before the data it declares — a cut-short
    /// download, a section table pointing past EOF, or a length prefix
    /// larger than its section.
    Truncated {
        /// What was being read when the bytes ran out.
        detail: String,
    },
    /// The bytes decode but do not describe a plan space — duplicate
    /// group keys, non-monotonic CSR bounds, out-of-range ids, a
    /// fingerprint that disagrees with the content, and so on.
    Malformed {
        /// The first violated invariant.
        reason: String,
    },
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "not a plan-space artifact (bad magic)"),
            ArtifactError::VersionMismatch { found } => write!(
                f,
                "artifact format version {found} is not the supported version {FORMAT_VERSION}"
            ),
            ArtifactError::ChecksumMismatch { section } => {
                write!(f, "artifact {section} checksum mismatch (corrupt file)")
            }
            ArtifactError::Truncated { detail } => write!(f, "artifact truncated: {detail}"),
            ArtifactError::Malformed { reason } => write!(f, "artifact malformed: {reason}"),
            ArtifactError::Io(e) => write!(f, "artifact i/o error: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<SpaceError> for ArtifactError {
    fn from(e: SpaceError) -> Self {
        ArtifactError::Malformed {
            reason: e.to_string(),
        }
    }
}

/// Fast non-cryptographic 64-bit checksum (word-at-a-time
/// multiply-rotate, FxHash-style). Detects the corruption classes that
/// matter for storage — truncation, bit flips, swapped blocks — at
/// memory-bandwidth speed; it makes no adversarial-collision claims
/// (an attacker who can rewrite the artifact can rewrite its checksums
/// too, which is why the *decoder* revalidates every structural
/// invariant).
pub fn checksum(bytes: &[u8]) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut h = 0x9e37_79b9_7f4a_7c15_u64 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h ^ u64::from_le_bytes(c.try_into().unwrap()))
            .rotate_left(5)
            .wrapping_mul(K);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail))
            .rotate_left(5)
            .wrapping_mul(K);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_sees_every_byte() {
        let base: Vec<u8> = (0..100u8).collect();
        let reference = checksum(&base);
        assert_eq!(checksum(&base), reference, "deterministic");
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 1;
            assert_ne!(checksum(&flipped), reference, "flip at {i} undetected");
        }
        assert_ne!(checksum(&base[..99]), reference, "truncation undetected");
        assert_ne!(checksum(&[]), checksum(&[0]), "length participates");
    }
}
