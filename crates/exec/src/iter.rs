//! Volcano-style pipelined execution: the open/next/close iterator
//! model of Graefe's Volcano — the engine architecture the paper's host
//! systems use ("execution iterators are tested in uncommon, but
//! possible configurations", §6).
//!
//! This is a second, independent implementation of every operator's
//! semantics. [`ExecNode::execute_pipelined`] must produce exactly the
//! same result multiset as the materialized [`ExecNode::execute`] for
//! every plan — which makes the two engines differential tests *of each
//! other*, on top of the plan-level differential testing the paper
//! performs. Property obligations carry over unchanged: `MergeJoin` and
//! `StreamAgg` trust their inputs' order and silently produce wrong
//! answers for invalid plans.
//!
//! Blocking operators (sort, hash build, hash aggregation) materialize
//! exactly what their algebra requires and nothing more; `StreamAgg`,
//! `Project`, scans, and the probe side of joins are fully streaming.

use crate::node::{AggSpec, ColFilter, ExecNode, JoinSpec};
use crate::run::Accumulators;
use crate::{Database, ExecError, Row, Table};
use plansample_catalog::Datum;
use std::collections::HashMap;

/// A Volcano-style operator: `open` prepares state, `next` yields one
/// row at a time, `close` releases state.
pub trait Operator {
    /// Prepares the operator (recursively opening children).
    fn open(&mut self) -> Result<(), ExecError>;
    /// Produces the next output row, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Row>, ExecError>;
    /// Releases operator state (recursively closing children).
    fn close(&mut self);
}

impl ExecNode {
    /// Compiles this plan into a pipelined operator tree.
    pub fn compile<'a>(&'a self, db: &'a Database) -> Result<Box<dyn Operator + 'a>, ExecError> {
        Ok(match self {
            ExecNode::TableScan { table, filters } => Box::new(ScanIter {
                rows: db.table(*table)?.rows(),
                filters,
                pos: 0,
                sort_col: None,
                order: Vec::new(),
            }),
            ExecNode::IndexScan {
                table,
                sort_col,
                filters,
            } => Box::new(ScanIter {
                rows: db.table(*table)?.rows(),
                filters,
                pos: 0,
                sort_col: Some(*sort_col),
                order: Vec::new(),
            }),
            ExecNode::Sort { input, keys } => Box::new(SortIter {
                input: input.compile(db)?,
                keys,
                buffer: Vec::new(),
                pos: 0,
            }),
            ExecNode::NestedLoopJoin { left, right, spec } => Box::new(NestedLoopIter {
                outer: left.compile(db)?,
                inner: right.compile(db)?,
                spec,
                inner_buffer: Vec::new(),
                current_outer: None,
                inner_pos: 0,
            }),
            ExecNode::HashJoin { left, right, spec } => Box::new(HashJoinIter {
                build: left.compile(db)?,
                probe: right.compile(db)?,
                spec,
                table: HashMap::new(),
                current_probe: None,
                match_pos: 0,
            }),
            ExecNode::MergeJoin {
                left,
                right,
                left_key,
                right_key,
                spec,
            } => Box::new(MergeJoinIter {
                left: left.compile(db)?,
                right: right.compile(db)?,
                left_key: *left_key,
                right_key: *right_key,
                spec,
                left_row: None,
                right_block: Vec::new(),
                next_right: None,
                left_started: false,
                block_pos: 0,
                left_block: Vec::new(),
                left_block_pos: 0,
            }),
            ExecNode::HashAgg { input, group, aggs } => Box::new(HashAggIter {
                input: input.compile(db)?,
                group,
                aggs,
                output: Vec::new(),
                pos: 0,
            }),
            ExecNode::StreamAgg { input, group, aggs } => Box::new(StreamAggIter {
                input: input.compile(db)?,
                group,
                aggs,
                current: None,
                done: false,
                emitted_any: false,
            }),
            ExecNode::Project { input, cols } => Box::new(ProjectIter {
                input: input.compile(db)?,
                cols,
            }),
        })
    }

    /// Runs the plan through the pipelined engine, draining into a table.
    pub fn execute_pipelined(&self, db: &Database) -> Result<Table, ExecError> {
        let width = self.output_width(db)?;
        let mut op = self.compile(db)?;
        op.open()?;
        let mut table = Table::new(width);
        while let Some(row) = op.next()? {
            if row.len() != width {
                return Err(ExecError::RowWidth {
                    row: table.len(),
                    expected: width,
                    actual: row.len(),
                });
            }
            table.push(row);
        }
        op.close();
        Ok(table)
    }

    /// Output width of this plan (columns per row).
    pub fn output_width(&self, db: &Database) -> Result<usize, ExecError> {
        Ok(match self {
            ExecNode::TableScan { table, .. } | ExecNode::IndexScan { table, .. } => {
                db.table(*table)?.width()
            }
            ExecNode::Sort { input, .. } => input.output_width(db)?,
            ExecNode::NestedLoopJoin { left, right, .. }
            | ExecNode::HashJoin { left, right, .. }
            | ExecNode::MergeJoin { left, right, .. } => {
                left.output_width(db)? + right.output_width(db)?
            }
            ExecNode::HashAgg { group, aggs, .. } | ExecNode::StreamAgg { group, aggs, .. } => {
                group.len() + aggs.len()
            }
            ExecNode::Project { cols, .. } => cols.len(),
        })
    }
}

/// Table / index scan. Index scans pre-compute a sorted visit order at
/// `open` (the sorted structure *is* the index); heap scans stream in
/// storage order.
struct ScanIter<'a> {
    rows: &'a [Row],
    filters: &'a [ColFilter],
    pos: usize,
    sort_col: Option<usize>,
    order: Vec<usize>,
}

impl Operator for ScanIter<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pos = 0;
        if let Some(col) = self.sort_col {
            if col >= self.rows.first().map_or(usize::MAX, Vec::len) && !self.rows.is_empty() {
                return Err(ExecError::OffsetOutOfRange {
                    offset: col,
                    width: self.rows[0].len(),
                });
            }
            let mut order: Vec<usize> = (0..self.rows.len()).collect();
            order.sort_by(|&a, &b| {
                self.rows[a][col]
                    .cmp(&self.rows[b][col])
                    .then_with(|| self.rows[a].cmp(&self.rows[b]))
            });
            self.order = order;
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>, ExecError> {
        loop {
            let idx = if self.sort_col.is_some() {
                match self.order.get(self.pos) {
                    Some(&i) => i,
                    None => return Ok(None),
                }
            } else {
                if self.pos >= self.rows.len() {
                    return Ok(None);
                }
                self.pos
            };
            self.pos += 1;
            let row = &self.rows[idx];
            if let Some(f) = self.filters.iter().find(|f| f.offset >= row.len()) {
                return Err(ExecError::OffsetOutOfRange {
                    offset: f.offset,
                    width: row.len(),
                });
            }
            if self.filters.iter().all(|f| f.matches(row)) {
                return Ok(Some(row.clone()));
            }
        }
    }

    fn close(&mut self) {
        self.order = Vec::new();
    }
}

/// Blocking sort: drains the child at `open`, then streams.
struct SortIter<'a> {
    input: Box<dyn Operator + 'a>,
    keys: &'a [usize],
    buffer: Vec<Row>,
    pos: usize,
}

impl Operator for SortIter<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.input.open()?;
        self.buffer.clear();
        self.pos = 0;
        while let Some(row) = self.input.next()? {
            if let Some(&k) = self.keys.iter().find(|&&k| k >= row.len()) {
                return Err(ExecError::OffsetOutOfRange {
                    offset: k,
                    width: row.len(),
                });
            }
            self.buffer.push(row);
        }
        self.input.close();
        let keys = self.keys;
        self.buffer.sort_by(|a, b| {
            keys.iter()
                .map(|&k| a[k].cmp(&b[k]))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or_else(|| a.cmp(b))
        });
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>, ExecError> {
        if self.pos >= self.buffer.len() {
            return Ok(None);
        }
        self.pos += 1;
        Ok(Some(self.buffer[self.pos - 1].clone()))
    }

    fn close(&mut self) {
        self.buffer = Vec::new();
    }
}

/// Block nested loops: the inner side is materialized once at `open`
/// (re-opening arbitrary subtrees per outer row would re-run blocking
/// children); the outer streams.
struct NestedLoopIter<'a> {
    outer: Box<dyn Operator + 'a>,
    inner: Box<dyn Operator + 'a>,
    spec: &'a JoinSpec,
    inner_buffer: Vec<Row>,
    current_outer: Option<Row>,
    inner_pos: usize,
}

impl Operator for NestedLoopIter<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.outer.open()?;
        self.inner.open()?;
        self.inner_buffer.clear();
        while let Some(row) = self.inner.next()? {
            self.inner_buffer.push(row);
        }
        self.inner.close();
        self.current_outer = None;
        self.inner_pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>, ExecError> {
        loop {
            if self.current_outer.is_none() {
                self.current_outer = self.outer.next()?;
                self.inner_pos = 0;
                if self.current_outer.is_none() {
                    return Ok(None);
                }
            }
            let outer = self.current_outer.as_ref().expect("just set");
            while self.inner_pos < self.inner_buffer.len() {
                let inner = &self.inner_buffer[self.inner_pos];
                self.inner_pos += 1;
                if check_pair_offsets(self.spec, outer, inner)?
                    && self.spec.pairs_match(outer, inner)
                {
                    return Ok(Some(self.spec.assemble_row(outer, inner)));
                }
            }
            self.current_outer = None;
        }
    }

    fn close(&mut self) {
        self.inner_buffer = Vec::new();
        self.outer.close();
    }
}

fn check_pair_offsets(spec: &JoinSpec, left: &[Datum], right: &[Datum]) -> Result<bool, ExecError> {
    for &(l, r) in &spec.eq_pairs {
        if l >= left.len() {
            return Err(ExecError::OffsetOutOfRange {
                offset: l,
                width: left.len(),
            });
        }
        if r >= right.len() {
            return Err(ExecError::OffsetOutOfRange {
                offset: r,
                width: right.len(),
            });
        }
    }
    Ok(true)
}

/// Hash join: build side drained at `open`, probe side streamed with a
/// pending-match cursor.
struct HashJoinIter<'a> {
    build: Box<dyn Operator + 'a>,
    probe: Box<dyn Operator + 'a>,
    spec: &'a JoinSpec,
    table: HashMap<Vec<Datum>, Vec<Row>>,
    current_probe: Option<Row>,
    match_pos: usize,
}

impl Operator for HashJoinIter<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.build.open()?;
        self.probe.open()?;
        self.table.clear();
        while let Some(row) = self.build.next()? {
            for &(l, _) in &self.spec.eq_pairs {
                if l >= row.len() {
                    return Err(ExecError::OffsetOutOfRange {
                        offset: l,
                        width: row.len(),
                    });
                }
            }
            let key: Vec<Datum> = self
                .spec
                .eq_pairs
                .iter()
                .map(|&(l, _)| row[l].clone())
                .collect();
            self.table.entry(key).or_default().push(row);
        }
        self.build.close();
        self.current_probe = None;
        self.match_pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>, ExecError> {
        loop {
            if let Some(probe) = &self.current_probe {
                let key: Vec<Datum> = self
                    .spec
                    .eq_pairs
                    .iter()
                    .map(|&(_, r)| probe[r].clone())
                    .collect();
                if let Some(matches) = self.table.get(&key) {
                    if self.match_pos < matches.len() {
                        let row = self.spec.assemble_row(&matches[self.match_pos], probe);
                        self.match_pos += 1;
                        return Ok(Some(row));
                    }
                }
                self.current_probe = None;
            }
            match self.probe.next()? {
                None => return Ok(None),
                Some(row) => {
                    for &(_, r) in &self.spec.eq_pairs {
                        if r >= row.len() {
                            return Err(ExecError::OffsetOutOfRange {
                                offset: r,
                                width: row.len(),
                            });
                        }
                    }
                    self.current_probe = Some(row);
                    self.match_pos = 0;
                }
            }
        }
    }

    fn close(&mut self) {
        self.table = HashMap::new();
        self.probe.close();
    }
}

/// Merge join over sorted inputs with duplicate-block buffering. Only
/// the current equal-key blocks are buffered, never whole inputs.
struct MergeJoinIter<'a> {
    left: Box<dyn Operator + 'a>,
    right: Box<dyn Operator + 'a>,
    left_key: usize,
    right_key: usize,
    spec: &'a JoinSpec,
    left_row: Option<Row>,
    left_started: bool,
    /// Buffered left rows of the current key block.
    left_block: Vec<Row>,
    left_block_pos: usize,
    /// Buffered right rows of the current key block.
    right_block: Vec<Row>,
    /// Lookahead right row (first row beyond the current block).
    next_right: Option<Row>,
    block_pos: usize,
}

impl MergeJoinIter<'_> {
    /// Advances to the next pair of equal-key blocks; returns `false`
    /// when either input is exhausted.
    fn advance_blocks(&mut self) -> Result<bool, ExecError> {
        loop {
            let Some(lrow) = self
                .left_row
                .take()
                .map(Ok)
                .or_else(|| match self.left.next() {
                    Ok(v) => v.map(Ok),
                    Err(e) => Some(Err(e)),
                })
            else {
                return Ok(false);
            };
            let lrow = lrow?;
            if self.left_key >= lrow.len() {
                return Err(ExecError::OffsetOutOfRange {
                    offset: self.left_key,
                    width: lrow.len(),
                });
            }
            let key = lrow[self.left_key].clone();

            // Advance the right side until its head key >= left key.
            loop {
                if self.next_right.is_none() {
                    self.next_right = self.right.next()?;
                }
                match &self.next_right {
                    None => return Ok(false),
                    Some(r) => {
                        if self.right_key >= r.len() {
                            return Err(ExecError::OffsetOutOfRange {
                                offset: self.right_key,
                                width: r.len(),
                            });
                        }
                        match r[self.right_key].cmp(&key) {
                            std::cmp::Ordering::Less => {
                                self.next_right = None; // skip, fetch next
                            }
                            _ => break,
                        }
                    }
                }
            }
            let rhead = self.next_right.as_ref().expect("checked above");
            if rhead[self.right_key] != key {
                // No right match for this left key: pull the next left row.
                continue;
            }

            // Collect the full blocks on both sides.
            self.left_block = vec![lrow];
            loop {
                match self.left.next()? {
                    Some(next) if next[self.left_key] == key => self.left_block.push(next),
                    other => {
                        self.left_row = other;
                        break;
                    }
                }
            }
            self.right_block.clear();
            while let Some(r) = self.next_right.take() {
                if r[self.right_key] == key {
                    self.right_block.push(r);
                    self.next_right = self.right.next()?;
                } else {
                    self.next_right = Some(r);
                    break;
                }
            }
            self.left_block_pos = 0;
            self.block_pos = 0;
            return Ok(true);
        }
    }
}

impl Operator for MergeJoinIter<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.left.open()?;
        self.right.open()?;
        self.left_row = None;
        self.next_right = None;
        self.left_block = Vec::new();
        self.right_block = Vec::new();
        self.left_block_pos = 0;
        self.block_pos = 0;
        self.left_started = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>, ExecError> {
        loop {
            // Emit remaining pairs of the current blocks.
            while self.left_block_pos < self.left_block.len() {
                let lrow = &self.left_block[self.left_block_pos];
                while self.block_pos < self.right_block.len() {
                    let rrow = &self.right_block[self.block_pos];
                    self.block_pos += 1;
                    check_pair_offsets(self.spec, lrow, rrow)?;
                    if self.spec.pairs_match(lrow, rrow) {
                        return Ok(Some(self.spec.assemble_row(lrow, rrow)));
                    }
                }
                self.left_block_pos += 1;
                self.block_pos = 0;
            }
            if !self.advance_blocks()? {
                return Ok(None);
            }
        }
    }

    fn close(&mut self) {
        self.left_block = Vec::new();
        self.right_block = Vec::new();
        self.left.close();
        self.right.close();
    }
}

/// Hash aggregation: fully blocking (all groups materialize at `open`).
struct HashAggIter<'a> {
    input: Box<dyn Operator + 'a>,
    group: &'a [usize],
    aggs: &'a [AggSpec],
    output: Vec<Row>,
    pos: usize,
}

impl Operator for HashAggIter<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.input.open()?;
        let mut groups: HashMap<Vec<Datum>, Accumulators> = HashMap::new();
        let mut saw_rows = false;
        while let Some(row) = self.input.next()? {
            saw_rows = true;
            check_agg_offsets(self.group, self.aggs, &row)?;
            let key: Vec<Datum> = self.group.iter().map(|&g| row[g].clone()).collect();
            let accs = groups
                .entry(key)
                .or_insert_with(|| Accumulators::new(self.aggs));
            accs.update(&row, self.aggs)?;
        }
        self.input.close();
        self.output = groups
            .into_iter()
            .map(|(key, accs)| accs.finish_into(key))
            .collect();
        if self.output.is_empty() && self.group.is_empty() && !saw_rows {
            self.output
                .push(Accumulators::new(self.aggs).finish_into(Vec::new()));
        }
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>, ExecError> {
        if self.pos >= self.output.len() {
            return Ok(None);
        }
        self.pos += 1;
        Ok(Some(self.output[self.pos - 1].clone()))
    }

    fn close(&mut self) {
        self.output = Vec::new();
    }
}

fn check_agg_offsets(group: &[usize], aggs: &[AggSpec], row: &[Datum]) -> Result<(), ExecError> {
    for &g in group
        .iter()
        .chain(aggs.iter().filter_map(|a| a.arg.as_ref()))
    {
        if g >= row.len() {
            return Err(ExecError::OffsetOutOfRange {
                offset: g,
                width: row.len(),
            });
        }
    }
    Ok(())
}

/// Streaming aggregation: genuinely pipelined — one group in flight,
/// emitted when the key changes.
struct StreamAggIter<'a> {
    input: Box<dyn Operator + 'a>,
    group: &'a [usize],
    aggs: &'a [AggSpec],
    current: Option<(Vec<Datum>, Accumulators)>,
    done: bool,
    emitted_any: bool,
}

impl Operator for StreamAggIter<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.input.open()?;
        self.current = None;
        self.done = false;
        self.emitted_any = false;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>, ExecError> {
        if self.done {
            return Ok(None);
        }
        loop {
            match self.input.next()? {
                Some(row) => {
                    check_agg_offsets(self.group, self.aggs, &row)?;
                    let key: Vec<Datum> = self.group.iter().map(|&g| row[g].clone()).collect();
                    match &mut self.current {
                        Some((k, accs)) if *k == key => {
                            accs.update(&row, self.aggs)?;
                        }
                        Some(_) => {
                            let (k, accs) = self.current.take().expect("matched Some above");
                            let mut fresh = Accumulators::new(self.aggs);
                            fresh.update(&row, self.aggs)?;
                            self.current = Some((key, fresh));
                            self.emitted_any = true;
                            return Ok(Some(accs.finish_into(k)));
                        }
                        None => {
                            let mut accs = Accumulators::new(self.aggs);
                            accs.update(&row, self.aggs)?;
                            self.current = Some((key, accs));
                        }
                    }
                }
                None => {
                    self.done = true;
                    if let Some((k, accs)) = self.current.take() {
                        self.emitted_any = true;
                        return Ok(Some(accs.finish_into(k)));
                    }
                    // SQL scalar-aggregate semantics over empty input.
                    if self.group.is_empty() && !self.emitted_any {
                        return Ok(Some(Accumulators::new(self.aggs).finish_into(Vec::new())));
                    }
                    return Ok(None);
                }
            }
        }
    }

    fn close(&mut self) {
        self.input.close();
    }
}

/// Streaming projection.
struct ProjectIter<'a> {
    input: Box<dyn Operator + 'a>,
    cols: &'a [usize],
}

impl Operator for ProjectIter<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Row>, ExecError> {
        match self.input.next()? {
            None => Ok(None),
            Some(row) => {
                if let Some(&c) = self.cols.iter().find(|&&c| c >= row.len()) {
                    return Err(ExecError::OffsetOutOfRange {
                        offset: c,
                        width: row.len(),
                    });
                }
                Ok(Some(self.cols.iter().map(|&c| row[c].clone()).collect()))
            }
        }
    }

    fn close(&mut self) {
        self.input.close();
    }
}

#[cfg(test)]
mod tests {
    use crate::node::{AggSpec, ColFilter, ExecNode, JoinSpec, Side};
    use crate::{Database, Table};
    use plansample_catalog::Datum::{Int, Null};
    use plansample_catalog::TableId;
    use plansample_query::{AggFunc, CmpOp};

    fn db_two(
        w0: usize,
        r0: Vec<Vec<plansample_catalog::Datum>>,
        w1: usize,
        r1: Vec<Vec<plansample_catalog::Datum>>,
    ) -> Database {
        let mut db = Database::new();
        db.insert(TableId(0), Table::from_rows(w0, r0).unwrap());
        db.insert(TableId(1), Table::from_rows(w1, r1).unwrap());
        db
    }

    fn scan(t: u32) -> Box<ExecNode> {
        Box::new(ExecNode::TableScan {
            table: TableId(t),
            filters: vec![],
        })
    }

    fn spec(lw: usize, rw: usize, pairs: Vec<(usize, usize)>) -> JoinSpec {
        JoinSpec {
            eq_pairs: pairs,
            assemble: vec![(Side::Left, 0, lw), (Side::Right, 0, rw)],
        }
    }

    /// Both engines must agree on every operator shape.
    fn assert_engines_agree(node: &ExecNode, db: &Database) {
        let materialized = node.execute(db).unwrap();
        let pipelined = node.execute_pipelined(db).unwrap();
        assert!(
            materialized.multiset_eq(&pipelined),
            "engines disagree: {} vs {} rows",
            materialized.len(),
            pipelined.len()
        );
    }

    #[test]
    fn scans_and_filters_agree() {
        let db = db_two(
            2,
            vec![
                vec![Int(3), Int(30)],
                vec![Int(1), Int(10)],
                vec![Int(2), Int(20)],
            ],
            1,
            vec![],
        );
        assert_engines_agree(
            &ExecNode::TableScan {
                table: TableId(0),
                filters: vec![ColFilter {
                    offset: 1,
                    op: CmpOp::Gt,
                    value: Int(15),
                }],
            },
            &db,
        );
        assert_engines_agree(
            &ExecNode::IndexScan {
                table: TableId(0),
                sort_col: 0,
                filters: vec![],
            },
            &db,
        );
    }

    #[test]
    fn index_scan_streams_in_key_order() {
        let db = db_two(1, vec![vec![Int(3)], vec![Int(1)], vec![Int(2)]], 1, vec![]);
        let node = ExecNode::IndexScan {
            table: TableId(0),
            sort_col: 0,
            filters: vec![],
        };
        let out = node.execute_pipelined(&db).unwrap();
        assert_eq!(out.rows(), &[vec![Int(1)], vec![Int(2)], vec![Int(3)]]);
    }

    #[test]
    fn all_join_iterators_agree_with_materialized() {
        let db = db_two(
            1,
            vec![vec![Int(1)], vec![Int(2)], vec![Int(2)], vec![Int(4)]],
            2,
            vec![
                vec![Int(2), Int(20)],
                vec![Int(2), Int(21)],
                vec![Int(3), Int(30)],
                vec![Int(4), Int(40)],
            ],
        );
        let s = spec(1, 2, vec![(0, 0)]);
        assert_engines_agree(
            &ExecNode::NestedLoopJoin {
                left: scan(0),
                right: scan(1),
                spec: s.clone(),
            },
            &db,
        );
        assert_engines_agree(
            &ExecNode::HashJoin {
                left: scan(0),
                right: scan(1),
                spec: s.clone(),
            },
            &db,
        );
        assert_engines_agree(
            &ExecNode::MergeJoin {
                left: Box::new(ExecNode::Sort {
                    input: scan(0),
                    keys: vec![0],
                }),
                right: Box::new(ExecNode::Sort {
                    input: scan(1),
                    keys: vec![0],
                }),
                left_key: 0,
                right_key: 0,
                spec: s,
            },
            &db,
        );
    }

    #[test]
    fn merge_join_duplicate_blocks_pipelined() {
        let db = db_two(
            1,
            vec![vec![Int(2)], vec![Int(2)], vec![Int(2)]],
            1,
            vec![vec![Int(2)], vec![Int(2)]],
        );
        let node = ExecNode::MergeJoin {
            left: scan(0),
            right: scan(1),
            left_key: 0,
            right_key: 0,
            spec: spec(1, 1, vec![(0, 0)]),
        };
        assert_eq!(node.execute_pipelined(&db).unwrap().len(), 6);
    }

    #[test]
    fn cross_product_pipelined() {
        let db = db_two(1, vec![vec![Int(1)], vec![Int(2)]], 1, vec![vec![Int(3)]]);
        let node = ExecNode::NestedLoopJoin {
            left: scan(0),
            right: scan(1),
            spec: spec(1, 1, vec![]),
        };
        assert_eq!(node.execute_pipelined(&db).unwrap().len(), 2);
    }

    #[test]
    fn aggregations_agree_including_empty_input() {
        let aggs = vec![
            AggSpec {
                func: AggFunc::Sum,
                arg: Some(1),
            },
            AggSpec {
                func: AggFunc::CountStar,
                arg: None,
            },
            AggSpec {
                func: AggFunc::Avg,
                arg: Some(1),
            },
        ];
        // Non-empty grouped.
        let db = db_two(
            2,
            vec![
                vec![Int(1), Int(10)],
                vec![Int(1), Int(20)],
                vec![Int(2), Int(5)],
            ],
            1,
            vec![],
        );
        assert_engines_agree(
            &ExecNode::HashAgg {
                input: scan(0),
                group: vec![0],
                aggs: aggs.clone(),
            },
            &db,
        );
        assert_engines_agree(
            &ExecNode::StreamAgg {
                input: Box::new(ExecNode::Sort {
                    input: scan(0),
                    keys: vec![0],
                }),
                group: vec![0],
                aggs: aggs.clone(),
            },
            &db,
        );
        // Empty input, scalar aggregate: both engines emit the SQL row.
        let empty = db_two(2, vec![], 1, vec![]);
        for node in [
            ExecNode::HashAgg {
                input: scan(0),
                group: vec![],
                aggs: aggs.clone(),
            },
            ExecNode::StreamAgg {
                input: scan(0),
                group: vec![],
                aggs,
            },
        ] {
            let out = node.execute_pipelined(&empty).unwrap();
            assert_eq!(out.rows(), &[vec![Null, Int(0), Null]]);
            assert_engines_agree(&node, &empty);
        }
    }

    #[test]
    fn projection_streams() {
        let db = db_two(3, vec![vec![Int(1), Int(2), Int(3)]], 1, vec![]);
        let node = ExecNode::Project {
            input: scan(0),
            cols: vec![2, 0],
        };
        let out = node.execute_pipelined(&db).unwrap();
        assert_eq!(out.rows(), &[vec![Int(3), Int(1)]]);
        assert_engines_agree(&node, &db);
    }

    #[test]
    fn offset_errors_surface_in_pipelined_mode() {
        let db = db_two(1, vec![vec![Int(1)]], 1, vec![]);
        let node = ExecNode::Project {
            input: scan(0),
            cols: vec![9],
        };
        assert!(node.execute_pipelined(&db).is_err());
    }

    #[test]
    fn composed_pipeline_agrees() {
        // join -> sort -> stream agg, all pipelined.
        let db = db_two(
            1,
            vec![vec![Int(1)], vec![Int(2)], vec![Int(2)]],
            2,
            vec![
                vec![Int(1), Int(5)],
                vec![Int(2), Int(7)],
                vec![Int(2), Int(9)],
            ],
        );
        let join = ExecNode::HashJoin {
            left: scan(0),
            right: scan(1),
            spec: spec(1, 2, vec![(0, 0)]),
        };
        let node = ExecNode::StreamAgg {
            input: Box::new(ExecNode::Sort {
                input: Box::new(join),
                keys: vec![0],
            }),
            group: vec![0],
            aggs: vec![AggSpec {
                func: AggFunc::Sum,
                arg: Some(2),
            }],
        };
        assert_engines_agree(&node, &db);
        let out = node.execute_pipelined(&db).unwrap();
        let rows = out.sorted_rows();
        assert_eq!(rows[0], vec![Int(1), Int(5)]);
        assert_eq!(rows[1], vec![Int(2), Int(32)]); // (7+9) × 2 left dups
    }
}
