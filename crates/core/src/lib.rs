//! Counting, enumerating, and uniform sampling of execution plans from a
//! cost-based query optimizer's MEMO.
//!
//! Reproduction of **F. Waas & C. A. Galindo-Legaria, "Counting,
//! Enumerating, and Sampling of Execution Plans in a Cost-Based Query
//! Optimizer"** (SIGMOD 2000). After regular optimization the MEMO holds
//! a compact encoding of *every* candidate plan the optimizer
//! considered; this crate post-processes that structure to
//!
//! * **count** the exact number `N` of complete plans ([`PlanSpace::total`]),
//! * establish a bijection between `0 … N−1` and the plans
//!   ([`PlanSpace::unrank`] / [`PlanSpace::rank`]),
//! * **enumerate** the whole space ([`PlanSpace::enumerate`]), and
//! * draw **uniform random samples** ([`PlanSpace::sample`]),
//!
//! which enables the paper's two applications: differential testing of
//! optimizer and execution engine (every plan of a query must produce
//! the same result — [`validate`]) and the study of cost distributions
//! over real search spaces (§5).
//!
//! # Quick start
//!
//! ```
//! use plansample::PlanSpace;
//! use plansample_bignum::Nat;
//! use plansample_optimizer::{optimize, OptimizerConfig};
//!
//! let (catalog, _) = plansample_catalog::tpch::catalog();
//! let query = plansample_query::tpch::q5(&catalog);
//! let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
//!
//! let space = PlanSpace::build(&optimized.memo, &query).unwrap();
//! println!("Q5 considers {} plans", space.total());
//!
//! // USEPLAN-style: execute plan number 8.
//! let plan8 = space.unrank(&Nat::from(8u64)).unwrap();
//! assert_eq!(space.rank(&plan8).unwrap(), Nat::from(8u64));
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod count;
mod enumerate;
mod links;
pub mod lower;
pub mod paper_example;
mod rank;
mod sample;
pub mod session;
mod subspace;
mod unrank;
pub mod validate;

pub use count::Counts;
pub use links::Links;

use plansample_bignum::Nat;
use plansample_memo::{Memo, PhysId};
use plansample_query::QuerySpec;
use std::fmt;

/// Errors from plan-space construction and rank operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// The memo's link graph contains a cycle (impossible for
    /// optimizer-produced memos; hand-built ones are checked).
    CyclicMemo {
        /// An expression on the cycle.
        at: PhysId,
    },
    /// `unrank` was called with a rank outside `[0, N)`.
    RankOutOfRange {
        /// The requested rank.
        rank: Nat,
        /// The space size `N`.
        total: Nat,
    },
    /// `rank` was called with a plan that is not part of this space.
    ForeignPlan {
        /// The first node that failed to resolve.
        at: PhysId,
    },
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::CyclicMemo { at } => {
                write!(f, "memo link graph is cyclic at expression {at}")
            }
            SpaceError::RankOutOfRange { rank, total } => {
                write!(f, "rank {rank} outside the plan space of size {total}")
            }
            SpaceError::ForeignPlan { at } => {
                write!(f, "plan node {at} is not a member of this plan space")
            }
        }
    }
}

impl std::error::Error for SpaceError {}

/// A fully prepared plan space: the memo plus materialized links (§3.1)
/// and exact counts (§3.2). All rank operations are methods on this type.
#[derive(Debug)]
pub struct PlanSpace<'a> {
    pub(crate) memo: &'a Memo,
    pub(crate) query: &'a QuerySpec,
    pub(crate) links: Links,
    pub(crate) counts: Counts,
}

impl<'a> PlanSpace<'a> {
    /// Materializes links and computes counts — the paper's preparatory
    /// post-processing pass ("the overhead incurred by this kind of post
    /// processing is negligible", benchmarked in `plansample-bench`).
    pub fn build(memo: &'a Memo, query: &'a QuerySpec) -> Result<Self, SpaceError> {
        let links = Links::build(memo, query)?;
        let counts = Counts::compute(memo, &links);
        Ok(PlanSpace {
            memo,
            query,
            links,
            counts,
        })
    }

    /// `N`: the exact number of complete execution plans in the space.
    pub fn total(&self) -> &Nat {
        self.counts.total()
    }

    /// `N(v)`: plans rooted in a particular expression.
    pub fn count_rooted(&self, id: PhysId) -> &Nat {
        self.counts.rooted(id)
    }

    /// The underlying memo.
    pub fn memo(&self) -> &Memo {
        self.memo
    }

    /// The query this space belongs to.
    pub fn query(&self) -> &QuerySpec {
        self.query
    }

    /// The materialized links.
    pub fn links(&self) -> &Links {
        &self.links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_exposes_totals_and_members() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        assert_eq!(space.total().to_u64(), Some(32));
        assert_eq!(space.count_rooted(ex.hash_join_ab).to_u64(), Some(6));
        assert_eq!(space.memo().num_groups(), 5);
        assert_eq!(space.query().relations.len(), 3);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = SpaceError::RankOutOfRange {
            rank: Nat::from(50u64),
            total: Nat::from(32u64),
        };
        let msg = e.to_string();
        assert!(msg.contains("50") && msg.contains("32"));
    }
}
