//! A Cascades-style cost-based query optimizer that *keeps every
//! alternative it generates*.
//!
//! This crate is the substrate the paper's technique operates on: it
//! populates a [`plansample_memo::Memo`] with all logical join orders
//! (exploration), derives costed physical operators for each
//! (implementation rules), adds `Sort` property enforcers, and extracts
//! the cost-optimal plan. Unlike a production optimizer it performs no
//! search-time pruning by default — the paper notes (§2 end) that "for
//! our technique to be most effective, it is useful to have the optimizer
//! keep each alternative generated, so they can be freely used,
//! regardless of their cost". Cost-bound pruning is available separately
//! ([`prune`]) for the ablation experiment.
//!
//! ```
//! use plansample_catalog::tpch;
//! use plansample_optimizer::{optimize, OptimizerConfig};
//!
//! let (catalog, _tables) = tpch::catalog();
//! let query = plansample_query::tpch::q5(&catalog);
//! let optimized = optimize(&catalog, &query, &OptimizerConfig::default()).unwrap();
//! assert!(optimized.best_cost > 0.0);
//! assert!(optimized.memo.num_physical() > 100);
//! ```

#![warn(missing_docs)]

mod best;
mod cost;
mod explore;
mod implement;

pub use best::{best_plan, compute_totals, prune, Totals};
pub use cost::CostModel;
pub use explore::{explore_bottom_up, explore_transform};
pub use implement::{add_enforcers, implement_all};

use plansample_catalog::Catalog;
use plansample_memo::{Memo, PlanNode};
use plansample_query::QuerySpec;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of completed [`optimize`] runs.
static OPTIMIZATIONS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// Per-thread count of completed [`optimize`] runs.
    static THREAD_OPTIMIZATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of full [`optimize`] runs performed by this process so far —
/// an observability hook for serving-path metrics.
pub fn optimizations_performed() -> u64 {
    OPTIMIZATIONS.load(Ordering::Relaxed)
}

/// Number of full [`optimize`] runs performed by the *calling thread* —
/// the race-free variant for test assertions. Tests and benches take
/// the delta around a code region to prove that prepared artifacts
/// (`plansample::PreparedQuery`) serve counts, pages, and samples with
/// **zero** re-optimizations, without interference from other test
/// threads optimizing concurrently in the same process.
pub fn thread_optimizations_performed() -> u64 {
    THREAD_OPTIMIZATIONS.with(|c| c.get())
}

/// Which exploration strategy populates the memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Explorer {
    /// Starburst-style bottom-up subset enumeration (default; complete
    /// for every join graph).
    #[default]
    BottomUp,
    /// Volcano-style transformation rules applied to a fixpoint from the
    /// initial plan.
    Transform,
}

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Admit joins without connecting predicates. Table 1 of the paper
    /// reports both modes.
    pub allow_cross_products: bool,
    /// Exploration strategy.
    pub explorer: Explorer,
    /// Generate sort-merge join alternatives.
    pub enable_merge_joins: bool,
    /// Generate ordered index-scan alternatives.
    pub enable_index_scans: bool,
    /// Generate `Sort` enforcers (disabling them removes merge-join
    /// feasibility wherever no index provides the order).
    pub enable_enforcers: bool,
    /// Cost model constants.
    pub cost_model: CostModel,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            allow_cross_products: false,
            explorer: Explorer::BottomUp,
            enable_merge_joins: true,
            enable_index_scans: true,
            enable_enforcers: true,
            cost_model: CostModel::default(),
        }
    }
}

impl OptimizerConfig {
    /// The paper's Table 1 "including Cartesian products" configuration.
    pub fn with_cross_products() -> Self {
        OptimizerConfig {
            allow_cross_products: true,
            ..Default::default()
        }
    }
}

/// Errors from [`optimize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// The join graph is disconnected and cross products are disabled:
    /// no complete plan exists under the configuration.
    DisconnectedQuery,
    /// Exhaustive subset enumeration above this size is intractable.
    TooManyRelations {
        /// Relations in the query.
        got: usize,
        /// Hard limit.
        limit: usize,
    },
    /// No finite-cost plan could be extracted (internal invariant —
    /// indicates an inconsistent memo).
    NoPlanFound,
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::DisconnectedQuery => write!(
                f,
                "join graph is disconnected; enable cross products to optimize this query"
            ),
            OptError::TooManyRelations { got, limit } => {
                write!(
                    f,
                    "{got} relations exceed the exhaustive-enumeration limit of {limit}"
                )
            }
            OptError::NoPlanFound => write!(f, "no complete finite-cost plan in the memo"),
        }
    }
}

impl std::error::Error for OptError {}

/// Maximum relations for exhaustive enumeration (2^n subsets, 3^n splits).
pub const MAX_RELATIONS: usize = 16;

/// The result of optimization: the fully populated memo plus the
/// cost-optimal plan (the paper's cost-1.0 reference point).
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The memo holding the complete space of alternatives.
    pub memo: Memo,
    /// The cost-optimal plan.
    pub best_plan: PlanNode,
    /// Its total cost.
    pub best_cost: f64,
}

/// Runs the full pipeline: explore → implement → enforcers → cost →
/// best-plan extraction.
pub fn optimize(
    catalog: &Catalog,
    query: &QuerySpec,
    config: &OptimizerConfig,
) -> Result<Optimized, OptError> {
    let n = query.relations.len();
    if n > MAX_RELATIONS {
        return Err(OptError::TooManyRelations {
            got: n,
            limit: MAX_RELATIONS,
        });
    }
    if !config.allow_cross_products && !query.connected(query.all_rels()) {
        return Err(OptError::DisconnectedQuery);
    }

    let mut memo = Memo::new();
    match config.explorer {
        Explorer::BottomUp => explore_bottom_up(query, config.allow_cross_products, &mut memo)?,
        Explorer::Transform => explore_transform(query, config.allow_cross_products, &mut memo)?,
    }
    implement_all(
        query,
        catalog,
        &config.cost_model,
        config.enable_merge_joins,
        config.enable_index_scans,
        &mut memo,
    );
    if config.enable_enforcers {
        add_enforcers(query, catalog, &config.cost_model, &mut memo);
    }

    // The memo is now read-only for the rest of its life (it backs the
    // prepared-query serving surface): release the growth slack so the
    // resident footprint — and the byte-budget charge — is the true size.
    memo.shrink_to_fit();

    let totals = compute_totals(&memo, query);
    let (best_plan, best_cost) = best_plan(&memo, query, &totals).ok_or(OptError::NoPlanFound)?;
    // Counted only on success, so the observability counters report
    // *completed* optimizations as documented.
    OPTIMIZATIONS.fetch_add(1, Ordering::Relaxed);
    THREAD_OPTIMIZATIONS.with(|c| c.set(c.get() + 1));
    Ok(Optimized {
        memo,
        best_plan,
        best_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_catalog::{table, tpch, ColType};
    use plansample_memo::validate_plan;
    use plansample_query::QueryBuilder;

    #[test]
    fn optimizes_tpch_q5() {
        let (cat, _) = tpch::catalog();
        let q = plansample_query::tpch::q5(&cat);
        let opt = optimize(&cat, &q, &OptimizerConfig::default()).unwrap();
        assert!(validate_plan(&opt.memo, &q, &opt.best_plan).is_empty());
        assert!(opt.best_cost.is_finite() && opt.best_cost > 0.0);
        // 6-way join: a non-trivial space.
        assert!(opt.memo.num_physical() > 50, "{}", opt.memo.num_physical());
    }

    #[test]
    fn cross_products_enlarge_the_memo() {
        let (cat, _) = tpch::catalog();
        let q = plansample_query::tpch::q5(&cat);
        let no_cp = optimize(&cat, &q, &OptimizerConfig::default()).unwrap();
        let cp = optimize(&cat, &q, &OptimizerConfig::with_cross_products()).unwrap();
        assert!(cp.memo.num_physical() > no_cp.memo.num_physical());
        // The optimum never uses a cross product here, so it is unchanged.
        assert!((cp.best_cost - no_cp.best_cost).abs() < 1e-6 * no_cp.best_cost);
    }

    #[test]
    fn failed_optimizations_are_not_counted() {
        let mut cat = plansample_catalog::Catalog::new();
        cat.add_table(table("a", 10).col("x", ColType::Int, 10).build())
            .unwrap();
        cat.add_table(table("b", 10).col("y", ColType::Int, 10).build())
            .unwrap();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("a", None).unwrap();
        qb.rel("b", None).unwrap();
        let q = qb.build().unwrap();

        let before = thread_optimizations_performed();
        assert!(optimize(&cat, &q, &OptimizerConfig::default()).is_err());
        assert_eq!(
            thread_optimizations_performed(),
            before,
            "failed runs must not count as completed optimizations"
        );
        assert!(optimize(&cat, &q, &OptimizerConfig::with_cross_products()).is_ok());
        assert_eq!(thread_optimizations_performed(), before + 1);
    }

    #[test]
    fn disconnected_query_needs_cross_products() {
        let mut cat = plansample_catalog::Catalog::new();
        cat.add_table(table("a", 10).col("x", ColType::Int, 10).build())
            .unwrap();
        cat.add_table(table("b", 10).col("y", ColType::Int, 10).build())
            .unwrap();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("a", None).unwrap();
        qb.rel("b", None).unwrap();
        let q = qb.build().unwrap();
        assert_eq!(
            optimize(&cat, &q, &OptimizerConfig::default()).unwrap_err(),
            OptError::DisconnectedQuery
        );
        let opt = optimize(&cat, &q, &OptimizerConfig::with_cross_products()).unwrap();
        assert!(validate_plan(&opt.memo, &q, &opt.best_plan).is_empty());
    }

    #[test]
    fn relation_limit_enforced() {
        let mut cat = plansample_catalog::Catalog::new();
        for i in 0..(MAX_RELATIONS + 1) {
            cat.add_table(
                table(&format!("t{i}"), 10)
                    .col("k", ColType::Int, 10)
                    .build(),
            )
            .unwrap();
        }
        let mut qb = QueryBuilder::new(&cat);
        for i in 0..(MAX_RELATIONS + 1) {
            qb.rel(&format!("t{i}"), None).unwrap();
        }
        for i in 0..MAX_RELATIONS {
            qb.join((&format!("t{i}"), "k"), (&format!("t{}", i + 1), "k"))
                .unwrap();
        }
        let q = qb.build().unwrap();
        assert!(matches!(
            optimize(&cat, &q, &OptimizerConfig::default()),
            Err(OptError::TooManyRelations { .. })
        ));
    }

    #[test]
    fn transform_explorer_finds_same_optimum_on_chain() {
        let mut cat = plansample_catalog::Catalog::new();
        for i in 0..4 {
            cat.add_table(
                table(&format!("t{i}"), 100 * (i as u64 + 1))
                    .col("k", ColType::Int, 50)
                    .col("fk", ColType::Int, 50)
                    .build(),
            )
            .unwrap();
        }
        let mut qb = QueryBuilder::new(&cat);
        for i in 0..4 {
            qb.rel(&format!("t{i}"), None).unwrap();
        }
        for i in 0..3 {
            qb.join((&format!("t{i}"), "fk"), (&format!("t{}", i + 1), "k"))
                .unwrap();
        }
        let q = qb.build().unwrap();

        let bu = optimize(&cat, &q, &OptimizerConfig::default()).unwrap();
        let tr = optimize(
            &cat,
            &q,
            &OptimizerConfig {
                explorer: Explorer::Transform,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((bu.best_cost - tr.best_cost).abs() < 1e-9);
        assert_eq!(bu.memo.num_physical(), tr.memo.num_physical());
    }

    #[test]
    fn best_plan_root_is_aggregate_for_q5() {
        let (cat, _) = tpch::catalog();
        let q = plansample_query::tpch::q5(&cat);
        let opt = optimize(&cat, &q, &OptimizerConfig::default()).unwrap();
        let root_expr = opt.memo.phys(opt.best_plan.id);
        assert!(matches!(
            root_expr.op,
            plansample_memo::PhysicalOp::HashAgg { .. }
                | plansample_memo::PhysicalOp::StreamAgg { .. }
        ));
    }
}
