//! An asynchronous network front end for plan counting, unranking, and
//! sampling.
//!
//! The paper's artifact — a prepared plan space that answers count /
//! unrank / sample queries in microseconds — only pays for itself when
//! many consumers share it. This crate puts [`plansample_core`]'s
//! `PlanService` behind a TCP server so that sharing crosses process
//! boundaries: one resident MEMO per distinct query, any number of
//! clients.
//!
//! The pieces, bottom-up:
//!
//! * [`wire`] — the length-prefixed binary protocol: versioned frames,
//!   request ids, typed errors. Decoding is total (never panics) and
//!   encoding is deterministic, which is what makes the network path
//!   byte-for-byte reproducible.
//! * [`reactor`] — a minimal readiness poller over `poll(2)` (vendored
//!   so the event loops need nothing beyond `std`), and the
//!   thread-per-core reactor built on it.
//! * [`conn`] — the per-connection state machine: partial-frame
//!   reassembly, partial-write buffering, slow-loris deadlines.
//! * [`state`] — workload resolution (TPC-H SQL and synthetic join
//!   graphs), request execution, and the two-layer admission control
//!   that sheds with a typed `Overloaded` reply instead of queueing
//!   unboundedly — globally, across every reactor.
//! * [`server`] — the acceptor (owns the listener, deals connections
//!   round-robin to the reactors) plus N reactors, each with its own
//!   small worker pool for the CPU-heavy requests.
//! * [`client`] — a blocking reference client.
//! * [`loadgen`] + [`json`] — the load generator behind
//!   `plansample-loadgen` and the `BENCH_serving.json` artifact it
//!   writes and validates.
//!
//! # Determinism contract
//!
//! For a given server configuration, the bytes of a reply are a pure
//! function of the bytes of its request: plan identity comes from the
//! deterministic optimizer, sampling randomness comes from the
//! client-supplied seed, and floats travel as IEEE-754 bits. Two
//! clients issuing the same request bytes get identical reply bytes —
//! whether or not they share a cached artifact, and at any reactor or
//! worker count: reactors shard *connections*, never workloads, and
//! every preparation routes through the same singleflighted services.

pub mod client;
pub mod conn;
pub mod json;
pub mod loadgen;
pub mod reactor;
pub mod server;
pub mod state;
pub mod wire;

pub use client::{Client, ClientError};
pub use loadgen::{LoadReport, LoadgenConfig};
pub use server::{ServerConfig, ServerHandle};
pub use state::{AdmissionConfig, ServerState};
pub use wire::{ErrorCode, ReactorStats, Request, Response, StatsReply, WireError, Workload};
