//! Shared server state: workload resolution, request execution, and
//! admission control.
//!
//! The state is one [`PlanService`] over the TPC-H catalog (SQL
//! workloads) plus a lazily-populated family of single-entry services
//! for synthetic join-graph workloads, each over the catalog the spec
//! deterministically materializes. Routing every preparation through a
//! `PlanService` buys the serving layer the cache, the byte-budget
//! eviction, and — critically for the network determinism contract —
//! the singleflight: a thundering herd of connections asking for the
//! same fresh query performs exactly one optimization in total.
//!
//! Admission control (the `Overloaded` reply) is two-layered:
//!
//! 1. the reactors bound the *queue* — requests beyond `max_inflight`
//!    (a single bound shared by every reactor, claimed through
//!    [`ServerState::try_admit`]) are answered `Overloaded` immediately
//!    instead of queueing unboundedly (`shed_queue`), and
//! 2. this module bounds the *expensive work* — a request that would
//!    have to optimize (its workload is not cached, probed with
//!    [`PlanService::is_cached`]) is shed when the byte budget is
//!    already saturated or too many first preparations are in flight
//!    (`shed_prepare`). Cached workloads are always served: hits are
//!    cheap no matter how hot the cache is.

use crate::wire::{
    ErrorCode, ReactorStats, Request, Response, SamplesEncoder, StatsReply, WirePlan, Workload,
    MAX_SAMPLE_BATCH, MAX_SYNTH_RELATIONS,
};
use plansample_core::{Error, PlanBatch, PlanService, PreparedQuery};
use plansample_datagen::joingraph::{JoinGraphSpec, Topology};
use plansample_memo::PlanNode;
use plansample_optimizer::OptimizerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Admission-control knobs (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum requests queued or executing — across every reactor —
    /// before new ones are shed.
    pub max_inflight: usize,
    /// Maximum concurrent first preparations before uncached requests
    /// are shed.
    pub max_prepares: usize,
    /// Shed uncached requests once the TPC-H service's resident bytes
    /// reach this fraction of its byte budget (when one is set).
    pub byte_high_water: f64,
    /// Maximum synthetic services resident at once; the least recently
    /// used is evicted past this bound, so a client cycling
    /// `(topology, relations, seed)` triples cannot grow server memory
    /// without limit.
    pub max_synth_services: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 1024,
            max_prepares: 4,
            byte_high_water: 1.0,
            max_synth_services: 32,
        }
    }
}

/// One reactor's slice of the request/connection counters, owned by
/// [`ServerState`] so a stats snapshot can read every reactor's share
/// without touching the reactor threads.
#[derive(Debug, Default)]
pub struct ReactorCounters {
    /// Requests this reactor decoded (admitted or queue-shed).
    pub requests: AtomicU64,
    /// Connections handed to this reactor over the server's lifetime.
    pub connections: AtomicU64,
}

/// The synthetic-service table behind [`ServerState::synth_service`]:
/// an LRU-capped map of single-entry services keyed by spec. `tick`
/// orders recency; it is bumped under the map's lock, so it needs no
/// atomicity of its own.
#[derive(Default)]
struct SynthServices {
    map: HashMap<(Topology, u16, u64), SynthEntry>,
    tick: u64,
}

struct SynthEntry {
    service: Arc<PlanService>,
    last_used: u64,
}

/// The serving state shared by the reactors and the worker pools.
pub struct ServerState {
    tpch: Arc<PlanService>,
    synth: Mutex<SynthServices>,
    admission: AdmissionConfig,
    byte_budget: Option<usize>,
    /// Requests decoded by the reactors, whether admitted or shed at
    /// the queue bound; `requests == requests_admitted + shed_queue`
    /// once the server is quiescent.
    pub requests: AtomicU64,
    /// Requests that passed the queue bound and reached
    /// [`ServerState::handle`].
    pub requests_admitted: AtomicU64,
    /// Requests shed at the queue bound (incremented by the reactors).
    pub shed_queue: AtomicU64,
    /// Requests shed at the preparation bound.
    pub shed_prepare: AtomicU64,
    /// Frames that failed to decode (incremented by the reactors).
    pub wire_errors: AtomicU64,
    /// `accept(2)` failures other than `WouldBlock`/`EINTR`.
    pub accept_errors: AtomicU64,
    /// Connections currently open (maintained by the reactors).
    pub connections_open: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections_total: AtomicU64,
    /// Synthetic services evicted to stay under the LRU cap.
    pub synth_evictions: AtomicU64,
    /// High-water mark of per-request sampling memory: flat batch plus
    /// reply buffer of the largest `SampleBatch` stream-encoded so far
    /// (maintained by [`ServerState::handle_encoded`] via `fetch_max`).
    pub batch_peak_bytes: AtomicU64,
    /// Requests queued or executing across all reactors — the count the
    /// queue bound admits against (see [`ServerState::try_admit`]).
    inflight: AtomicU64,
    /// Per-reactor counter slices, indexed by reactor.
    pub per_reactor: Vec<ReactorCounters>,
}

impl ServerState {
    /// Builds the state over the TPC-H catalog.
    ///
    /// `byte_budget` bounds the TPC-H service's resident artifact bytes
    /// (and participates in admission); `None` leaves it entry-bounded
    /// only. `reactors` sizes the per-reactor counter slices.
    pub fn new(
        config: OptimizerConfig,
        cache_entries: usize,
        byte_budget: Option<usize>,
        admission: AdmissionConfig,
        reactors: usize,
    ) -> Self {
        let (catalog, _) = plansample_catalog::tpch::catalog();
        let tpch = Arc::new(PlanService::bounded(
            catalog,
            config,
            cache_entries,
            byte_budget,
        ));
        ServerState {
            tpch,
            synth: Mutex::new(SynthServices::default()),
            admission,
            byte_budget,
            requests: AtomicU64::new(0),
            requests_admitted: AtomicU64::new(0),
            shed_queue: AtomicU64::new(0),
            shed_prepare: AtomicU64::new(0),
            wire_errors: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            synth_evictions: AtomicU64::new(0),
            batch_peak_bytes: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            per_reactor: (0..reactors.max(1))
                .map(|_| ReactorCounters::default())
                .collect(),
        }
    }

    /// The queue bound the reactors enforce.
    pub fn max_inflight(&self) -> usize {
        self.admission.max_inflight
    }

    /// Claims one slot of the global queue bound. Returns `false` (and
    /// leaves the count unchanged) when the bound is already reached —
    /// the caller sheds the request. Shared by every reactor, so the
    /// bound holds across the whole server, not per event loop.
    pub fn try_admit(&self) -> bool {
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.admission.max_inflight as u64 {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        true
    }

    /// Releases a slot claimed by [`ServerState::try_admit`] (called
    /// when the reply drains back to its reactor).
    pub fn release_inflight(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    /// The TPC-H service (test observability).
    pub fn tpch_service(&self) -> &PlanService {
        &self.tpch
    }

    /// Executes one decoded request. Infallible at this layer: every
    /// failure becomes a typed [`Response::Error`]. Only requests that
    /// passed the queue bound reach this point — queue-shed requests
    /// are answered inside the reactor and counted in `shed_queue` (and
    /// `requests`), never here.
    pub fn handle(&self, request: &Request) -> Response {
        self.requests_admitted.fetch_add(1, Ordering::Relaxed);
        match request {
            Request::Prepare(wl) => self.with_prepared(wl, |p, cached| Response::Prepared {
                total: p.total().clone(),
                groups: p.memo().num_groups() as u32,
                exprs: p.memo().num_physical() as u32,
                size_bytes: p.size_bytes() as u64,
                cached,
            }),
            Request::Count(wl) => self.with_prepared(wl, |p, _| Response::Count(p.total().clone())),
            Request::Best(wl) => self.with_prepared(wl, |p, _| {
                let (plan, cost) = p.best();
                Response::Best(to_wire_plan(plan), cost)
            }),
            Request::Unrank(wl, rank) => self.with_prepared(wl, |p, _| match p.unrank(rank) {
                Ok(plan) => Response::Plan(to_wire_plan(&plan), p.scaled_cost(&plan)),
                Err(e) => error_response(&e),
            }),
            Request::SampleBatch(wl, seed, k) => {
                if *k > MAX_SAMPLE_BATCH {
                    return Response::error(
                        ErrorCode::BadRequest,
                        format!("batch of {k} exceeds the {MAX_SAMPLE_BATCH} bound"),
                    );
                }
                let (seed, k) = (*seed, *k);
                self.with_prepared(wl, move |p, _| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let items = p
                        .sample_batch(&mut rng, k as usize)
                        .iter()
                        .map(|plan| (to_wire_plan(plan), p.scaled_cost(plan)))
                        .collect();
                    Response::Samples(items)
                })
            }
            Request::Stats => Response::Stats(self.stats()),
        }
    }

    /// Executes one decoded request straight to reply *bytes* — the
    /// path the worker pools and reactors use. For `SampleBatch` within
    /// bounds this streams: plans are drawn into a reusable flat
    /// [`PlanBatch`] (the fixed-width `u64`/`u128` unranking tiers,
    /// exact-`Nat` beyond them; zero steady-state
    /// allocations per draw) and encoded into the reply buffer one at a
    /// time via [`SamplesEncoder`], so a 4096-plan batch never
    /// materializes a tree or a `WirePlan` per plan — peak memory is
    /// the reply plus the flat ids, tracked in
    /// [`ServerState::batch_peak_bytes`]. The produced bytes are
    /// identical to `self.handle(request).encode(request_id)` (the
    /// encoder is byte-compatible and the flat sampler is bit-identical
    /// to the tree sampler), which `tests/serving_stats.rs` asserts.
    /// Every other request defers to [`handle`](Self::handle).
    pub fn handle_encoded(&self, request: &Request, request_id: u64) -> Vec<u8> {
        if let Request::SampleBatch(wl, seed, k) = request {
            if *k <= MAX_SAMPLE_BATCH {
                self.requests_admitted.fetch_add(1, Ordering::Relaxed);
                return self.stream_samples(wl, *seed, *k, request_id);
            }
        }
        self.handle(request).encode(request_id)
    }

    /// The streaming `SampleBatch` body behind
    /// [`handle_encoded`](Self::handle_encoded).
    fn stream_samples(&self, workload: &Workload, seed: u64, k: u32, request_id: u64) -> Vec<u8> {
        let prepared = match self.prepared_for(workload) {
            Ok((prepared, _)) => prepared,
            Err(resp) => return resp.encode(request_id),
        };
        thread_local! {
            /// Per-worker sampling scratch; capacity persists across
            /// requests, so steady-state fills allocate nothing.
            static SCRATCH: std::cell::RefCell<PlanBatch> =
                std::cell::RefCell::new(PlanBatch::new());
        }
        SCRATCH.with(|cell| {
            let mut batch = cell.borrow_mut();
            let mut rng = StdRng::seed_from_u64(seed);
            prepared.sample_batch_flat(&mut rng, k as usize, &mut batch);
            let mut enc = SamplesEncoder::new(request_id);
            for ids in batch.iter() {
                let cost = prepared.scaled_cost_ids(ids);
                enc.push(ids.iter().map(|id| (id.group.0, id.index as u32)), cost);
            }
            let peak = (batch.size_bytes() + enc.len_bytes()) as u64;
            self.batch_peak_bytes.fetch_max(peak, Ordering::Relaxed);
            enc.finish()
        })
    }

    /// Resolves the workload through its service and applies `f`,
    /// mapping every failure (shed, parse, optimize) to a typed error
    /// reply. `f` receives whether the artifact was already cached.
    fn with_prepared(
        &self,
        workload: &Workload,
        f: impl FnOnce(&PreparedQuery, bool) -> Response,
    ) -> Response {
        match self.prepared_for(workload) {
            Ok((prepared, cached)) => f(&prepared, cached),
            Err(resp) => *resp,
        }
    }

    /// Resolves and prepares a workload, applying admission control:
    /// the shared front half of [`with_prepared`](Self::with_prepared)
    /// and the streaming sample path.
    fn prepared_for(
        &self,
        workload: &Workload,
    ) -> Result<(Arc<PreparedQuery>, bool), Box<Response>> {
        let (service, query) = self.resolve(workload)?;
        let cached = service.is_cached(&query);
        if !cached {
            if let Some(denial) = self.deny_preparation(&service) {
                self.shed_prepare.fetch_add(1, Ordering::Relaxed);
                return Err(Box::new(denial));
            }
        }
        service
            .get_or_prepare(&query)
            .map(|prepared| (prepared, cached))
            .map_err(|e| Box::new(error_response(&e)))
    }

    /// Maps a workload to the service that caches it plus the concrete
    /// query spec, without preparing anything.
    fn resolve(
        &self,
        workload: &Workload,
    ) -> Result<(Arc<PlanService>, plansample_query::QuerySpec), Box<Response>> {
        match workload {
            Workload::Sql(sql) => {
                let parsed = plansample_sql::parse(self.tpch.catalog(), sql).map_err(|e| {
                    // `render` quotes the offending line; `error` clamps
                    // it so the reply stays within the frame bound.
                    Box::new(Response::error(ErrorCode::Sql, e.render(sql)))
                })?;
                // The front door serves plan-space operations; execution
                // hints (USEPLAN) have no meaning here.
                Ok((Arc::clone(&self.tpch), parsed.spec))
            }
            Workload::Synthetic {
                topology,
                relations,
                seed,
            } => {
                let min = if *topology == Topology::Cycle { 3 } else { 2 };
                if *relations < min || *relations > MAX_SYNTH_RELATIONS {
                    return Err(Box::new(Response::error(
                        ErrorCode::BadRequest,
                        format!(
                            "synthetic {} workload needs {min}..={MAX_SYNTH_RELATIONS} relations, got {relations}",
                            topology.name()
                        ),
                    )));
                }
                let service = self.synth_service((*topology, *relations, *seed));
                let spec = JoinGraphSpec::new(*topology, *relations as usize, *seed);
                let (_, query) = spec.build();
                Ok((service, query))
            }
        }
    }

    /// The (created-on-demand) service owning one synthetic spec.
    /// Synthetic services hold a single entry — the spec *is* the
    /// query — so their footprint is exactly one artifact, and the map
    /// as a whole is LRU-bounded by `max_synth_services`: past the cap,
    /// the least recently used spec's service is dropped (in-flight
    /// preparations keep their `Arc` alive; only the cache slot goes).
    fn synth_service(&self, key: (Topology, u16, u64)) -> Arc<PlanService> {
        let mut synth = self.synth.lock().expect("synth map poisoned");
        synth.tick += 1;
        let tick = synth.tick;
        if let Some(entry) = synth.map.get_mut(&key) {
            entry.last_used = tick;
            return Arc::clone(&entry.service);
        }
        let cap = self.admission.max_synth_services.max(1);
        while synth.map.len() >= cap {
            let oldest = synth
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("map at cap is non-empty");
            synth.map.remove(&oldest);
            self.synth_evictions.fetch_add(1, Ordering::Relaxed);
        }
        let spec = JoinGraphSpec::new(key.0, key.1 as usize, key.2);
        let (catalog, _) = spec.build();
        let service = Arc::new(PlanService::new(catalog, self.tpch.config().clone(), 1));
        synth.map.insert(
            key,
            SynthEntry {
                service: Arc::clone(&service),
                last_used: tick,
            },
        );
        service
    }

    /// Whether an uncached request must be shed right now, and the
    /// typed reply if so.
    fn deny_preparation(&self, service: &Arc<PlanService>) -> Option<Response> {
        let stats = service.stats();
        if stats.inflight >= self.admission.max_prepares {
            return Some(overloaded(format!(
                "{} first preparations already in flight",
                stats.inflight
            )));
        }
        if let Some(budget) = self.byte_budget {
            let high_water = (budget as f64 * self.admission.byte_high_water) as usize;
            // The byte-budget tie-in applies to the TPC-H service (the
            // one sharing `self.byte_budget`); synthetic services are
            // single-entry and bounded by construction.
            if Arc::ptr_eq(service, &self.tpch) && stats.resident_bytes >= high_water {
                return Some(overloaded(format!(
                    "artifact cache at {} of {} budgeted bytes",
                    stats.resident_bytes, budget
                )));
            }
        }
        None
    }

    /// Snapshot of every counter, for [`Request::Stats`].
    pub fn stats(&self) -> StatsReply {
        let tpch = self.tpch.stats();
        let (synth_services, synth_resident_bytes) = {
            let synth = self.synth.lock().expect("synth map poisoned");
            let bytes: usize = synth
                .map
                .values()
                .map(|e| e.service.stats().resident_bytes)
                .sum();
            (synth.map.len() as u64, bytes as u64)
        };
        StatsReply {
            requests: self.requests.load(Ordering::Relaxed),
            requests_admitted: self.requests_admitted.load(Ordering::Relaxed),
            shed_queue: self.shed_queue.load(Ordering::Relaxed),
            shed_prepare: self.shed_prepare.load(Ordering::Relaxed),
            wire_errors: self.wire_errors.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            hits: tpch.hits,
            misses: tpch.misses,
            coalesced: tpch.coalesced,
            evictions: tpch.evictions,
            entries: tpch.entries as u64,
            resident_bytes: tpch.resident_bytes as u64,
            byte_budget: tpch.byte_budget.unwrap_or(0) as u64,
            inflight_prepares: tpch.inflight as u64,
            synth_services,
            synth_resident_bytes,
            synth_evictions: self.synth_evictions.load(Ordering::Relaxed),
            batch_peak_bytes: self.batch_peak_bytes.load(Ordering::Relaxed),
            per_reactor: self
                .per_reactor
                .iter()
                .map(|r| ReactorStats {
                    requests: r.requests.load(Ordering::Relaxed),
                    connections: r.connections.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// A plan's wire form: its preorder `(group, index)` listing.
pub fn to_wire_plan(plan: &PlanNode) -> WirePlan {
    plan.preorder_ids()
        .iter()
        .map(|id| (id.group.0, id.index as u32))
        .collect()
}

fn overloaded(message: String) -> Response {
    Response::error(ErrorCode::Overloaded, message)
}

fn error_response(e: &Error) -> Response {
    let code = match e {
        Error::Opt(_) => ErrorCode::Optimize,
        _ => ErrorCode::Space,
    };
    Response::error(code, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(max_synth_services: usize) -> ServerState {
        ServerState::new(
            OptimizerConfig::default(),
            4,
            None,
            AdmissionConfig {
                max_synth_services,
                ..AdmissionConfig::default()
            },
            2,
        )
    }

    /// Cheap synthetic workload (2-relation chain) where only the seed
    /// varies — the exact shape of the unbounded-growth attack.
    fn chain(seed: u64) -> Request {
        Request::Count(Workload::Synthetic {
            topology: Topology::Chain,
            relations: 2,
            seed,
        })
    }

    #[test]
    fn synth_map_is_bounded_under_seed_cycling() {
        let state = state(2);
        for seed in 0..5 {
            let reply = state.handle(&chain(seed));
            assert!(matches!(reply, Response::Count(_)), "got {reply:?}");
        }
        let stats = state.stats();
        assert_eq!(
            stats.synth_services, 2,
            "seed cycling must not grow the map past the cap"
        );
        assert_eq!(stats.synth_evictions, 3);
        assert_eq!(stats.requests_admitted, 5);
    }

    #[test]
    fn synth_eviction_order_is_least_recently_used() {
        let state = state(2);
        let evictions = || state.synth_evictions.load(Ordering::Relaxed);
        state.handle(&chain(1));
        state.handle(&chain(2));
        state.handle(&chain(1)); // refresh 1: seed 2 is now the LRU
        state.handle(&chain(3)); // evicts seed 2
        assert_eq!(evictions(), 1);
        state.handle(&chain(1)); // still resident: a hit, no eviction
        assert_eq!(evictions(), 1);
        state.handle(&chain(2)); // re-materializes: evicts seed 3
        assert_eq!(evictions(), 2);
        state.handle(&chain(1)); // the refreshed entry survived both
        assert_eq!(evictions(), 2);
    }

    #[test]
    fn streamed_sample_batch_bytes_match_the_tree_path() {
        let state = state(4);
        let wl = Workload::Synthetic {
            topology: Topology::Chain,
            relations: 5,
            seed: 9,
        };
        for k in [0u32, 1, 7, 64] {
            let request = Request::SampleBatch(wl.clone(), 123, k);
            let streamed = state.handle_encoded(&request, 42);
            let tree = state.handle(&request).encode(42);
            assert_eq!(streamed, tree, "k={k}");
        }
        // Oversized batches fall through to the ordinary error path.
        let too_big = Request::SampleBatch(wl, 1, MAX_SAMPLE_BATCH + 1);
        assert_eq!(
            state.handle_encoded(&too_big, 7),
            state.handle(&too_big).encode(7)
        );
    }

    #[test]
    fn sampling_peak_bytes_is_tracked_and_bounded() {
        let state = state(4);
        let wl = Workload::Synthetic {
            topology: Topology::Chain,
            relations: 6,
            seed: 2,
        };
        assert_eq!(state.stats().batch_peak_bytes, 0);
        state.handle_encoded(&Request::SampleBatch(wl.clone(), 5, 64), 1);
        let small = state.stats().batch_peak_bytes;
        assert!(small > 0, "peak counter never moved");
        state.handle_encoded(&Request::SampleBatch(wl.clone(), 5, 4096), 2);
        let large = state.stats().batch_peak_bytes;
        assert!(large >= small, "fetch_max is monotone");
        // Streaming keeps the peak at flat-ids + reply: for a 6-relation
        // chain every plan is ≤ a few dozen nodes, so 4096 plans must
        // stay well under a megabyte per node-u32 — no per-plan tree or
        // WirePlan materialization.
        assert!(
            large < 16 << 20,
            "peak {large} bytes suggests the batch was materialized"
        );
        // A later smaller batch never lowers the high-water mark.
        state.handle_encoded(&Request::SampleBatch(wl, 5, 1), 3);
        assert_eq!(state.stats().batch_peak_bytes, large);
    }

    #[test]
    fn global_queue_bound_admits_then_sheds() {
        let tight = ServerState::new(
            OptimizerConfig::default(),
            4,
            None,
            AdmissionConfig {
                max_inflight: 2,
                ..AdmissionConfig::default()
            },
            1,
        );
        assert!(tight.try_admit());
        assert!(tight.try_admit());
        assert!(!tight.try_admit(), "third request exceeds the bound");
        tight.release_inflight();
        assert!(tight.try_admit(), "released slot is reusable");
    }
}
