//! Experiment E1 — regenerates **Table 1** of the paper:
//! "Parameters of search spaces of TPC-H join queries".
//!
//! For each of Q5, Q7, Q8, Q9 — first without cross products, then with
//! — this binary optimizes the query against SF-1 TPC-H statistics,
//! counts the exact plan space, draws 10 000 uniform plans, and reports
//! min/mean/max scaled cost plus the fractions within 2× and 10× of the
//! optimum. A second table attaches seeded-bootstrap 95% confidence
//! intervals to the q01/q50/q99 scaled-cost quantiles — the sampling
//! noise the headline numbers carry (999 resamples per row,
//! deterministic in `EXPERIMENT_SEED`, recorded in
//! `docs/EXPERIMENTS.md` §E1).
//!
//! ```text
//! cargo run --release -p plansample-bench --bin table1
//! ```

use plansample_bench::{fmt_cost, join_queries, prepare, sample_scaled_costs, EXPERIMENT_SEED};
use plansample_stats::{bootstrap_quantile_cis, Summary};
use std::time::Instant;

const SAMPLES: usize = 10_000;
const CI_LEVELS: [f64; 3] = [0.01, 0.5, 0.99];
const CI_REPLICATES: usize = 999;

fn main() {
    let (catalog, _) = plansample_catalog::tpch::catalog();

    println!("Table 1: Parameters of search spaces of TPC-H join queries");
    println!("({SAMPLES} uniform samples per row; costs scaled to the optimizer's plan = 1.0)");
    println!();
    println!(
        "{:<6} {:>22} {:>8} {:>12} {:>12} {:>9} {:>9}",
        "Query", "#Plans", "Min", "Mean", "Max", "costs<=2", "costs<=10"
    );

    let mut ci_rows: Vec<String> = Vec::new();
    for cross_products in [false, true] {
        for (name, query) in join_queries(&catalog) {
            let t0 = Instant::now();
            let prepared = prepare(&catalog, name, query, cross_products);
            let space = prepared.space();
            let total = space.total().clone();
            let costs = sample_scaled_costs(&prepared, SAMPLES, EXPERIMENT_SEED);
            let s = Summary::of(&costs);
            println!(
                "{:<6} {:>22} {:>8} {:>12} {:>12} {:>8.2}% {:>8.2}%   [{:.1?}]",
                name,
                total.to_string(),
                fmt_cost(s.min()),
                fmt_cost(s.mean()),
                fmt_cost(s.max()),
                100.0 * s.fraction_below(2.0),
                100.0 * s.fraction_below(10.0),
                t0.elapsed(),
            );
            let cis =
                bootstrap_quantile_cis(&costs, &CI_LEVELS, CI_REPLICATES, 0.95, EXPERIMENT_SEED)
                    .expect("cost sample is non-empty");
            let label = if cross_products {
                format!("{name}+CP")
            } else {
                name.to_string()
            };
            ci_rows.push(format!(
                "{label:<6} {}",
                cis.iter()
                    .map(|ci| format!(
                        "{:>8} [{:>8}, {:>8}]",
                        fmt_cost(ci.point),
                        fmt_cost(ci.lo),
                        fmt_cost(ci.hi)
                    ))
                    .collect::<Vec<_>>()
                    .join("  ")
            ));
        }
        if !cross_products {
            println!("{:-<90}", "");
        }
    }
    println!();
    println!("rows 1-4: no Cartesian products; rows 5-8: including Cartesian products");
    println!();
    println!(
        "Scaled-cost quantiles with seeded-bootstrap 95% CIs \
         ({CI_REPLICATES} resamples, percentile method):"
    );
    println!(
        "{:<6} {:>28} {:>30} {:>30}",
        "Query", "q01 [95% CI]", "q50 [95% CI]", "q99 [95% CI]"
    );
    for row in &ci_rows {
        println!("{row}");
    }
}
