//! Property tests: all three join algorithms implement the same join, and
//! both aggregation algorithms implement the same aggregation (given
//! their property obligations are met).

use plansample_catalog::Datum::{self, Int};
use plansample_catalog::TableId;
use plansample_exec::{AggSpec, Database, ExecNode, JoinSpec, Side, Table};
use plansample_query::AggFunc;
use proptest::prelude::*;

fn arb_table(
    width: usize,
    max_rows: usize,
    key_domain: i64,
) -> impl Strategy<Value = Vec<Vec<Datum>>> {
    proptest::collection::vec(
        proptest::collection::vec((0..key_domain).prop_map(Int), width..=width),
        0..=max_rows,
    )
}

fn db_two(w0: usize, r0: Vec<Vec<Datum>>, w1: usize, r1: Vec<Vec<Datum>>) -> Database {
    let mut db = Database::new();
    db.insert(TableId(0), Table::from_rows(w0, r0).unwrap());
    db.insert(TableId(1), Table::from_rows(w1, r1).unwrap());
    db
}

fn scan(t: u32) -> Box<ExecNode> {
    Box::new(ExecNode::TableScan {
        table: TableId(t),
        filters: vec![],
    })
}

fn spec(lw: usize, rw: usize, pairs: Vec<(usize, usize)>) -> JoinSpec {
    JoinSpec {
        eq_pairs: pairs,
        assemble: vec![(Side::Left, 0, lw), (Side::Right, 0, rw)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn three_join_algorithms_agree(
        l in arb_table(2, 24, 6),
        r in arb_table(2, 24, 6),
    ) {
        let db = db_two(2, l, 2, r);
        let s = spec(2, 2, vec![(0, 0)]);

        let nlj = ExecNode::NestedLoopJoin { left: scan(0), right: scan(1), spec: s.clone() };
        let hj = ExecNode::HashJoin { left: scan(0), right: scan(1), spec: s.clone() };
        let mj = ExecNode::MergeJoin {
            left: Box::new(ExecNode::Sort { input: scan(0), keys: vec![0] }),
            right: Box::new(ExecNode::Sort { input: scan(1), keys: vec![0] }),
            left_key: 0,
            right_key: 0,
            spec: s,
        };

        let a = nlj.execute(&db).unwrap();
        let b = hj.execute(&db).unwrap();
        let c = mj.execute(&db).unwrap();
        prop_assert!(a.multiset_eq(&b), "NLJ vs HashJoin");
        prop_assert!(a.multiset_eq(&c), "NLJ vs MergeJoin");
    }

    #[test]
    fn join_with_two_predicates_agrees(
        l in arb_table(2, 16, 4),
        r in arb_table(2, 16, 4),
    ) {
        let db = db_two(2, l, 2, r);
        let s = spec(2, 2, vec![(0, 0), (1, 1)]);
        let nlj = ExecNode::NestedLoopJoin { left: scan(0), right: scan(1), spec: s.clone() };
        let hj = ExecNode::HashJoin { left: scan(0), right: scan(1), spec: s.clone() };
        let mj = ExecNode::MergeJoin {
            left: Box::new(ExecNode::Sort { input: scan(0), keys: vec![0] }),
            right: Box::new(ExecNode::Sort { input: scan(1), keys: vec![0] }),
            left_key: 0,
            right_key: 0,
            spec: s,
        };
        let a = nlj.execute(&db).unwrap();
        prop_assert!(a.multiset_eq(&hj.execute(&db).unwrap()));
        prop_assert!(a.multiset_eq(&mj.execute(&db).unwrap()));
    }

    #[test]
    fn join_commutes_as_multiset(
        l in arb_table(1, 20, 5),
        r in arb_table(1, 20, 5),
    ) {
        let db = db_two(1, l, 1, r);
        // A ⋈ B assembled as (A,B) vs B ⋈ A assembled back as (A,B).
        let ab = ExecNode::HashJoin {
            left: scan(0),
            right: scan(1),
            spec: spec(1, 1, vec![(0, 0)]),
        };
        let ba = ExecNode::HashJoin {
            left: scan(1),
            right: scan(0),
            spec: JoinSpec {
                eq_pairs: vec![(0, 0)],
                assemble: vec![(Side::Right, 0, 1), (Side::Left, 0, 1)],
            },
        };
        let x = ab.execute(&db).unwrap();
        let y = ba.execute(&db).unwrap();
        prop_assert!(x.multiset_eq(&y));
    }

    #[test]
    fn aggregation_algorithms_agree(rows in arb_table(2, 32, 5)) {
        let mut db = Database::new();
        db.insert(TableId(0), Table::from_rows(2, rows).unwrap());
        let aggs = vec![
            AggSpec { func: AggFunc::Sum, arg: Some(1) },
            AggSpec { func: AggFunc::CountStar, arg: None },
            AggSpec { func: AggFunc::Min, arg: Some(1) },
            AggSpec { func: AggFunc::Max, arg: Some(1) },
        ];
        let hash = ExecNode::HashAgg { input: scan(0), group: vec![0], aggs: aggs.clone() };
        let stream = ExecNode::StreamAgg {
            input: Box::new(ExecNode::Sort { input: scan(0), keys: vec![0] }),
            group: vec![0],
            aggs,
        };
        prop_assert!(hash.execute(&db).unwrap().multiset_eq(&stream.execute(&db).unwrap()));
    }

    #[test]
    fn sort_preserves_multiset(rows in arb_table(2, 32, 10)) {
        let mut db = Database::new();
        db.insert(TableId(0), Table::from_rows(2, rows).unwrap());
        let sorted = ExecNode::Sort { input: scan(0), keys: vec![1, 0] }.execute(&db).unwrap();
        let plain = scan(0).execute(&db).unwrap();
        prop_assert!(sorted.multiset_eq(&plain));
        // and really is sorted on the key
        for w in sorted.rows().windows(2) {
            prop_assert!(w[0][1] <= w[1][1]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pipelined (Volcano) engine and the materialized engine are
    /// independent implementations of the same algebra: they must agree
    /// on arbitrary join + aggregation pipelines.
    #[test]
    fn pipelined_engine_agrees_with_materialized(
        l in arb_table(2, 20, 5),
        r in arb_table(2, 20, 5),
    ) {
        let db = db_two(2, l, 2, r);
        let join = ExecNode::HashJoin {
            left: scan(0),
            right: scan(1),
            spec: spec(2, 2, vec![(0, 0)]),
        };
        let plan = ExecNode::StreamAgg {
            input: Box::new(ExecNode::Sort { input: Box::new(join), keys: vec![1] }),
            group: vec![1],
            aggs: vec![
                AggSpec { func: AggFunc::CountStar, arg: None },
                AggSpec { func: AggFunc::Sum, arg: Some(3) },
            ],
        };
        let a = plan.execute(&db).unwrap();
        let b = plan.execute_pipelined(&db).unwrap();
        prop_assert!(a.multiset_eq(&b), "{} vs {} rows", a.len(), b.len());
    }

    #[test]
    fn pipelined_merge_join_agrees(
        l in arb_table(1, 24, 4),
        r in arb_table(1, 24, 4),
    ) {
        let db = db_two(1, l, 1, r);
        let plan = ExecNode::MergeJoin {
            left: Box::new(ExecNode::Sort { input: scan(0), keys: vec![0] }),
            right: Box::new(ExecNode::Sort { input: scan(1), keys: vec![0] }),
            left_key: 0,
            right_key: 0,
            spec: spec(1, 1, vec![(0, 0)]),
        };
        let a = plan.execute(&db).unwrap();
        let b = plan.execute_pipelined(&db).unwrap();
        prop_assert!(a.multiset_eq(&b));
    }
}
