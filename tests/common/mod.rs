//! Shared helpers for the statistical validation suites: building
//! synthetic spaces and collecting sampling frequency spectra.

#![allow(dead_code)] // each test binary uses a different subset

use plansample::PlanSpace;
use plansample_bignum::Nat;
use plansample_catalog::Catalog;
use plansample_datagen::joingraph::JoinGraphSpec;
use plansample_memo::Memo;
use plansample_optimizer::{optimize, OptimizerConfig};
use plansample_query::QuerySpec;
use rand::rngs::StdRng;

/// A synthetic join-graph query optimized into a memo, with the plan
/// space built exactly once (the expensive counting pass is shared by
/// every measurement on the fixture). The memo lives solely inside the
/// space's `Arc` — no second copy.
pub struct SynthSpace {
    pub catalog: Catalog,
    pub query: QuerySpec,
    pub best_cost: f64,
    pub label: String,
    space: PlanSpace,
}

impl SynthSpace {
    /// Generates, optimizes, and wraps the spec's query.
    pub fn build(spec: JoinGraphSpec) -> SynthSpace {
        let (catalog, query) = spec.build();
        let optimized = optimize(&catalog, &query, &OptimizerConfig::default())
            .expect("synthetic queries optimize");
        let space = PlanSpace::build_shared(
            std::sync::Arc::new(optimized.memo),
            std::sync::Arc::new(query.clone()),
        )
        .expect("optimizer memos are acyclic");
        SynthSpace {
            catalog,
            query,
            best_cost: optimized.best_cost,
            label: spec.label(),
            space,
        }
    }

    /// The optimized memo (owned by the shared plan space).
    pub fn memo(&self) -> &Memo {
        self.space.memo()
    }

    /// The plan space over this memo, built once at fixture
    /// construction.
    pub fn space(&self) -> &PlanSpace {
        &self.space
    }
}

/// Which sampler to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampler {
    /// The paper's rank-based uniform sampler.
    Unranking,
    /// The biased uniform-per-step random walk baseline.
    NaiveWalk,
}

/// Draws `draws` plans and tallies them per exact rank. Only for spaces
/// whose total fits comfortably in memory as one bucket per plan.
pub fn rank_spectrum(
    space: &PlanSpace,
    sampler: Sampler,
    draws: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let n = space
        .total()
        .to_u64()
        .expect("per-rank spectrum needs a u64-sized space") as usize;
    let mut freq = vec![0usize; n];
    for _ in 0..draws {
        let rank = sample_rank(space, sampler, rng);
        freq[rank.to_u64().unwrap() as usize] += 1;
    }
    freq
}

/// One draw through the full sampler pipeline: both arms materialize a
/// plan and rank it back, so `random_below`, `unrank`, and `rank` are
/// all exercised (not just the RNG).
fn sample_rank(space: &PlanSpace, sampler: Sampler, rng: &mut StdRng) -> Nat {
    let plan = match sampler {
        Sampler::Unranking => space.sample(rng),
        Sampler::NaiveWalk => space.sample_naive_walk(rng).expect("complete space"),
    };
    space.rank(&plan).expect("sampled plans are members")
}

/// Draws `draws` plans and tallies them into `buckets` equal rank
/// intervals — the scalable spectrum for spaces too large to tally per
/// plan (uniform ranks stay uniform over equal rank intervals).
pub fn bucket_spectrum(
    space: &PlanSpace,
    sampler: Sampler,
    buckets: usize,
    draws: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let mut freq = vec![0usize; buckets];
    let b = Nat::from(buckets);
    for _ in 0..draws {
        let rank = sample_rank(space, sampler, rng);
        let (bucket, _) = (&rank * &b).div_rem(space.total());
        freq[bucket.to_u64().expect("bucket < buckets") as usize] += 1;
    }
    freq
}

/// Picks sub-space roots for uniformity tests: up to two physical
/// expressions from the memo's root group plus one from an interior
/// (non-root) join group, all with rooted counts inside `range`.
pub fn pick_subspace_roots(
    memo: &Memo,
    space: &PlanSpace,
    n_rels: usize,
    range: std::ops::RangeInclusive<u64>,
) -> Vec<plansample_memo::PhysId> {
    use plansample_memo::GroupId;
    let in_range = |id: plansample_memo::PhysId| {
        space
            .count_rooted(id)
            .to_u64()
            .is_some_and(|c| range.contains(&c))
    };
    let mut roots: Vec<_> = memo
        .group(memo.root())
        .phys_iter()
        .map(|(id, _)| id)
        .filter(|&id| in_range(id))
        .take(2)
        .collect();
    let interior = (0..memo.num_groups() as u32)
        .map(GroupId)
        .filter(|&g| g != memo.root())
        .filter(|&g| {
            memo.group(g)
                .key
                .rels()
                .is_some_and(|s| s.len() >= 2 && s.len() < n_rels)
        })
        .flat_map(|g| memo.group(g).phys_iter().map(|(id, _)| id))
        .find(|&id| in_range(id));
    roots.extend(interior);
    roots
}

/// Per-local-rank spectrum of the sub-space rooted at `v` under
/// `sample_rooted`.
pub fn rooted_spectrum(
    space: &PlanSpace,
    v: plansample_memo::PhysId,
    draws: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let n = space
        .count_rooted(v)
        .to_u64()
        .expect("per-rank spectrum needs a u64-sized sub-space") as usize;
    let mut freq = vec![0usize; n];
    for _ in 0..draws {
        let plan = space.sample_rooted(rng, v);
        assert_eq!(plan.id, v, "sub-space root is pinned");
        let r = space.rank_rooted(&plan).expect("rooted plans rank");
        freq[r.to_u64().unwrap() as usize] += 1;
    }
    freq
}

/// Scaled plan costs (optimum = 1.0) for `draws` uniform samples.
/// Takes the caller's already-built `space` — `PlanSpace::build` is the
/// expensive step on large memos, so it must not be repeated per call.
pub fn sampled_scaled_costs(
    synth: &SynthSpace,
    space: &PlanSpace,
    draws: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    (0..draws)
        .map(|_| space.sample(rng).total_cost(synth.memo()) / synth.best_cost)
        .collect()
}

/// The fixed seed for the statistical suites, overridable via
/// `PLANSAMPLE_STATS_SEED` (the CI statistical-tests job pins it).
pub fn stats_seed() -> u64 {
    std::env::var("PLANSAMPLE_STATS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20000)
}

/// Derives a per-test rng so suites stay independent of test ordering.
pub fn seeded_rng(salt: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(stats_seed() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// `true` when the slow statistical suites should run: the
/// `PLANSAMPLE_STATISTICAL` environment variable is set non-empty and
/// not `"0"` (the dedicated CI job sets it; tier-1 `cargo test` skips).
pub fn statistical_enabled() -> bool {
    std::env::var("PLANSAMPLE_STATISTICAL").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Standard skip preamble for gated tests; returns `true` to proceed.
pub fn gate(test: &str) -> bool {
    if statistical_enabled() {
        true
    } else {
        eprintln!("{test}: skipped (set PLANSAMPLE_STATISTICAL=1 to run)");
        false
    }
}
