//! Ergonomic construction of [`QuerySpec`]s with name resolution and
//! selectivity derivation.

use crate::{
    AggExpr, AggFunc, Aggregate, CmpOp, ColRef, Filter, JoinEdge, QuerySpec, RelId, RelRef, RelSet,
};
use plansample_catalog::{Catalog, CatalogError, Datum};
use std::collections::HashSet;
use std::fmt;

/// System-R's magic selectivity for range predicates without histograms.
const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Errors raised while assembling a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Table/column lookup failed.
    Catalog(CatalogError),
    /// Two relations were given the same alias.
    DuplicateAlias(String),
    /// An alias used in a predicate is not declared in the FROM list.
    UnknownAlias(String),
    /// The query has more relations than [`RelSet::MAX_RELS`].
    TooManyRelations(usize),
    /// `COUNT(*)` aside, aggregate functions need an argument.
    MissingAggregateArgument(AggFunc),
    /// A selectivity outside `(0, 1]` was supplied.
    BadSelectivity(f64),
    /// The query has no relations.
    NoRelations,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Catalog(e) => write!(f, "{e}"),
            QueryError::DuplicateAlias(a) => write!(f, "duplicate alias `{a}`"),
            QueryError::UnknownAlias(a) => write!(f, "unknown alias `{a}`"),
            QueryError::TooManyRelations(n) => {
                write!(f, "{n} relations exceed the {} limit", RelSet::MAX_RELS)
            }
            QueryError::MissingAggregateArgument(func) => {
                write!(f, "{} requires an argument", func.name())
            }
            QueryError::BadSelectivity(s) => write!(f, "selectivity {s} outside (0, 1]"),
            QueryError::NoRelations => write!(f, "query has no relations"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<CatalogError> for QueryError {
    fn from(e: CatalogError) -> Self {
        QueryError::Catalog(e)
    }
}

/// Builder for [`QuerySpec`], carrying the catalog for name resolution.
///
/// ```
/// use plansample_catalog::tpch;
/// use plansample_query::QueryBuilder;
///
/// let (cat, _t) = tpch::catalog();
/// let mut qb = QueryBuilder::new(&cat);
/// qb.rel("nation", Some("n1")).unwrap();
/// qb.rel("nation", Some("n2")).unwrap();
/// qb.join(("n1", "n_regionkey"), ("n2", "n_regionkey")).unwrap();
/// let spec = qb.build().unwrap();
/// assert_eq!(spec.relations.len(), 2);
/// ```
pub struct QueryBuilder<'a> {
    catalog: &'a Catalog,
    spec: QuerySpec,
}

impl<'a> QueryBuilder<'a> {
    /// Starts an empty query against `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        QueryBuilder {
            catalog,
            spec: QuerySpec {
                relations: Vec::new(),
                join_edges: Vec::new(),
                filters: Vec::new(),
                aggregate: None,
                projection: None,
            },
        }
    }

    /// Adds a relation instance; `alias` defaults to the table name.
    pub fn rel(&mut self, table: &str, alias: Option<&str>) -> Result<RelId, QueryError> {
        let (tid, _) = self.catalog.table_by_name(table)?;
        let alias = alias.unwrap_or(table).to_string();
        if self.spec.relations.iter().any(|r| r.alias == alias) {
            return Err(QueryError::DuplicateAlias(alias));
        }
        if self.spec.relations.len() >= RelSet::MAX_RELS {
            return Err(QueryError::TooManyRelations(self.spec.relations.len() + 1));
        }
        let id = RelId(self.spec.relations.len() as u32);
        self.spec.relations.push(RelRef { table: tid, alias });
        Ok(id)
    }

    fn resolve(&self, (alias, column): (&str, &str)) -> Result<ColRef, QueryError> {
        let (i, rel) = self
            .spec
            .relations
            .iter()
            .enumerate()
            .find(|(_, r)| r.alias == alias)
            .ok_or_else(|| QueryError::UnknownAlias(alias.to_string()))?;
        let col = self
            .catalog
            .table(rel.table)
            .column_index(column)
            .ok_or_else(|| CatalogError::UnknownColumn {
                table: alias.to_string(),
                column: column.to_string(),
            })?;
        Ok(ColRef {
            rel: RelId(i as u32),
            col: col as u32,
        })
    }

    fn ndv(&self, col: ColRef) -> u64 {
        let rel = &self.spec.relations[col.rel.idx()];
        self.catalog
            .table(rel.table)
            .column(col.col_idx())
            .ndv
            .max(1)
    }

    /// Adds an equality join edge; selectivity `1 / max(ndv_l, ndv_r)`.
    pub fn join(&mut self, left: (&str, &str), right: (&str, &str)) -> Result<(), QueryError> {
        let l = self.resolve(left)?;
        let r = self.resolve(right)?;
        let selectivity = 1.0 / self.ndv(l).max(self.ndv(r)) as f64;
        self.spec.join_edges.push(JoinEdge {
            left: l,
            right: r,
            selectivity,
        });
        Ok(())
    }

    /// Adds a filter with a derived selectivity: `1/ndv` for `=`,
    /// `1 - 1/ndv` for `<>`, the System-R `1/3` for ranges.
    pub fn filter(
        &mut self,
        col: (&str, &str),
        op: CmpOp,
        value: impl Into<Datum>,
    ) -> Result<(), QueryError> {
        let c = self.resolve(col)?;
        let ndv = self.ndv(c) as f64;
        let selectivity = match op {
            CmpOp::Eq => 1.0 / ndv,
            CmpOp::Ne => (1.0 - 1.0 / ndv).max(1.0 / ndv),
            _ => RANGE_SELECTIVITY,
        };
        self.spec.filters.push(Filter {
            col: c,
            op,
            value: value.into(),
            selectivity,
        });
        Ok(())
    }

    /// Adds a filter with an explicit selectivity (e.g. a date range whose
    /// fraction is known from the workload definition).
    pub fn filter_sel(
        &mut self,
        col: (&str, &str),
        op: CmpOp,
        value: impl Into<Datum>,
        selectivity: f64,
    ) -> Result<(), QueryError> {
        if !(selectivity > 0.0 && selectivity <= 1.0) {
            return Err(QueryError::BadSelectivity(selectivity));
        }
        let c = self.resolve(col)?;
        self.spec.filters.push(Filter {
            col: c,
            op,
            value: value.into(),
            selectivity,
        });
        Ok(())
    }

    /// Installs a group-by + aggregate list on top of the block.
    pub fn aggregate(
        &mut self,
        group_by: &[(&str, &str)],
        aggs: &[(AggFunc, Option<(&str, &str)>)],
    ) -> Result<(), QueryError> {
        let group_by = group_by
            .iter()
            .map(|&c| self.resolve(c))
            .collect::<Result<Vec<_>, _>>()?;
        let aggs = aggs
            .iter()
            .map(|&(func, arg)| {
                let arg = match (func, arg) {
                    (AggFunc::CountStar, _) => None,
                    (f, None) => return Err(QueryError::MissingAggregateArgument(f)),
                    (_, Some(c)) => Some(self.resolve(c)?),
                };
                Ok(AggExpr { func, arg })
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.spec.aggregate = Some(Aggregate { group_by, aggs });
        Ok(())
    }

    /// Installs an explicit output projection.
    pub fn project(&mut self, cols: &[(&str, &str)]) -> Result<(), QueryError> {
        let cols = cols
            .iter()
            .map(|&c| self.resolve(c))
            .collect::<Result<Vec<_>, _>>()?;
        self.spec.projection = Some(cols);
        Ok(())
    }

    /// Finalizes the spec, checking global invariants.
    pub fn build(self) -> Result<QuerySpec, QueryError> {
        if self.spec.relations.is_empty() {
            return Err(QueryError::NoRelations);
        }
        let mut aliases = HashSet::new();
        for r in &self.spec.relations {
            if !aliases.insert(r.alias.as_str()) {
                return Err(QueryError::DuplicateAlias(r.alias.clone()));
            }
        }
        Ok(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_catalog::tpch;

    #[test]
    fn builds_self_join() {
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("nation", Some("n1")).unwrap();
        qb.rel("nation", Some("n2")).unwrap();
        qb.join(("n1", "n_regionkey"), ("n2", "n_regionkey"))
            .unwrap();
        let spec = qb.build().unwrap();
        assert_eq!(spec.relations.len(), 2);
        assert_eq!(spec.join_edges.len(), 1);
        // both endpoints have ndv 5 -> selectivity 1/5
        assert!((spec.join_edges[0].selectivity - 0.2).abs() < 1e-12);
    }

    #[test]
    fn duplicate_alias_rejected() {
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("nation", None).unwrap();
        assert_eq!(
            qb.rel("nation", None),
            Err(QueryError::DuplicateAlias("nation".into()))
        );
    }

    #[test]
    fn unknown_names_rejected() {
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        assert!(matches!(qb.rel("nope", None), Err(QueryError::Catalog(_))));
        qb.rel("nation", None).unwrap();
        assert!(matches!(
            qb.join(("bogus", "x"), ("nation", "n_name")),
            Err(QueryError::UnknownAlias(_))
        ));
        assert!(matches!(
            qb.filter(("nation", "bogus_col"), CmpOp::Eq, 1i64),
            Err(QueryError::Catalog(_))
        ));
    }

    #[test]
    fn filter_selectivities_derived_from_ndv() {
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("region", None).unwrap();
        qb.filter(("region", "r_name"), CmpOp::Eq, "ASIA").unwrap();
        qb.filter(("region", "r_regionkey"), CmpOp::Lt, 3i64)
            .unwrap();
        let spec = qb.build().unwrap();
        assert!((spec.filters[0].selectivity - 0.2).abs() < 1e-12);
        assert!((spec.filters[1].selectivity - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_selectivity_validated() {
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("orders", None).unwrap();
        assert!(matches!(
            qb.filter_sel(("orders", "o_orderdate"), CmpOp::Ge, 100i64, 1.5),
            Err(QueryError::BadSelectivity(_))
        ));
        qb.filter_sel(("orders", "o_orderdate"), CmpOp::Ge, 100i64, 0.15)
            .unwrap();
        assert!((qb.build().unwrap().filters[0].selectivity - 0.15).abs() < 1e-12);
    }

    #[test]
    fn aggregate_validation() {
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("lineitem", Some("l")).unwrap();
        assert!(matches!(
            qb.aggregate(&[], &[(AggFunc::Sum, None)]),
            Err(QueryError::MissingAggregateArgument(AggFunc::Sum))
        ));
        qb.aggregate(
            &[("l", "l_suppkey")],
            &[
                (AggFunc::Sum, Some(("l", "l_extendedprice"))),
                (AggFunc::CountStar, None),
            ],
        )
        .unwrap();
        let spec = qb.build().unwrap();
        let agg = spec.aggregate.unwrap();
        assert_eq!(agg.group_by.len(), 1);
        assert_eq!(agg.aggs.len(), 2);
        assert!(agg.aggs[1].arg.is_none());
    }

    #[test]
    fn empty_query_rejected() {
        let (cat, _) = tpch::catalog();
        let qb = QueryBuilder::new(&cat);
        assert_eq!(qb.build().unwrap_err(), QueryError::NoRelations);
    }

    #[test]
    fn projection_resolves() {
        let (cat, _) = tpch::catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.rel("nation", None).unwrap();
        qb.project(&[("nation", "n_name")]).unwrap();
        let spec = qb.build().unwrap();
        assert_eq!(spec.projection.unwrap().len(), 1);
    }
}
