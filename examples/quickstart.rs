//! Quickstart: prepare a query once, then count, enumerate, page,
//! unrank, rank, and sample execution plans from the one artifact.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use plansample::PreparedQuery;
use plansample_bignum::Nat;
use plansample_catalog::{table, Catalog, ColType};
use plansample_optimizer::OptimizerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A catalog: two tables, an index on each key.
    let mut catalog = Catalog::new();
    catalog
        .add_table(
            table("orders", 10_000)
                .col("o_id", ColType::Int, 10_000)
                .col("o_customer", ColType::Int, 500)
                .index_on(0)
                .build(),
        )
        .unwrap();
    catalog
        .add_table(
            table("items", 40_000)
                .col("i_order", ColType::Int, 10_000)
                .col("i_price", ColType::Int, 2_000)
                .index_on(0)
                .build(),
        )
        .unwrap();

    // 2. A query: orders ⋈ items.
    let mut qb = plansample_query::QueryBuilder::new(&catalog);
    qb.rel("orders", Some("o")).unwrap();
    qb.rel("items", Some("i")).unwrap();
    qb.join(("o", "o_id"), ("i", "i_order")).unwrap();
    let query = qb.build().unwrap();

    // 3. Prepare: ONE optimizer run builds a memo encoding EVERY plan
    //    considered, post-processed into an owned artifact. Everything
    //    below reuses it — no further optimization happens.
    let prepared = PreparedQuery::prepare(&catalog, &query, &OptimizerConfig::default()).unwrap();
    let (best, best_cost) = prepared.best();
    println!("optimizer's plan (cost {best_cost:.0}):");
    println!("{}", best.render(prepared.memo()));
    println!(
        "the memo encodes {} complete execution plans\n",
        prepared.total()
    );

    // 4. Enumerate the whole space (it is small here).
    for (i, plan) in prepared.enumerate().enumerate() {
        let ops: Vec<String> = plan
            .preorder_ids()
            .iter()
            .map(|id| format!("{}[{id}]", prepared.memo().phys(*id).op.name()))
            .collect();
        println!(
            "plan {i:>2}: cost {:>8.0}  {}",
            plan.total_cost(prepared.memo()),
            ops.join(" ")
        );
    }

    // 5. Resume anywhere: a cursor is positioned by rank, so paging into
    //    the middle of a space costs one unranking, not a walk from 0.
    let mut cursor = prepared.enumerate_from(Nat::from(4u64));
    let page = cursor.next_page(3);
    println!(
        "\npage of {} plans resumed at rank 4 (cursor now at rank {})",
        page.len(),
        cursor.next_rank()
    );

    // 6. Unrank / rank are a bijection.
    let plan7 = prepared.unrank(&Nat::from(7u64)).unwrap();
    assert_eq!(prepared.rank(&plan7).unwrap(), Nat::from(7u64));
    println!("\nplan number 7, reconstructed by unranking:");
    println!("{}", plan7.render(prepared.memo()));

    // 7. Uniform sampling: every plan with probability exactly 1/N —
    //    batched, and safe to run from many threads sharing the artifact.
    let mut rng = StdRng::seed_from_u64(1);
    for sample in prepared.sample_batch(&mut rng, 3) {
        println!(
            "uniformly sampled plan: number {} of {} (scaled cost {:.2})",
            prepared.rank(&sample).unwrap(),
            prepared.total(),
            prepared.scaled_cost(&sample)
        );
    }
}
