//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (`table1` → Table 1, `figure4` → Figure 4 and the §5 shape
//! analysis, `ablation_naive`/`ablation_pruning` → sampler and pruning
//! ablations); `docs/EXPERIMENTS.md` records their measured outcomes
//! against the paper's claims. The Criterion benches under `benches/`
//! gate the engineering contracts of `docs/DESIGN.md`: `build_scaling`
//! asserts the flat-layout speedup, the ≤ 120 bytes/expr footprint
//! (DESIGN.md §6), and the parallel-build speedup (DESIGN.md §5);
//! `prepared` asserts the ≥ 100× serving amortization (DESIGN.md §7).

#![warn(missing_docs)]

use plansample::PreparedQuery;
use plansample_catalog::Catalog;
use plansample_optimizer::OptimizerConfig;
use plansample_query::QuerySpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A labelled [`PreparedQuery`]: one optimization pass, reused by every
/// measurement. Dereferences to the artifact, so all of its counting /
/// enumerating / sampling surface is available directly.
pub struct Prepared {
    /// Query label (`"Q5"` …).
    pub name: &'static str,
    prepared: PreparedQuery,
}

impl std::ops::Deref for Prepared {
    type Target = PreparedQuery;

    fn deref(&self) -> &PreparedQuery {
        &self.prepared
    }
}

/// The seed used by all reported experiments (so printed numbers are
/// reproducible run-to-run).
pub const EXPERIMENT_SEED: u64 = 20000; // SIGMOD 2000

/// Optimizes one TPC-H query under the given cross-product policy.
pub fn prepare(
    catalog: &Catalog,
    name: &'static str,
    query: QuerySpec,
    cross_products: bool,
) -> Prepared {
    let config = if cross_products {
        OptimizerConfig::with_cross_products()
    } else {
        OptimizerConfig::default()
    };
    let prepared =
        PreparedQuery::prepare(catalog, &query, &config).expect("TPC-H queries optimize");
    Prepared { name, prepared }
}

/// The paper's four join-intensive queries (Table 1 rows), in order.
pub fn join_queries(catalog: &Catalog) -> Vec<(&'static str, QuerySpec)> {
    use plansample_query::tpch;
    vec![
        ("Q5", tpch::q5(catalog)),
        ("Q7", tpch::q7(catalog)),
        ("Q8", tpch::q8(catalog)),
        ("Q9", tpch::q9(catalog)),
    ]
}

/// Draws `k` uniform plans and returns their costs scaled to the
/// optimum (cost 1.0 = the optimizer's plan), as in §5. One batched
/// draw over the already-prepared artifact.
pub fn sample_scaled_costs(prepared: &Prepared, k: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    prepared
        .sample_batch(&mut rng, k)
        .iter()
        .map(|plan| prepared.scaled_cost(plan))
        .collect()
}

/// Formats a scaled-cost value the way Table 1 prints them (two decimal
/// places below 100, scientific above).
pub fn fmt_cost(v: f64) -> String {
    if v < 100.0 {
        format!("{v:.2}")
    } else if v < 1e6 {
        format!("{v:.0}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plansample_catalog::tpch;

    #[test]
    fn prepare_and_sample_q5() {
        let (catalog, _) = tpch::catalog();
        let q = plansample_query::tpch::q5(&catalog);
        let p = prepare(&catalog, "Q5", q, false);
        let costs = sample_scaled_costs(&p, 50, 1);
        assert_eq!(costs.len(), 50);
        // every scaled cost is at least 1 (nothing beats the optimum)
        assert!(costs.iter().all(|&c| c >= 1.0 - 1e-9));
        // and the space contains expensive plans
        assert!(costs.iter().any(|&c| c > 2.0));
    }

    #[test]
    fn fmt_cost_bands() {
        assert_eq!(fmt_cost(1.14), "1.14");
        assert_eq!(fmt_cost(17098.0), "17098");
        assert_eq!(fmt_cost(4.0e9), "4.000e9");
    }

    #[test]
    fn sampling_is_seed_reproducible() {
        let (catalog, _) = tpch::catalog();
        let q = plansample_query::tpch::q7(&catalog);
        let p = prepare(&catalog, "Q7", q, false);
        assert_eq!(
            sample_scaled_costs(&p, 20, 5),
            sample_scaled_costs(&p, 20, 5)
        );
    }

    #[test]
    fn measurements_reuse_one_artifact() {
        let (catalog, _) = tpch::catalog();
        let q = plansample_query::tpch::q7(&catalog);
        let before = plansample_optimizer::thread_optimizations_performed();
        let p = prepare(&catalog, "Q7", q, false);
        sample_scaled_costs(&p, 100, 5);
        let _ = p.enumerate_from(plansample_bignum::Nat::from(10u64)).next();
        assert_eq!(
            plansample_optimizer::thread_optimizations_performed() - before,
            1
        );
    }
}
