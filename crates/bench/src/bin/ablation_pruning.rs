//! Experiment E7 (ablation) — why the paper wants pruning off.
//!
//! §2: "Some optimizers by default discard suboptimal expressions. For
//! our technique to be most effective, it is useful to have the
//! optimizer keep each alternative generated." This binary quantifies
//! that advice: it applies cost-bound pruning at several keep-factors to
//! the Q5 memo and reports how the countable (= testable) plan space
//! collapses.
//!
//! ```text
//! cargo run --release -p plansample-bench --bin ablation_pruning
//! ```

use plansample::PlanSpace;
use plansample_bench::prepare;
use plansample_optimizer::prune;

fn main() {
    let (catalog, _) = plansample_catalog::tpch::catalog();
    let query = plansample_query::tpch::q5(&catalog);
    let prepared = prepare(&catalog, "Q5", query.clone(), false);
    let query_shared = std::sync::Arc::new(query.clone());
    let full_space = prepared.space();
    let full_total = full_space.total().clone();
    let full_exprs = prepared.memo().num_physical();

    println!("Ablation: cost-bound pruning vs the testable plan space (TPC-H Q5)");
    println!();
    println!(
        "{:>12} {:>12} {:>26} {:>16}",
        "keep-factor", "phys exprs", "#Plans", "% of full space"
    );
    println!(
        "{:>12} {:>12} {:>26} {:>16}",
        "keep all",
        full_exprs,
        full_total.to_string(),
        "100%"
    );

    for factor in [100.0, 10.0, 2.0, 1.5, 1.0] {
        let pruned = prune(prepared.memo(), &query, factor);
        let n_exprs = pruned.num_physical();
        let space = PlanSpace::build_shared(std::sync::Arc::new(pruned), query_shared.clone())
            .expect("pruned memo stays well-formed");
        let total = space.total();
        let pct = 100.0 * total.to_f64() / full_total.to_f64();
        println!(
            "{:>12} {:>12} {:>26} {:>15.10}%",
            factor,
            n_exprs,
            total.to_string(),
            pct
        );
    }

    println!();
    println!(
        "keep-factor f keeps expressions whose best completion is within f× of their \
         group's best; f = 1.0 emulates an optimizer that discards every suboptimal \
         alternative — the testable space collapses by many orders of magnitude."
    );
}
