//! Dense expression ids: a memo-wide contiguous numbering of physical
//! expressions.
//!
//! [`PhysId`] is the *nominal* identity of a physical expression —
//! `(group, index)`, matching the paper's `7.7`-style labels — but it is
//! a poor array index: consumers either nest `Vec<Vec<…>>` per group or
//! hash. [`DenseId`] assigns every physical expression of a memo a
//! contiguous `u32` (group order, then position within the group), so
//! per-expression tables become single flat vectors and the whole
//! counting/unranking machinery turns into linear passes over cache-
//! friendly buffers. [`DenseIdMap`] is the bidirectional table; both
//! directions are O(1).

use crate::{GroupId, Memo, PhysId};

/// A memo-wide contiguous physical-expression number (`0 .. num_physical`).
///
/// Issued by [`DenseIdMap::build`]; only meaningful relative to the memo
/// the map was built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DenseId(pub u32);

impl DenseId {
    /// The id as a usize array index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional `PhysId ↔ DenseId` table for one memo.
///
/// Dense ids are assigned in group order, then expression order, so all
/// expressions of one group occupy a contiguous range
/// ([`DenseIdMap::group_range`]) — which is why the root group's
/// alternatives need no materialized id list of their own.
#[derive(Debug, Clone)]
pub struct DenseIdMap {
    /// `starts[g] .. starts[g+1]` is the dense range of group `g`.
    starts: Vec<u32>,
    /// Owning group of each dense id (the O(1) reverse direction).
    group_of: Vec<u32>,
}

impl DenseIdMap {
    /// Numbers every physical expression of `memo`.
    ///
    /// # Panics
    /// Panics if the memo holds ≥ 2³¹ physical expressions (consumers
    /// reserve the dense id's top bit as a tag, e.g. the links layer's
    /// condensed topological DFS).
    pub fn build(memo: &Memo) -> DenseIdMap {
        let total = memo.num_physical();
        assert!(total < (1 << 31), "memo too large for dense u32 ids");
        let mut starts = Vec::with_capacity(memo.num_groups() + 1);
        let mut group_of = Vec::with_capacity(total);
        starts.push(0u32);
        for group in memo.groups() {
            group_of.extend(std::iter::repeat_n(group.id.0, group.physical.len()));
            starts.push(group_of.len() as u32);
        }
        DenseIdMap { starts, group_of }
    }

    /// Number of physical expressions covered (the memo's size).
    pub fn len(&self) -> usize {
        self.group_of.len()
    }

    /// `true` when the memo holds no physical expressions.
    pub fn is_empty(&self) -> bool {
        self.group_of.is_empty()
    }

    /// The dense id of `id`.
    ///
    /// # Panics
    /// Panics when `id` does not belong to the mapped memo.
    #[inline]
    pub fn dense(&self, id: PhysId) -> DenseId {
        self.dense_checked(id)
            .unwrap_or_else(|| panic!("expression {id} is not part of this memo"))
    }

    /// The dense id of `id`, or `None` when `id` does not belong to the
    /// mapped memo (e.g. a plan node from a different memo).
    #[inline]
    pub fn dense_checked(&self, id: PhysId) -> Option<DenseId> {
        let g = id.group.0 as usize;
        if g + 1 >= self.starts.len() {
            return None;
        }
        let start = self.starts[g] as usize;
        let end = self.starts[g + 1] as usize;
        if id.index >= end - start {
            return None;
        }
        Some(DenseId((start + id.index) as u32))
    }

    /// The nominal `(group, index)` id behind a dense id.
    ///
    /// # Panics
    /// Panics when `d` is out of range.
    #[inline]
    pub fn phys(&self, d: DenseId) -> PhysId {
        let g = self.group_of[d.idx()];
        PhysId {
            group: GroupId(g),
            index: (d.0 - self.starts[g as usize]) as usize,
        }
    }

    /// The contiguous dense range of a group's expressions.
    #[inline]
    pub fn group_range(&self, group: GroupId) -> std::ops::Range<u32> {
        let g = group.0 as usize;
        self.starts[g]..self.starts[g + 1]
    }

    /// Iterates every `(DenseId, PhysId)` pair in dense order.
    pub fn iter(&self) -> impl Iterator<Item = (DenseId, PhysId)> + '_ {
        (0..self.len() as u32).map(|d| (DenseId(d), self.phys(DenseId(d))))
    }

    /// Heap bytes held by the table's flat buffers.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.starts.capacity() * std::mem::size_of::<u32>()
            + self.group_of.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GroupKey, PhysicalExpr, PhysicalOp};
    use plansample_query::{RelId, RelSet};

    fn scan(rel: u32) -> PhysicalExpr {
        PhysicalExpr::new(PhysicalOp::TableScan { rel: RelId(rel) }, 1.0, 1.0)
    }

    fn idx(rel: u32) -> PhysicalExpr {
        let col = plansample_query::ColRef {
            rel: RelId(rel),
            col: 0,
        };
        PhysicalExpr::new(
            PhysicalOp::SortedIdxScan {
                rel: RelId(rel),
                col,
            },
            1.0,
            1.0,
        )
    }

    /// Three groups with 2, 0, and 1 expressions: the empty middle group
    /// exercises the degenerate range.
    fn memo_with_gap() -> Memo {
        let mut memo = Memo::new();
        let g0 = memo.add_group(GroupKey::Rels(RelSet::singleton(RelId(0))));
        memo.add_physical(g0, scan(0)).unwrap();
        memo.add_physical(g0, idx(0)).unwrap();
        memo.add_group(GroupKey::Rels(RelSet::singleton(RelId(1))));
        let g2 = memo.add_group(GroupKey::Rels(RelSet::singleton(RelId(2))));
        memo.add_physical(g2, scan(2)).unwrap();
        memo
    }

    #[test]
    fn round_trips_over_every_expression() {
        let memo = memo_with_gap();
        let map = DenseIdMap::build(&memo);
        assert_eq!(map.len(), 3);
        assert!(!map.is_empty());
        for group in memo.groups() {
            for (id, _) in group.phys_iter() {
                let d = map.dense(id);
                assert_eq!(map.phys(d), id);
            }
        }
        // Dense ids are exactly 0..len, in group order.
        let all: Vec<u32> = map.iter().map(|(d, _)| d.0).collect();
        assert_eq!(all, vec![0, 1, 2]);
        assert_eq!(
            map.phys(DenseId(2)),
            PhysId {
                group: GroupId(2),
                index: 0
            }
        );
    }

    #[test]
    fn group_ranges_are_contiguous_and_cover_empty_groups() {
        let memo = memo_with_gap();
        let map = DenseIdMap::build(&memo);
        assert_eq!(map.group_range(GroupId(0)), 0..2);
        assert_eq!(map.group_range(GroupId(1)), 2..2);
        assert_eq!(map.group_range(GroupId(2)), 2..3);
    }

    #[test]
    fn foreign_ids_are_rejected() {
        let memo = memo_with_gap();
        let map = DenseIdMap::build(&memo);
        assert_eq!(
            map.dense_checked(PhysId {
                group: GroupId(7),
                index: 0
            }),
            None
        );
        assert_eq!(
            map.dense_checked(PhysId {
                group: GroupId(0),
                index: 2
            }),
            None
        );
        assert_eq!(
            map.dense_checked(PhysId {
                group: GroupId(1),
                index: 0
            }),
            None,
            "empty group has no expressions"
        );
    }

    #[test]
    #[should_panic(expected = "not part of this memo")]
    fn dense_panics_on_foreign_id() {
        let map = DenseIdMap::build(&memo_with_gap());
        map.dense(PhysId {
            group: GroupId(9),
            index: 9,
        });
    }

    #[test]
    fn empty_memo_maps_nothing() {
        let map = DenseIdMap::build(&Memo::new());
        assert!(map.is_empty());
        assert_eq!(map.iter().count(), 0);
        assert!(map.size_bytes() >= std::mem::size_of::<DenseIdMap>());
    }
}
