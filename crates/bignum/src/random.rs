//! Uniform random generation of a `Nat` below a bound.
//!
//! Uniform plan sampling (paper §1, §3) reduces to drawing a uniform rank in
//! `[0, N)` and unranking it. For multi-limb `N` we rejection-sample: draw
//! `bits(N)` random bits (masking the top limb) and retry until the draw is
//! `< N`. Each attempt succeeds with probability > 1/2, so the expected
//! number of rounds is < 2 regardless of `N`.

use crate::Nat;
use rand::Rng;

impl Nat {
    /// Draws a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero (the range is empty).
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Nat) -> Nat {
        assert!(!bound.is_zero(), "random_below: empty range");
        if let Some(b) = bound.to_u64() {
            return Nat::from(Self::random_below_u64(rng, b));
        }
        let bound_limbs = bound.limbs();
        let limbs = bound_limbs.len();
        let top = bound_limbs[limbs - 1];
        let mask = top_limb_mask(top);
        // Rejection attempts refill one reusable buffer in place — a
        // stack array for bounds up to 8 limbs, one up-front heap
        // allocation beyond that — so a retry never touches the
        // allocator. Only the accepted draw is materialized as a `Nat`.
        let mut stack_buf = [0u64; 8];
        let mut heap_buf;
        let buf: &mut [u64] = if limbs <= stack_buf.len() {
            &mut stack_buf[..limbs]
        } else {
            heap_buf = vec![0u64; limbs];
            &mut heap_buf
        };
        loop {
            for slot in buf[..limbs - 1].iter_mut() {
                *slot = rng.gen::<u64>();
            }
            buf[limbs - 1] = rng.gen::<u64>() & mask;
            if limbs_below(buf, bound_limbs) {
                return Nat::from_limbs(buf.to_vec());
            }
        }
    }

    /// Two-limb specialization of [`random_below`](Self::random_below):
    /// a uniform `u128` in `[0, bound)` with **exactly** the RNG
    /// consumption of `random_below` on the same bound. Single-limb
    /// bounds delegate to [`random_below_u64`](Self::random_below_u64)
    /// (one `gen_range`, matching `random_below`'s single-limb branch);
    /// two-limb bounds run the same rejection loop — low limb first,
    /// masked top limb — in plain `u128` arithmetic. The `u128`
    /// unranking tier draws ranks through this and stays bit-identical
    /// to the exact-`Nat` path on the same seed.
    ///
    /// Note the limb order: `random_below` pushes the *low* limb before
    /// the masked top limb, which is the opposite of the word order the
    /// vendored `rng.gen::<u128>()` uses — composing from two explicit
    /// `u64` draws is what keeps the streams interchangeable.
    ///
    /// # Panics
    /// Panics if `bound` is zero (the range is empty).
    pub fn random_below_u128<R: Rng + ?Sized>(rng: &mut R, bound: u128) -> u128 {
        assert!(bound > 0, "random_below: empty range");
        if bound <= u64::MAX as u128 {
            return Self::random_below_u64(rng, bound as u64) as u128;
        }
        let mask = top_limb_mask((bound >> 64) as u64);
        loop {
            let lo = rng.gen::<u64>();
            let hi = rng.gen::<u64>() & mask;
            let candidate = ((hi as u128) << 64) | lo as u128;
            if candidate < bound {
                return candidate;
            }
        }
    }

    /// Single-limb specialization of [`random_below`](Self::random_below):
    /// a uniform `u64` in `[0, bound)` with **exactly** the RNG
    /// consumption of `random_below` on the same single-limb bound — one
    /// `gen_range` call. The allocation-free sampling fast path draws
    /// ranks through this and stays bit-identical to the `Nat` path on
    /// the same seed.
    ///
    /// # Panics
    /// Panics if `bound` is zero (the range is empty).
    pub fn random_below_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        assert!(bound > 0, "random_below: empty range");
        rng.gen_range(0..bound)
    }
}

/// Mask covering the significant bits of a bound's top limb.
#[inline]
fn top_limb_mask(top: u64) -> u64 {
    if top.leading_zeros() == 0 {
        u64::MAX
    } else {
        (1u64 << (64 - top.leading_zeros())) - 1
    }
}

/// `candidate < bound` over equal-length little-endian limb slices
/// (the in-place comparison the rejection loop runs instead of
/// materializing a `Nat` per attempt).
#[inline]
fn limbs_below(candidate: &[u64], bound: &[u64]) -> bool {
    debug_assert_eq!(candidate.len(), bound.len());
    for i in (0..bound.len()).rev() {
        if candidate[i] != bound[i] {
            return candidate[i] < bound[i];
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::Nat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn draws_stay_in_range_small() {
        let mut rng = StdRng::seed_from_u64(7);
        let bound = Nat::from(10u64);
        for _ in 0..1000 {
            let d = Nat::random_below(&mut rng, &bound);
            assert!(d < bound);
        }
    }

    #[test]
    fn draws_stay_in_range_multi_limb() {
        let mut rng = StdRng::seed_from_u64(42);
        let bound: Nat = "123456789012345678901234567890123456789".parse().unwrap();
        for _ in 0..500 {
            let d = Nat::random_below(&mut rng, &bound);
            assert!(d < bound);
        }
    }

    #[test]
    fn small_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let bound = Nat::from(5u64);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let d = Nat::random_below(&mut rng, &bound).to_u64().unwrap();
            seen[d as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all of 0..5 should appear: {seen:?}"
        );
    }

    #[test]
    fn multi_limb_mean_is_centered() {
        // For bound 2^80 the mean of uniform draws is ~2^79; check within 5%.
        let mut rng = StdRng::seed_from_u64(99);
        let bound = Nat::from(1u128 << 80);
        let mut acc = 0.0f64;
        let k = 4000;
        for _ in 0..k {
            acc += Nat::random_below(&mut rng, &bound).to_f64();
        }
        let mean = acc / k as f64;
        let expect = (2f64).powi(79);
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_bound_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        Nat::random_below(&mut rng, &Nat::zero());
    }

    /// The `u128` specialization consumes the RNG exactly as the `Nat`
    /// path does: on the same seed, every draw (and therefore the whole
    /// stream) is identical — including bounds that force rejections
    /// (tight top limbs) and bounds whose top limb saturates the mask.
    #[test]
    fn u128_draws_are_bit_identical_to_the_nat_path() {
        for bound in [
            (1u128 << 64) + 1,                     // almost always rejects the first try
            (1u128 << 67) - 3,                     // saturated 3-bit top limb
            u128::MAX,                             // full-width mask
            5_600_000_000_000_000_000_000_000u128, // clique-10 scale
            u64::MAX as u128,                      // delegates to the u64 branch
            17,                                    // small single-limb
        ] {
            let nat_bound = Nat::from(bound);
            let mut a = StdRng::seed_from_u64(0xD1CE);
            let mut b = StdRng::seed_from_u64(0xD1CE);
            for i in 0..200 {
                let exact = Nat::random_below(&mut a, &nat_bound);
                let fast = Nat::random_below_u128(&mut b, bound);
                assert_eq!(
                    exact.to_u128(),
                    Some(fast),
                    "draw {i} diverged at bound {bound}"
                );
            }
        }
    }

    #[test]
    fn u128_draws_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let bound = (1u128 << 127) + 12345;
        for _ in 0..500 {
            assert!(Nat::random_below_u128(&mut rng, bound) < bound);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn u128_zero_bound_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        Nat::random_below_u128(&mut rng, 0);
    }

    /// The multi-limb rejection loop past the 8-limb stack buffer (the
    /// heap fallback) still draws correctly and in the same stream.
    #[test]
    fn many_limb_bounds_use_the_heap_fallback_correctly() {
        // 10 limbs: top limb 1 → mask 1 → ~50% rejection rate.
        let mut limbs = vec![0u64; 10];
        limbs[9] = 1;
        limbs[0] = 7;
        let bound = Nat::from_limbs(limbs);
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..200 {
            let d = Nat::random_below(&mut rng, &bound);
            assert!(d < bound);
        }
    }
}
