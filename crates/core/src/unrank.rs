//! §3.3 — Unranking: constructing plan number `r`.
//!
//! Given `(r, G)`:
//!
//! 1. choose the operator `v_k` of `G` by prefix sums — the first
//!    operator covers ranks `0 … N(v_1)-1`, the second
//!    `N(v_1) … N(v_1)+N(v_2)-1`, and so on — and compute the local rank
//!    `r_l = r − Σ_{i<k} N(v_i)`;
//! 2. decompose `r_l` into per-slot sub-ranks. The paper writes this with
//!    the recurrences `R_v(|v|) = r_l`, `R_v(i) = R_v(i+1) mod B_v(i)`,
//!    `s_v(i) = ⌊R_v(i) / B_v(i−1)⌋` (and `s_v(1) = R_v(1)`); since
//!    `B_v(i) = Π_{j≤i} b_v(j)`, these `s_v(i)` are exactly the digits of
//!    `r_l` in the mixed-radix system with bases `b_v(1), b_v(2), …` —
//!    which is how we compute them, one `div_rem` per slot;
//! 3. recurse: sub-rank `s_v(i)` is unranked within slot `i`'s
//!    alternative list.
//!
//! Unranking visits one operator per plan node and performs arithmetic
//! linear in the plan size — "a small fraction of the time needed for
//! counting", reproduced by the `unranking` bench. Every `b_v(i)` the
//! mixed-radix decomposition divides by is precomputed per interned
//! alternative list ([`crate::Counts::list_total`]), so no step re-sums
//! alternative counts.

use crate::count::{FastCounts, WideCounts};
use crate::links::ListId;
use crate::{PlanSpace, SpaceError};
use plansample_bignum::Nat;
use plansample_memo::{DenseId, PhysId, PlanNode};

/// Operator selection over one list's contiguous pool-aligned counts:
/// returns the chosen index and the residual rank within it.
///
/// Instead of the naive per-element `if rank < n {break} rank -= n`
/// (one unpredictable branch per alternative), the scan works in
/// chunks of 8: an unrolled pairwise sum decides in one predictable
/// branch whether the chosen element lies in the chunk; misses skip 8
/// elements with a single subtraction, and the hit chunk resolves its
/// element **branch-free** — `take = (rank >= prefix) as int` arithmetic
/// with no data-dependent jumps, so wide lists stop paying a
/// mispredict per element. Chunk sums cannot overflow: every partial
/// sum is bounded by the list total, which fits the tier's width by
/// construction. A scalar tail handles the last `len % 8` elements.
///
/// Callers guarantee `rank < Σ counts`. Zero-count (dead) alternatives
/// are skipped exactly as the scalar scan skips them, so the chosen
/// index is identical — differential-tested below against the scalar
/// reference.
macro_rules! chunked_select {
    ($name:ident, $t:ty) => {
        #[inline]
        fn $name(counts: &[$t], mut rank: $t) -> (usize, $t) {
            let mut base = 0usize;
            let mut chunks = counts.chunks_exact(8);
            for c in &mut chunks {
                let sum = ((c[0] + c[1]) + (c[2] + c[3])) + ((c[4] + c[5]) + (c[6] + c[7]));
                if rank < sum {
                    let mut acc: $t = 0;
                    let mut idx = 0usize;
                    let mut below: $t = 0;
                    for &n in c {
                        acc += n;
                        let take = (rank >= acc) as usize;
                        idx += take;
                        below += n * (take as $t);
                    }
                    return (base + idx, rank - below);
                }
                rank -= sum;
                base += 8;
            }
            let tail = chunks.remainder();
            let mut i = 0usize;
            while rank >= tail[i] {
                rank -= tail[i];
                i += 1;
            }
            (base + i, rank)
        }
    };
}

chunked_select!(select_in_list_u64, u64);
chunked_select!(select_in_list_u128, u128);

impl PlanSpace {
    /// Builds plan number `rank` (0-based, `rank < total()`).
    pub fn unrank(&self, rank: &Nat) -> Result<PlanNode, SpaceError> {
        if rank >= self.counts.total() {
            return Err(SpaceError::RankOutOfRange {
                rank: rank.clone(),
                total: self.counts.total().clone(),
            });
        }
        Ok(self.unrank_in(self.links.list(self.links.root_list()), rank.clone()))
    }

    /// Step 1: operator selection within an alternative list.
    fn unrank_in(&self, alternatives: &[DenseId], mut rank: Nat) -> PlanNode {
        for &v in alternatives {
            let n = self.counts.rooted(v);
            if &rank < n {
                return self.unrank_expr(v, rank);
            }
            rank -= n;
        }
        unreachable!("rank below the alternative total by construction")
    }

    /// Steps 2–3: sub-rank decomposition and recursive assembly.
    pub(crate) fn unrank_expr(&self, v: DenseId, local_rank: Nat) -> PlanNode {
        let lists = self.links.slot_lists(v);
        let mut children = Vec::with_capacity(lists.len());
        let mut rest = local_rank;
        for &l in lists {
            // digit s_v(i) = rest mod b_v(i); carry rest / b_v(i) onward.
            let (q, s) = rest.div_rem(self.counts.list_total(l));
            rest = q;
            children.push(self.unrank_in(self.links.list(l), s));
        }
        debug_assert!(rest.is_zero(), "local rank exceeded B_v(|v|)");
        PlanNode {
            id: self.links.ids().phys(v),
            children,
        }
    }

    /// The `u64` specialization: same three steps, but every count the
    /// decomposition touches is a single limb ([`FastCounts`]), the
    /// recursion is an explicit stack, and the plan is emitted as a flat
    /// **preorder id sequence** appended to `ids` — no `PlanNode`
    /// allocation per node, no `Nat` borrow per comparison. With `ids`
    /// and `stack` at capacity this performs zero heap allocations
    /// (asserted by `tests/alloc_counting.rs`).
    ///
    /// Bit-identical to [`unrank_expr`](Self::unrank_expr) by
    /// construction: the operator scan and the mixed-radix digits use
    /// the same values in the same order, only in `u64` arithmetic —
    /// differential-tested in `tests/unrank_fast_path.rs`.
    ///
    /// The caller guarantees `rank` is below the space total.
    pub(crate) fn unrank_flat_u64(
        &self,
        fast: &FastCounts,
        rank: u64,
        ids: &mut Vec<PhysId>,
        stack: &mut Vec<(ListId, u64)>,
    ) {
        stack.clear();
        stack.push((self.links.root_list(), rank));
        while let Some((list, rank)) = stack.pop() {
            // Step 1: operator selection by chunked prefix scan over the
            // list's contiguous pool-aligned counts.
            let (idx, rank) =
                select_in_list_u64(fast.pool_counts(self.links.list_range(list)), rank);
            let v = self.links.list(list)[idx];
            ids.push(self.links.ids().phys(v));
            // Step 2: mixed-radix digits, one div/mod per slot. Children
            // are emitted depth-first in slot order, so the (list, digit)
            // frames go on the stack reversed — slot 0 pops first and
            // its whole subtree lands before slot 1's.
            let base = stack.len();
            let mut rest = rank;
            for &l in self.links.slot_lists(v) {
                let b = fast.list_total(l);
                stack.push((l, rest % b));
                rest /= b;
            }
            debug_assert_eq!(rest, 0, "local rank exceeded B_v(|v|)");
            stack[base..].reverse();
        }
    }

    /// The `u128` specialization: identical structure to
    /// [`unrank_flat_u64`](Self::unrank_flat_u64) one rung up the tier
    /// ladder — two-limb counts ([`WideCounts`]), `u128` ranks and
    /// digits, the same chunked operator scan, the same explicit stack,
    /// zero heap allocations at capacity. Bit-identical to the exact
    /// [`Nat`] path by the same argument, differential-tested in
    /// `tests/unrank_fast_path.rs`.
    ///
    /// The caller guarantees `rank` is below the space total.
    pub(crate) fn unrank_flat_u128(
        &self,
        wide: &WideCounts,
        rank: u128,
        ids: &mut Vec<PhysId>,
        stack: &mut Vec<(ListId, u128)>,
    ) {
        stack.clear();
        stack.push((self.links.root_list(), rank));
        while let Some((list, rank)) = stack.pop() {
            let (idx, rank) =
                select_in_list_u128(wide.pool_counts(self.links.list_range(list)), rank);
            let v = self.links.list(list)[idx];
            ids.push(self.links.ids().phys(v));
            let base = stack.len();
            let mut rest = rank;
            for &l in self.links.slot_lists(v) {
                let b = wide.list_total(l);
                stack.push((l, rest % b));
                rest /= b;
            }
            debug_assert_eq!(rest, 0, "local rank exceeded B_v(|v|)");
            stack[base..].reverse();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::PlanSpace;
    use plansample_memo::validate_plan;

    #[test]
    fn appendix_example_rank_13() {
        // The paper's appendix unranks (13, group 7) and obtains the
        // operators 7.7, 4.3, 3.4, 2.3, 1.3. In fixture terms: the root
        // HashJoin(C, A⋈B) over SortedIdxScan_C and MergeJoin(A,B) over
        // SortedIdxScan_A / SortedIdxScan_B.
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let plan = space.unrank(&Nat::from(13u64)).unwrap();

        assert_eq!(plan.id, ex.root_c_ab); // 7.7
        assert_eq!(plan.children.len(), 2);
        assert_eq!(plan.children[0].id, ex.idx_scan_c); // 4.3
        let inner = &plan.children[1];
        assert_eq!(inner.id, ex.merge_join_ab); // 3.4
        assert_eq!(inner.children[0].id, ex.idx_scan_a); // 1.3
        assert_eq!(inner.children[1].id, ex.idx_scan_b); // 2.3

        let ids = plan.preorder_ids();
        assert_eq!(
            ids,
            vec![
                ex.root_c_ab,
                ex.idx_scan_c,
                ex.merge_join_ab,
                ex.idx_scan_a,
                ex.idx_scan_b
            ]
        );
    }

    #[test]
    fn every_rank_yields_a_distinct_valid_plan() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let total = space.total().to_u64().unwrap();
        assert_eq!(total, 32);
        let mut seen = std::collections::HashSet::new();
        for r in 0..total {
            let plan = space.unrank(&Nat::from(r)).unwrap();
            assert!(
                validate_plan(&ex.memo, &ex.query, &plan).is_empty(),
                "rank {r} must be a valid plan"
            );
            assert!(
                seen.insert(format!("{:?}", plan.preorder_ids())),
                "rank {r} duplicated a plan"
            );
        }
    }

    #[test]
    fn rank_zero_picks_first_alternatives() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let plan = space.unrank(&Nat::zero()).unwrap();
        assert_eq!(plan.id, ex.root_c_ab);
        assert_eq!(plan.children[0].id, ex.table_scan_c);
        assert_eq!(plan.children[1].id, ex.hash_join_ab);
        assert_eq!(plan.children[1].children[0].id, ex.table_scan_a);
        assert_eq!(plan.children[1].children[1].id, ex.table_scan_b);
    }

    #[test]
    fn out_of_range_rank_is_rejected() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let err = space.unrank(&Nat::from(32u64)).unwrap_err();
        assert!(matches!(err, SpaceError::RankOutOfRange { .. }));
        assert!(space.unrank(&Nat::from(31u64)).is_ok());
    }

    /// The scalar branch-and-subtract reference the chunked scan must
    /// reproduce index-for-index.
    fn select_scalar(counts: &[u128], mut rank: u128) -> (usize, u128) {
        for (i, &n) in counts.iter().enumerate() {
            if rank < n {
                return (i, rank);
            }
            rank -= n;
        }
        unreachable!("rank below the list total by construction")
    }

    #[test]
    fn chunked_select_matches_the_scalar_reference() {
        // Deterministic xorshift so the shapes cover chunk boundaries,
        // zero runs, and tails without a dev-dependency on `rand`.
        let mut s = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for len in [1usize, 2, 7, 8, 9, 15, 16, 17, 40, 101] {
            for _case in 0..50 {
                let counts: Vec<u64> = (0..len)
                    .map(|_| {
                        let r = next();
                        // ~1 in 4 alternatives dead, rest small so every
                        // index is reachable across cases.
                        if r % 4 == 0 {
                            0
                        } else {
                            r % 1000 + 1
                        }
                    })
                    .collect();
                let total: u64 = counts.iter().sum();
                if total == 0 {
                    continue;
                }
                let wide: Vec<u128> = counts.iter().map(|&n| n as u128).collect();
                for probe in 0..total.min(64) {
                    // Stride ranks across the whole range, hitting both
                    // boundaries of every alternative.
                    let rank = (probe * (total / total.clamp(1, 64))).min(total - 1);
                    let expect = select_scalar(&wide, rank as u128);
                    assert_eq!(
                        select_in_list_u64(&counts, rank),
                        (expect.0, expect.1 as u64),
                        "u64 diverged on {counts:?} rank {rank}"
                    );
                    assert_eq!(
                        select_in_list_u128(&wide, rank as u128),
                        expect,
                        "u128 diverged on {counts:?} rank {rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunked_select_handles_two_limb_counts() {
        let big = u64::MAX as u128 + 5;
        let counts = [0u128, big, 3, 0, big, 1, 0, 0, big, 2];
        let total: u128 = counts.iter().sum();
        for rank in [0u128, 1, big - 1, big, big + 2, big + 3, total - 1] {
            assert_eq!(
                select_in_list_u128(&counts, rank),
                select_scalar(&counts, rank),
                "diverged at rank {rank}"
            );
        }
    }

    #[test]
    fn last_rank_uses_last_root_operator() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let plan = space.unrank(&Nat::from(31u64)).unwrap();
        assert_eq!(plan.id, ex.root_ab_c); // 7.8-analogue covers 16..31
    }
}
