//! Ranking: the inverse of unranking — finding a plan's number.
//!
//! The paper defines ranking as "finding [an execution plan's] number"
//! (§1) and uses it implicitly to establish the bijection between
//! `[0, N)` and the plan space. The computation mirrors unranking in
//! reverse: at every node, sum the counts of the alternatives preceding
//! the chosen operator (prefix), then recompose the local rank from the
//! children's sub-ranks in the same mixed-radix system.
//!
//! `rank(unrank(r)) == r` for every `r` is the central bijection
//! property, enforced by unit and property tests.

use crate::{PlanSpace, SpaceError};
use plansample_bignum::Nat;
use plansample_memo::{DenseId, PlanNode};

impl PlanSpace {
    /// Computes the rank of `plan` within this space.
    ///
    /// Fails with [`SpaceError::ForeignPlan`] when the plan uses an
    /// operator that is not among the eligible alternatives at its
    /// position (e.g. a plan from a different memo, or one violating
    /// physical-property requirements).
    pub fn rank(&self, plan: &PlanNode) -> Result<Nat, SpaceError> {
        self.rank_in(self.links.list(self.links.root_list()), plan)
    }

    /// Prefix-sum over the alternatives preceding the plan's operator,
    /// plus its local rank.
    fn rank_in(&self, alternatives: &[DenseId], plan: &PlanNode) -> Result<Nat, SpaceError> {
        let target = self
            .links
            .ids()
            .dense_checked(plan.id)
            .ok_or(SpaceError::ForeignPlan { at: plan.id })?;
        let mut prefix = Nat::zero();
        for &v in alternatives {
            if v == target {
                let local = self.rank_expr_at(target, plan)?;
                return Ok(prefix + local);
            }
            prefix += self.counts.rooted(v);
        }
        Err(SpaceError::ForeignPlan { at: plan.id })
    }

    /// [`rank_expr_at`](Self::rank_expr_at) with the dense lookup (and
    /// its foreign-plan check) included — the sub-space entry point.
    pub(crate) fn rank_expr(&self, plan: &PlanNode) -> Result<Nat, SpaceError> {
        let d = self
            .links
            .ids()
            .dense_checked(plan.id)
            .ok_or(SpaceError::ForeignPlan { at: plan.id })?;
        self.rank_expr_at(d, plan)
    }

    /// Recomposes the local rank from the children's sub-ranks:
    /// `r_l = Σ_i s_v(i) · B_v(i−1)`.
    fn rank_expr_at(&self, d: DenseId, plan: &PlanNode) -> Result<Nat, SpaceError> {
        let lists = self.links.slot_lists(d);
        if lists.len() != plan.children.len() {
            return Err(SpaceError::ForeignPlan { at: plan.id });
        }
        let mut local = Nat::zero();
        let mut multiplier = Nat::one();
        for (&l, child) in lists.iter().zip(&plan.children) {
            let s = self.rank_in(self.links.list(l), child)?;
            local += &s * &multiplier;
            multiplier *= self.counts.list_total(l);
        }
        Ok(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::PlanSpace;
    use plansample_memo::PlanNode;

    #[test]
    fn rank_inverts_unrank_on_the_paper_example() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        for r in 0..32u64 {
            let plan = space.unrank(&Nat::from(r)).unwrap();
            assert_eq!(space.rank(&plan).unwrap(), Nat::from(r), "round trip {r}");
        }
    }

    #[test]
    fn appendix_plan_ranks_to_13() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let plan = PlanNode {
            id: ex.root_c_ab,
            children: vec![
                PlanNode::leaf(ex.idx_scan_c),
                PlanNode {
                    id: ex.merge_join_ab,
                    children: vec![PlanNode::leaf(ex.idx_scan_a), PlanNode::leaf(ex.idx_scan_b)],
                },
            ],
        };
        assert_eq!(space.rank(&plan).unwrap(), Nat::from(13u64));
    }

    #[test]
    fn foreign_plan_is_rejected() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        // A merge join fed by an unsorted table scan is not in the space.
        let bogus = PlanNode {
            id: ex.root_c_ab,
            children: vec![
                PlanNode::leaf(ex.idx_scan_c),
                PlanNode {
                    id: ex.merge_join_ab,
                    children: vec![
                        PlanNode::leaf(ex.table_scan_a),
                        PlanNode::leaf(ex.idx_scan_b),
                    ],
                },
            ],
        };
        assert!(matches!(
            space.rank(&bogus),
            Err(SpaceError::ForeignPlan { .. })
        ));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let ex = paper_example::build();
        let space = PlanSpace::build(&ex.memo, &ex.query).unwrap();
        let truncated = PlanNode {
            id: ex.root_c_ab,
            children: vec![PlanNode::leaf(ex.idx_scan_c)],
        };
        assert!(matches!(
            space.rank(&truncated),
            Err(SpaceError::ForeignPlan { .. })
        ));
    }
}
